"""Unit tests for the synthetic treebank generator."""

from __future__ import annotations

import random

from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.corpus.grammar import Grammar, Production, Vocabulary, default_grammar
from repro.trees.penn import parse_penn, to_penn
from repro.trees.stats import corpus_stats


class TestVocabulary:
    def test_sampling_is_deterministic_per_seed(self) -> None:
        vocabulary = Vocabulary()
        first = [vocabulary.sample("NN", random.Random(3)) for _ in range(5)]
        second = [vocabulary.sample("NN", random.Random(3)) for _ in range(5)]
        assert first == second

    def test_unknown_tag_falls_back_to_lowercase(self) -> None:
        vocabulary = Vocabulary()
        assert vocabulary.sample("XYZ", random.Random(0)) == "xyz"

    def test_zipf_head_is_frequent(self) -> None:
        vocabulary = Vocabulary()
        rng = random.Random(1)
        samples = [vocabulary.sample("NN", rng) for _ in range(2000)]
        head_share = samples.count("nn_0000") / len(samples)
        assert head_share > 0.05


class TestGrammar:
    def test_default_grammar_has_start_symbol(self) -> None:
        grammar = default_grammar()
        assert grammar.start_symbol == "S"
        assert grammar.is_phrase("NP")
        assert not grammar.is_phrase("NN")

    def test_missing_start_symbol_rejected(self) -> None:
        import pytest

        with pytest.raises(ValueError):
            Grammar([Production("NP", ("NN",), 1.0)], Vocabulary(), start_symbol="S")

    def test_depth_damping_prefers_flat_productions(self) -> None:
        grammar = default_grammar()
        rng = random.Random(5)
        deep_choice = grammar.choose("NP", depth=grammar.hard_depth, rng=rng)
        assert all(not grammar.is_phrase(symbol) for symbol in deep_choice.rhs)


class TestGenerator:
    def test_deterministic_for_seed(self) -> None:
        first = [to_penn(tree.root) for tree in generate_corpus(10, seed=42)]
        second = [to_penn(tree.root) for tree in generate_corpus(10, seed=42)]
        assert first == second

    def test_different_seeds_differ(self) -> None:
        first = [to_penn(tree.root) for tree in generate_corpus(10, seed=1)]
        second = [to_penn(tree.root) for tree in generate_corpus(10, seed=2)]
        assert first != second

    def test_tids_are_sequential(self) -> None:
        trees = generate_corpus(5, seed=0)
        assert [tree.tid for tree in trees] == [0, 1, 2, 3, 4]

    def test_root_wrapping(self) -> None:
        generator = CorpusGenerator(seed=0, wrap_root=True)
        tree = generator.generate_tree()
        assert tree.root.label == "ROOT"
        unwrapped = CorpusGenerator(seed=0, wrap_root=False).generate_tree()
        assert unwrapped.root.label == "S"

    def test_token_bounds_respected(self) -> None:
        generator = CorpusGenerator(seed=3, min_tokens=5, max_tokens=30)
        lengths = [len(tree.tokens()) for tree in generator.generate(50)]
        assert all(4 <= length <= 60 for length in lengths)
        assert sum(5 <= length <= 30 for length in lengths) >= 45

    def test_output_is_valid_penn(self) -> None:
        for tree in generate_corpus(20, seed=9):
            round_tripped = parse_penn(to_penn(tree.root))
            assert round_tripped.structurally_equal(tree.root)

    def test_shape_statistics_match_paper(self) -> None:
        stats = corpus_stats(generate_corpus(200, seed=13))
        assert 1.2 <= stats.avg_branching_factor <= 2.0
        assert stats.avg_tree_size >= 15
        assert stats.max_branching <= 15
