"""Unit tests for the corpus containers and the on-disk data file."""

from __future__ import annotations

import pytest

from repro.corpus.generator import generate_corpus
from repro.corpus.store import Corpus, TreeStore
from repro.trees.node import ParseTree
from repro.trees.penn import parse_penn


class TestCorpus:
    def test_add_assigns_sequential_tids(self) -> None:
        corpus = Corpus()
        corpus.add(ParseTree(parse_penn("(NP (NN a))")))
        corpus.add(ParseTree(parse_penn("(NP (NN b))")))
        assert corpus.tids() == [0, 1]

    def test_duplicate_tid_rejected(self) -> None:
        corpus = Corpus()
        corpus.add(ParseTree(parse_penn("(NP (NN a))"), tid=5))
        with pytest.raises(ValueError):
            corpus.add(ParseTree(parse_penn("(NP (NN b))"), tid=5))

    def test_get_and_contains(self) -> None:
        corpus = Corpus(generate_corpus(5, seed=0))
        assert 3 in corpus
        assert corpus.get(3).tid == 3
        with pytest.raises(KeyError):
            corpus.get(99)

    def test_round_trip_through_penn_lines(self) -> None:
        corpus = Corpus(generate_corpus(8, seed=1))
        rebuilt = Corpus.from_penn_lines(corpus.to_penn_lines())
        assert len(rebuilt) == len(corpus)
        for original, copy in zip(corpus, rebuilt):
            assert original.root.structurally_equal(copy.root)

    def test_save_and_load(self, tmp_path) -> None:
        corpus = Corpus(generate_corpus(6, seed=2))
        path = tmp_path / "corpus.penn"
        corpus.save(path)
        loaded = Corpus.load(path)
        assert len(loaded) == 6
        assert loaded.get(0).root.structurally_equal(corpus.get(0).root)

    def test_total_nodes(self) -> None:
        corpus = Corpus(generate_corpus(4, seed=3))
        assert corpus.total_nodes() == sum(tree.size() for tree in corpus)


class TestTreeStore:
    def test_append_and_get(self, tmp_path) -> None:
        store = TreeStore(tmp_path / "data.bin")
        tree = ParseTree(parse_penn("(NP (DT the) (NN dog))"), tid=3)
        store.append(tree)
        fetched = store.get(3)
        assert fetched.tid == 3
        assert fetched.root.structurally_equal(tree.root)

    def test_missing_tid_raises(self, tmp_path) -> None:
        store = TreeStore(tmp_path / "data.bin")
        with pytest.raises(KeyError):
            store.get(1)

    def test_build_and_reopen(self, tmp_path) -> None:
        path = tmp_path / "data.bin"
        corpus = generate_corpus(10, seed=4)
        store = TreeStore.build(path, corpus)
        store.close()
        reopened = TreeStore(path)
        assert len(reopened) == 10
        assert set(reopened.tids()) == set(range(10))
        assert reopened.get(7).root.structurally_equal(corpus[7].root)
        reopened.close()

    def test_get_many(self, tmp_path) -> None:
        corpus = generate_corpus(5, seed=5)
        store = TreeStore.build(tmp_path / "data.bin", corpus)
        fetched = store.get_many([4, 0, 2])
        assert sorted(tree.tid for tree in fetched) == [0, 2, 4]

    def test_size_bytes_grows(self, tmp_path) -> None:
        store = TreeStore(tmp_path / "data.bin")
        empty = store.size_bytes()
        store.append(ParseTree(parse_penn("(NP (NN a))"), tid=0))
        assert store.size_bytes() > empty

    def test_context_manager(self, tmp_path) -> None:
        with TreeStore(tmp_path / "data.bin") as store:
            store.append(ParseTree(parse_penn("(NP (NN a))"), tid=0))
        # Closed cleanly; reopening still works.
        assert len(TreeStore(tmp_path / "data.bin")) == 1


class TestTreeStoreIteration:
    def test_iter_streams_in_file_order(self, tmp_path) -> None:
        corpus = generate_corpus(12, seed=6)
        store = TreeStore.build(tmp_path / "data.bin", corpus)
        streamed = list(store)
        assert [tree.tid for tree in streamed] == store.tids()
        for streamed_tree, original in zip(streamed, corpus):
            assert streamed_tree.root.structurally_equal(original.root)

    def test_iter_matches_get_many(self, tmp_path) -> None:
        corpus = generate_corpus(8, seed=7)
        store = TreeStore.build(tmp_path / "data.bin", corpus)
        via_get_many = store.get_many(store.tids())
        via_iter = list(store)
        assert [t.tid for t in via_iter] == [t.tid for t in via_get_many]

    def test_iter_empty_store(self, tmp_path) -> None:
        assert list(TreeStore(tmp_path / "data.bin")) == []

    def test_iter_does_not_disturb_random_access(self, tmp_path) -> None:
        corpus = generate_corpus(6, seed=8)
        store = TreeStore.build(tmp_path / "data.bin", corpus)
        iterator = iter(store)
        next(iterator)
        assert store.get(4).tid == 4  # get() between next() calls is fine
        assert next(iterator).tid == store.tids()[1]

    def test_iter_respects_arbitrary_tids(self, tmp_path) -> None:
        store = TreeStore(tmp_path / "data.bin")
        for tid in (42, 7, 1000):
            store.append(ParseTree(parse_penn("(NP (NN a))"), tid=tid))
        assert [tree.tid for tree in store] == [42, 7, 1000]

    def test_iter_agrees_with_get_after_reappend(self, tmp_path) -> None:
        store = TreeStore(tmp_path / "data.bin")
        store.append(ParseTree(parse_penn("(NP (NN old))"), tid=5))
        store.append(ParseTree(parse_penn("(NP (NN other))"), tid=6))
        store.append(ParseTree(parse_penn("(VP (VB new))"), tid=5))  # supersedes
        streamed = list(store)
        assert [tree.tid for tree in streamed] == store.tids()
        by_iter = {tree.tid: tree for tree in streamed}
        assert by_iter[5].root.structurally_equal(store.get(5).root)
        assert by_iter[5].root.label == "VP"
