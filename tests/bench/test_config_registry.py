"""Unit tests of the experiment configs and the central registry."""

from __future__ import annotations

import pytest

from repro.bench.config import SCALABLE_PARAMS, ExperimentConfig
from repro.bench.registry import (
    RUNNERS,
    UnknownExperimentError,
    _REGISTRY,
    all_configs,
    experiment_names,
    get_config,
    register,
)


def demo_config(**overrides) -> ExperimentConfig:
    fields = dict(
        name="demo",
        title="Demo",
        description="a demo",
        runner="figure2_index_keys",
        params={"sentence_counts": (100, 400)},
        key_columns=("sentences", "mss"),
        metrics={"unique_subtrees": "exact"},
    )
    fields.update(overrides)
    return ExperimentConfig(**fields)


class TestExperimentConfig:
    def test_bad_metric_direction_rejected(self) -> None:
        with pytest.raises(ValueError, match="direction"):
            demo_config(metrics={"unique_subtrees": "sideways"})

    def test_negative_warmup_rejected(self) -> None:
        with pytest.raises(ValueError, match="warmup"):
            demo_config(warmup=-1)

    def test_with_params_returns_new_config(self) -> None:
        config = demo_config()
        derived = config.with_params(sentence_counts=(5,), extra=True)
        assert derived.params == {"sentence_counts": (5,), "extra": True}
        assert config.params == {"sentence_counts": (100, 400)}  # unchanged

    def test_scaled_multiplies_size_params(self) -> None:
        config = demo_config(params={"sentence_count": 1_000, "mss": 3})
        scaled = config.scaled(0.5)
        assert scaled.params == {"sentence_count": 500, "mss": 3}

    def test_scaled_handles_tuples_and_clamps_to_one(self) -> None:
        config = demo_config(params={"sentence_counts": (1, 10, 100)})
        scaled = config.scaled(0.01)
        assert scaled.params["sentence_counts"] == (1, 1, 1)

    def test_scale_one_is_identity(self) -> None:
        config = demo_config()
        assert config.scaled(1.0) is config

    def test_non_positive_scale_rejected(self) -> None:
        with pytest.raises(ValueError):
            demo_config().scaled(0.0)
        with pytest.raises(ValueError):
            demo_config().scaled(-2.0)

    def test_as_dict_shape(self) -> None:
        payload = demo_config().as_dict(scale=0.5)
        assert payload["name"] == "demo"
        assert payload["scale"] == 0.5
        assert payload["params"] == {"sentence_counts": (100, 400)}
        assert payload["key_columns"] == ["sentences", "mss"]
        assert payload["metrics"] == {"unique_subtrees": "exact"}


class TestRegistry:
    def test_all_builtin_experiments_registered(self) -> None:
        names = experiment_names()
        assert len(names) == len(set(names))
        for expected in (
            "figure2_index_keys",
            "figure8_index_size",
            "table1_size_ratio",
            "figure13_scalability",
            "table2_system_comparison",
            "table3_join_counts",
            "serve_cold_warm",
            "shard_scalability",
            "update_throughput",
            "ablation_cover_selection",
            "ablation_storage",
        ):
            assert expected in names

    def test_every_config_names_a_known_runner(self) -> None:
        for config in all_configs():
            assert config.runner in RUNNERS, config.name

    def test_get_config_unknown_name(self) -> None:
        with pytest.raises(UnknownExperimentError, match="no_such_experiment"):
            get_config("no_such_experiment")

    def test_register_duplicate_rejected_unless_replace(self) -> None:
        config = demo_config(name="registry_test_dup")
        try:
            register(config)
            with pytest.raises(ValueError, match="already registered"):
                register(config)
            replaced = register(config.with_params(sentence_counts=(9,)), replace=True)
            assert get_config("registry_test_dup") is replaced
        finally:
            _REGISTRY.pop("registry_test_dup", None)

    def test_register_unknown_runner_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown runner"):
            register(demo_config(name="registry_test_bad", runner="nope"))
        assert "registry_test_bad" not in experiment_names()

    def test_scalable_params_cover_registry_sizes(self) -> None:
        # Every corpus-size parameter used by a registered config must be
        # scalable, or REPRO_BENCH_SCALE would silently miss it.
        for config in all_configs():
            for key in config.params:
                if key.startswith("sentence"):
                    assert key in SCALABLE_PARAMS, (config.name, key)
