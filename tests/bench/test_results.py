"""Unit tests for the experiment result container."""

from __future__ import annotations

import json

import pytest

from repro.bench.results import ExperimentResult, geometric_spread


@pytest.fixture()
def result() -> ExperimentResult:
    result = ExperimentResult(
        name="Figure X",
        description="a demo table",
        columns=["size", "coding", "value"],
    )
    result.add_row(100, "filter", 1.5)
    result.add_row(100, "root-split", 2.5)
    result.add_row(200, "filter", 3.0)
    return result


class TestExperimentResult:
    def test_add_row_checks_arity(self, result: ExperimentResult) -> None:
        with pytest.raises(ValueError):
            result.add_row(1, 2)

    def test_column(self, result: ExperimentResult) -> None:
        assert result.column("size") == [100, 100, 200]
        with pytest.raises(ValueError):
            result.column("missing")

    def test_filtered(self, result: ExperimentResult) -> None:
        rows = result.filtered(size=100, coding="filter")
        assert rows == [[100, "filter", 1.5]]
        assert result.filtered(size=999) == []

    def test_as_dicts(self, result: ExperimentResult) -> None:
        dicts = result.as_dicts()
        assert dicts[0] == {"size": 100, "coding": "filter", "value": 1.5}

    def test_to_text_contains_everything(self, result: ExperimentResult) -> None:
        result.add_note("a note")
        text = result.to_text()
        assert "Figure X" in text
        assert "root-split" in text
        assert "note: a note" in text
        # header + separator + three rows + title/description/blank + note
        assert len(text.splitlines()) == 3 + 2 + 3 + 1

    def test_to_text_on_empty_result(self) -> None:
        empty = ExperimentResult("Empty", "no rows", ["a", "b"])
        assert "Empty" in empty.to_text()

    def test_value_formatting(self) -> None:
        result = ExperimentResult("F", "d", ["v"])
        result.add_row(1_234_567)
        result.add_row(0.00012)
        result.add_row(12.3456)
        text = result.to_text()
        assert "1,234,567" in text
        assert "0.00012" in text
        assert "12.346" in text


class TestRoundTrip:
    def test_to_dict_shape(self, result: ExperimentResult) -> None:
        result.add_note("a note")
        payload = result.to_dict()
        assert payload == {
            "name": "Figure X",
            "description": "a demo table",
            "columns": ["size", "coding", "value"],
            "rows": [[100, "filter", 1.5], [100, "root-split", 2.5], [200, "filter", 3.0]],
            "notes": ["a note"],
        }

    def test_to_dict_copies_rows(self, result: ExperimentResult) -> None:
        payload = result.to_dict()
        payload["rows"][0][0] = 999
        assert result.rows[0][0] == 100

    def test_from_dict_round_trip(self, result: ExperimentResult) -> None:
        result.add_note("a note")
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.columns == result.columns
        assert rebuilt.rows == result.rows
        assert rebuilt.notes == result.notes
        assert rebuilt.as_dicts() == result.as_dicts()
        assert rebuilt.to_text() == result.to_text()

    def test_round_trip_through_json_text(self, result: ExperimentResult) -> None:
        rebuilt = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.to_text() == result.to_text()
        assert rebuilt.filtered(size=100, coding="filter") == [[100, "filter", 1.5]]

    def test_from_dict_checks_arity(self) -> None:
        payload = {
            "name": "F",
            "description": "d",
            "columns": ["a", "b"],
            "rows": [[1, 2, 3]],
            "notes": [],
        }
        with pytest.raises(ValueError):
            ExperimentResult.from_dict(payload)


class TestGeometricSpread:
    def test_spread(self) -> None:
        assert geometric_spread([1.0, 10.0, 100.0]) == 100.0

    def test_ignores_non_positive(self) -> None:
        assert geometric_spread([0.0, -1.0, 2.0, 8.0]) == 4.0

    def test_empty(self) -> None:
        assert geometric_spread([]) == 0.0
