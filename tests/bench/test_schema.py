"""Schema validation and run-to-run determinism of bench documents."""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import ExperimentRunner
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    require_valid,
    strip_volatile,
    validate_document,
)
from tests.bench.conftest import make_document


class TestValidateDocument:
    def test_valid_document_has_no_errors(self) -> None:
        assert validate_document(make_document()) == []
        require_valid(make_document())  # must not raise

    def test_non_dict_is_rejected(self) -> None:
        assert validate_document([1, 2]) != []
        assert validate_document(None) != []

    def test_missing_top_level_field(self) -> None:
        document = make_document()
        del document["environment"]
        assert any("environment" in error for error in validate_document(document))

    def test_wrong_schema_version(self) -> None:
        document = make_document(schema_version=SCHEMA_VERSION + 1)
        assert any("schema_version" in error for error in validate_document(document))

    def test_wrong_kind(self) -> None:
        document = make_document(kind="something-else")
        assert any("kind" in error for error in validate_document(document))

    def test_experiment_must_equal_config_name(self) -> None:
        document = make_document(experiment="other")
        assert any("must equal" in error for error in validate_document(document))

    def test_bad_metric_direction(self) -> None:
        document = make_document()
        document["config"]["metrics"]["value"] = "sideways"
        assert any("direction" in error for error in validate_document(document))

    def test_metric_must_be_a_result_column(self) -> None:
        document = make_document()
        document["config"]["metrics"]["missing_col"] = "lower"
        assert any("missing_col" in error for error in validate_document(document))

    def test_key_and_timing_columns_must_exist(self) -> None:
        document = make_document()
        document["config"]["key_columns"] = ["nope"]
        assert any("key_columns" in error for error in validate_document(document))
        document = make_document()
        document["config"]["timing_columns"] = ["nope"]
        assert any("timing_columns" in error for error in validate_document(document))

    def test_row_arity_is_checked(self) -> None:
        document = make_document()
        document["result"]["rows"].append([1, 2])
        assert any("cells" in error for error in validate_document(document))

    def test_row_cells_must_be_scalars(self) -> None:
        document = make_document()
        document["result"]["rows"][0] = [100, {"nested": 1}, 5]
        assert any("scalars" in error for error in validate_document(document))

    def test_git_sha_nullable_but_required(self) -> None:
        document = make_document()
        del document["environment"]["git_sha"]
        assert any("git_sha" in error for error in validate_document(document))
        document = make_document()
        document["environment"]["git_sha"] = 123
        assert any("git_sha" in error for error in validate_document(document))

    def test_require_valid_raises_with_all_errors(self) -> None:
        document = make_document(kind="bad")
        del document["measurement"]
        with pytest.raises(SchemaError) as excinfo:
            require_valid(document)
        assert "kind" in str(excinfo.value)
        assert "measurement" in str(excinfo.value)


class TestStripVolatile:
    def test_drops_measurement_and_timestamp(self) -> None:
        stripped = strip_volatile(make_document())
        assert "measurement" not in stripped
        assert "generated_at" not in stripped["environment"]

    def test_masks_timing_columns_only(self) -> None:
        stripped = strip_volatile(make_document())
        # "value" is a timing column, "size" and "count" are not.
        assert stripped["result"]["rows"] == [[100, None, 5], [200, None, 9]]

    def test_does_not_mutate_the_original(self) -> None:
        document = make_document()
        strip_volatile(document)
        assert document["measurement"]["wall_seconds"] == 0.5
        assert document["result"]["rows"][0][1] == 1.0


class TestDeterminism:
    """Two runs of the same config + seed must agree on every non-timing field."""

    def _run_fresh(self, name: str, **overrides: object) -> dict:
        # A fresh runner per call: new workdir, new context, new corpora.
        with ExperimentRunner(seed=17) as runner:
            report = runner.run(name, overrides=overrides, write=False)
        # Round-trip through JSON so comparisons see what lands on disk.
        return strip_volatile(json.loads(json.dumps(report.document)))

    def test_pure_computation_experiment_is_deterministic(self) -> None:
        first = self._run_fresh("table3_join_counts")
        second = self._run_fresh("table3_join_counts")
        assert first == second

    def test_index_build_experiment_is_deterministic(self) -> None:
        # figure8 measures index *file sizes*: this regression-tests that
        # index construction (including the fixed-width metadata record) is
        # byte-deterministic across fresh contexts.
        first = self._run_fresh("figure8_index_size", sentence_counts=(10, 30))
        second = self._run_fresh("figure8_index_size", sentence_counts=(10, 30))
        assert first == second
        sizes = [row for row in first["result"]["rows"]]
        assert sizes, "figure8 must produce rows"
