"""Unit tests of the regression gate (tolerance bands, structure, CI guard)."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.gate import (
    FAILING_STATUSES,
    STATUS_IMPROVED,
    STATUS_MISSING,
    STATUS_NEW,
    STATUS_NEUTRAL,
    STATUS_REGRESSED,
    GateError,
    GateOptions,
    compare,
    compare_directories,
    load_documents,
)
from tests.bench.conftest import make_document, scale_metric


def verdict_for(comparison, metric: str):
    matching = [v for v in comparison.verdicts if v.metric == metric]
    assert matching, f"no verdict for {metric}: {comparison.verdicts}"
    return matching[0]


class TestGateOptions:
    def test_defaults(self) -> None:
        options = GateOptions()
        assert options.effective_tolerance(ci=False) == options.tolerance
        assert options.effective_tolerance(ci=True) == options.ci_tolerance
        assert options.ci_tolerance >= options.tolerance

    def test_negative_tolerance_rejected(self) -> None:
        with pytest.raises(ValueError):
            GateOptions(tolerance=-0.1)
        with pytest.raises(ValueError):
            GateOptions(ci_tolerance=-1.0)


class TestCompareClassification:
    def test_identical_documents_are_neutral(self) -> None:
        comparison = compare(make_document(), make_document())
        assert comparison.ok
        assert {v.status for v in comparison.verdicts} == {STATUS_NEUTRAL}
        assert verdict_for(comparison, "value").ratio == pytest.approx(1.0)

    def test_lower_metric_doubling_regresses(self) -> None:
        current = scale_metric(make_document(), "value", 2.0)
        comparison = compare(make_document(), current)
        verdict = verdict_for(comparison, "value")
        assert verdict.status == STATUS_REGRESSED
        assert verdict.ratio == pytest.approx(2.0)
        assert not comparison.ok
        assert any("value" in failure for failure in comparison.failures)

    def test_lower_metric_halving_improves(self) -> None:
        current = scale_metric(make_document(), "value", 0.5)
        comparison = compare(make_document(), current)
        assert verdict_for(comparison, "value").status == STATUS_IMPROVED
        assert comparison.ok  # improvements never fail the gate

    def test_tolerance_boundaries(self) -> None:
        options = GateOptions(tolerance=0.35, ci_tolerance=0.35)
        # Just inside the band: neutral.  Just outside: regressed/improved.
        for factor, expected in (
            (1.34, STATUS_NEUTRAL),
            (1.36, STATUS_REGRESSED),
            (1 / 1.34, STATUS_NEUTRAL),
            (1 / 1.36, STATUS_IMPROVED),
        ):
            current = scale_metric(make_document(), "value", factor)
            verdict = verdict_for(compare(make_document(), current, options), "value")
            assert verdict.status == expected, (factor, verdict)

    def test_higher_direction_inverts_orientation(self) -> None:
        baseline = make_document()
        baseline["config"]["metrics"]["value"] = "higher"
        current = scale_metric(make_document(), "value", 0.4)
        current["config"]["metrics"]["value"] = "higher"
        verdict = verdict_for(compare(baseline, current), "value")
        # Dropping a higher-is-better metric is a regression, ratio > 1.
        assert verdict.status == STATUS_REGRESSED
        assert verdict.ratio == pytest.approx(2.5)

    def test_exact_metric_any_change_regresses(self) -> None:
        current = make_document()
        current["result"]["rows"][1][2] = 10  # count 9 -> 10
        verdict = verdict_for(compare(make_document(), current), "count")
        assert verdict.status == STATUS_REGRESSED
        assert "9" in verdict.detail and "10" in verdict.detail

    def test_exact_metric_ignores_tolerance(self) -> None:
        current = make_document()
        current["result"]["rows"][0][2] = 6
        options = GateOptions(tolerance=10.0, ci_tolerance=10.0)
        verdict = verdict_for(compare(make_document(), current, options), "count")
        assert verdict.status == STATUS_REGRESSED


class TestCompareStructure:
    def test_missing_rows_fail_the_gate(self) -> None:
        current = make_document()
        del current["result"]["rows"][1]
        comparison = compare(make_document(), current)
        assert not comparison.ok
        assert any("missing" in problem for problem in comparison.problems)

    def test_extra_current_rows_are_allowed(self) -> None:
        current = make_document()
        current["result"]["rows"].append([300, 3.0, 12])
        assert compare(make_document(), current).ok

    def test_metric_dropped_from_current_config_is_missing(self) -> None:
        current = make_document()
        del current["config"]["metrics"]["count"]
        comparison = compare(make_document(), current)
        verdict = verdict_for(comparison, "count")
        assert verdict.status == STATUS_MISSING
        assert verdict.status in FAILING_STATUSES
        assert not comparison.ok

    def test_metric_without_baseline_column_is_new(self) -> None:
        baseline = make_document()
        baseline["config"]["metrics"] = {"value": "lower"}
        baseline["config"]["key_columns"] = ["size"]
        baseline["result"]["columns"] = ["size", "value"]
        baseline["result"]["rows"] = [[100, 1.0], [200, 2.0]]
        comparison = compare(baseline, make_document())
        verdict = verdict_for(comparison, "count")
        assert verdict.status == STATUS_NEW
        assert comparison.ok  # new metrics are informational

    def test_mismatched_experiments_are_a_problem(self) -> None:
        other = make_document(experiment="other")
        other["config"]["name"] = "other"
        comparison = compare(make_document(), other)
        assert not comparison.ok
        assert any("mismatch" in problem for problem in comparison.problems)

    def test_invalid_document_is_a_problem(self) -> None:
        broken = make_document()
        del broken["result"]
        comparison = compare(broken, make_document())
        assert not comparison.ok
        assert any("invalid" in problem for problem in comparison.problems)


class TestCiNoiseGuard:
    def test_ci_environment_flag_widens_tolerance(self) -> None:
        baseline = make_document()
        baseline["environment"]["ci"] = True
        # 1.5x would regress at the default 0.35 band but not at the CI 0.60 band.
        current = scale_metric(make_document(), "value", 1.5)
        verdict = verdict_for(compare(baseline, current), "value")
        assert verdict.status == STATUS_NEUTRAL
        # The same diff without the CI flag regresses.
        verdict = verdict_for(
            compare(make_document(), scale_metric(make_document(), "value", 1.5)), "value"
        )
        assert verdict.status == STATUS_REGRESSED

    def test_ci_env_var_at_gate_time_widens_tolerance(self, monkeypatch) -> None:
        monkeypatch.setenv("CI", "true")
        current = scale_metric(make_document(), "value", 1.5)
        verdict = verdict_for(compare(make_document(), current), "value")
        assert verdict.status == STATUS_NEUTRAL

    def test_no_ci_flag_uses_tight_band(self, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        current = scale_metric(make_document(), "value", 1.5)
        verdict = verdict_for(compare(make_document(), current), "value")
        assert verdict.status == STATUS_REGRESSED


def _write_documents(directory, documents) -> None:
    os.makedirs(directory, exist_ok=True)
    for document in documents:
        path = os.path.join(directory, f"BENCH_{document['experiment']}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)


class TestCompareDirectories:
    def test_identical_directories_pass(self, tmp_path, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        _write_documents(tmp_path / "a", [make_document()])
        _write_documents(tmp_path / "b", [make_document()])
        report = compare_directories(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report.ok
        assert "gate: OK" in report.to_text()

    def test_regressed_directory_fails(self, tmp_path, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        _write_documents(tmp_path / "a", [make_document()])
        _write_documents(tmp_path / "b", [scale_metric(make_document(), "value", 2.0)])
        report = compare_directories(str(tmp_path / "a"), str(tmp_path / "b"))
        assert not report.ok
        assert "REGRESSED" in report.to_text()

    def test_experiment_missing_from_current_fails(self, tmp_path, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        other = make_document(experiment="other")
        other["config"]["name"] = "other"
        _write_documents(tmp_path / "a", [make_document(), other])
        _write_documents(tmp_path / "b", [make_document()])
        report = compare_directories(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report.missing_experiments == ["other"]
        assert not report.ok
        assert "MISSING" in report.to_text()

    def test_new_experiment_in_current_is_allowed(self, tmp_path, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        other = make_document(experiment="other")
        other["config"]["name"] = "other"
        _write_documents(tmp_path / "a", [make_document()])
        _write_documents(tmp_path / "b", [make_document(), other])
        report = compare_directories(str(tmp_path / "a"), str(tmp_path / "b"))
        assert report.new_experiments == ["other"]
        assert report.ok

    def test_empty_baseline_is_a_gate_error(self, tmp_path) -> None:
        (tmp_path / "a").mkdir()
        _write_documents(tmp_path / "b", [make_document()])
        with pytest.raises(GateError):
            compare_directories(str(tmp_path / "a"), str(tmp_path / "b"))

    def test_missing_directory_is_a_gate_error(self, tmp_path) -> None:
        with pytest.raises(GateError):
            compare_directories(str(tmp_path / "nope"), str(tmp_path / "nope"))

    def test_unreadable_json_is_a_gate_error(self, tmp_path) -> None:
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "BENCH_bad.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(GateError):
            load_documents(str(tmp_path / "a"))

    def test_non_bench_json_is_a_gate_error(self, tmp_path) -> None:
        (tmp_path / "a").mkdir()
        (tmp_path / "a" / "BENCH_odd.json").write_text("{\"x\": 1}", encoding="utf-8")
        with pytest.raises(GateError):
            load_documents(str(tmp_path / "a"))

    def test_non_bench_filenames_are_ignored(self, tmp_path) -> None:
        _write_documents(tmp_path / "a", [make_document()])
        (tmp_path / "a" / "notes.json").write_text("[]", encoding="utf-8")
        (tmp_path / "a" / "demo.txt").write_text("table", encoding="utf-8")
        assert list(load_documents(str(tmp_path / "a"))) == ["demo"]
