"""Unit tests of the shared CI / low-core timing guard -- and that the
benchmarks actually route their timing bars through it."""

from __future__ import annotations

import importlib
import os

from repro.bench import guard
from repro.bench.guard import DEFAULT_MIN_CORES, timing_bars_enabled


class TestTimingBarsEnabled:
    def test_disabled_under_ci(self, monkeypatch) -> None:
        monkeypatch.setenv("CI", "true")
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert not timing_bars_enabled()

    def test_empty_ci_variable_does_not_trigger(self, monkeypatch) -> None:
        monkeypatch.setenv("CI", "")
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert timing_bars_enabled()

    def test_disabled_on_single_core_boxes(self, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert not timing_bars_enabled()

    def test_enabled_on_quiet_multicore_boxes(self, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: DEFAULT_MIN_CORES)
        assert timing_bars_enabled()

    def test_min_cores_parameter_raises_the_floor(self, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert timing_bars_enabled(min_cores=2)
        assert not timing_bars_enabled(min_cores=4)

    def test_unknown_cpu_count_counts_as_one(self, monkeypatch) -> None:
        monkeypatch.delenv("CI", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert not timing_bars_enabled()


class TestGuardIsHonoured:
    """Regression test: the flake-prone benchmarks must use the *shared*
    guard rather than re-implementing (and drifting from) the CI check."""

    def test_timing_sensitive_benchmarks_import_the_shared_guard(self) -> None:
        for module_name in (
            "benchmarks.test_table2_system_comparison",
            "benchmarks.test_shard_scalability",
            "benchmarks.test_serve_cache",
        ):
            module = importlib.import_module(module_name)
            assert module.timing_bars_enabled is guard.timing_bars_enabled, module_name
