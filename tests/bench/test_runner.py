"""Unit tests of the ExperimentRunner (artefacts, env capture, warmup, scale)."""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.bench.config import ExperimentConfig
from repro.bench.registry import RUNNERS
from repro.bench.results import ExperimentResult
from repro.bench.runner import (
    SCALE_ENV_VAR,
    ExperimentRunner,
    capture_environment,
    json_filename,
)
from repro.bench.schema import validate_document

CALLS: list = []


def _counting_runner(context, **params) -> ExperimentResult:
    CALLS.append(dict(params))
    result = ExperimentResult(
        name="Counting",
        description="records how often it ran",
        columns=["run", "value"],
    )
    result.add_row(len(CALLS), float(params.get("value", 1.0)))
    return result


@pytest.fixture()
def counting_config():
    RUNNERS["_counting"] = _counting_runner
    CALLS.clear()
    try:
        yield ExperimentConfig(
            name="counting",
            title="Counting",
            description="test runner",
            runner="_counting",
            params={"value": 2.0, "sentence_count": 100},
            key_columns=("run",),
            metrics={"value": "lower"},
        )
    finally:
        RUNNERS.pop("_counting", None)


class TestCaptureEnvironment:
    def test_environment_block_shape(self) -> None:
        environment = capture_environment()
        assert isinstance(environment["python"], str)
        assert isinstance(environment["cpu_count"], int) and environment["cpu_count"] >= 1
        assert isinstance(environment["ci"], bool)
        assert environment["git_sha"] is None or isinstance(environment["git_sha"], str)
        assert "T" in environment["generated_at"]  # ISO timestamp

    def test_json_filename(self) -> None:
        assert json_filename("figure8_index_size") == "BENCH_figure8_index_size.json"


class TestExperimentRunner:
    def test_writes_text_and_json_artefacts(self, tmp_path, counting_config) -> None:
        with ExperimentRunner(out_dir=str(tmp_path / "out")) as runner:
            report = runner.run(counting_config)
        assert report.text_path.endswith("counting.txt")
        assert report.json_path.endswith("BENCH_counting.json")
        assert os.path.exists(report.text_path) and os.path.exists(report.json_path)
        with open(report.json_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert validate_document(document) == []
        assert document == json.loads(json.dumps(report.document))
        assert "Counting" in open(report.text_path, encoding="utf-8").read()

    def test_write_false_skips_artefacts(self, tmp_path, counting_config) -> None:
        with ExperimentRunner(out_dir=str(tmp_path / "out")) as runner:
            report = runner.run(counting_config, write=False)
        assert report.json_path is None and report.text_path is None
        assert not os.path.exists(str(tmp_path / "out" / "BENCH_counting.json"))
        assert validate_document(json.loads(json.dumps(report.document))) == []

    def test_no_out_dir_means_no_artefacts(self, counting_config) -> None:
        with ExperimentRunner() as runner:
            report = runner.run(counting_config)
        assert report.json_path is None and report.text_path is None

    def test_warmup_runs_are_not_measured(self, counting_config) -> None:
        config = dataclasses.replace(counting_config, warmup=2)
        with ExperimentRunner() as runner:
            report = runner.run(config, write=False)
        assert len(CALLS) == 3  # two warmups + one measured
        assert report.document["measurement"]["warmup_runs"] == 2
        assert report.document["measurement"]["measured_runs"] == 1

    def test_overrides_reach_the_runner_and_the_document(self, counting_config) -> None:
        with ExperimentRunner() as runner:
            report = runner.run(counting_config, overrides={"value": 7.5}, write=False)
        assert CALLS[-1]["value"] == 7.5
        assert report.params["value"] == 7.5
        assert report.document["config"]["params"]["value"] == 7.5

    def test_scale_env_var_is_honoured(self, monkeypatch, counting_config) -> None:
        monkeypatch.setenv(SCALE_ENV_VAR, "0.25")
        with ExperimentRunner() as runner:
            assert runner.scale == 0.25
            report = runner.run(counting_config, write=False)
        assert CALLS[-1]["sentence_count"] == 25
        assert report.document["config"]["scale"] == 0.25

    def test_explicit_scale_beats_env_var(self, monkeypatch, counting_config) -> None:
        monkeypatch.setenv(SCALE_ENV_VAR, "0.25")
        with ExperimentRunner(scale=0.5) as runner:
            report = runner.run(counting_config, write=False)
        assert report.params["sentence_count"] == 50

    def test_non_positive_scale_rejected(self) -> None:
        with pytest.raises(ValueError):
            ExperimentRunner(scale=0.0)

    def test_run_many_shares_one_context(self, counting_config) -> None:
        with ExperimentRunner() as runner:
            context = runner.context
            reports = runner.run_many([counting_config, counting_config], write=False)
            assert runner.context is context
        assert [r.result.rows[0][0] for r in reports] == [1, 2]

    def test_unknown_name_raises(self) -> None:
        from repro.bench.registry import UnknownExperimentError

        with ExperimentRunner() as runner:
            with pytest.raises(UnknownExperimentError):
                runner.run("no_such_experiment")
