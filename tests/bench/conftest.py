"""Shared helpers for the bench-harness unit tests."""

from __future__ import annotations

import copy
from typing import Dict


#: A minimal valid bench document (schema version 1) the tests mutate.
_TEMPLATE: Dict[str, object] = {
    "schema_version": 1,
    "kind": "repro-bench-result",
    "experiment": "demo",
    "config": {
        "name": "demo",
        "title": "Demo",
        "description": "a demo experiment",
        "runner": "demo_runner",
        "seed": 17,
        "scale": 1.0,
        "params": {"n": 3},
        "key_columns": ["size"],
        "metrics": {"value": "lower", "count": "exact"},
        "timing_columns": ["value"],
    },
    "environment": {
        "python": "3.11.7",
        "implementation": "CPython",
        "platform": "linux",
        "cpu_count": 4,
        "ci": False,
        "git_sha": None,
        "generated_at": "2026-01-01T00:00:00+00:00",
    },
    "measurement": {"wall_seconds": 0.5, "warmup_runs": 0, "measured_runs": 1},
    "result": {
        "name": "Demo",
        "description": "a demo experiment",
        "columns": ["size", "value", "count"],
        "rows": [[100, 1.0, 5], [200, 2.0, 9]],
        "notes": [],
    },
}


def make_document(**overrides: object) -> dict:
    """A fresh valid bench document; keyword overrides replace top-level blocks."""
    document = copy.deepcopy(_TEMPLATE)
    document.update(overrides)
    return document


def scale_metric(document: dict, column: str, factor: float) -> dict:
    """Multiply every cell of *column* in-place (simulates a perf change)."""
    columns = document["result"]["columns"]
    position = columns.index(column)
    for row in document["result"]["rows"]:
        row[position] = row[position] * factor
    return document
