"""Smoke tests for the experiment runners at tiny scale.

The real measurements live in ``benchmarks/``; these tests only check that
every runner produces a well-formed table whose qualitative shape matches the
paper even at a very small corpus size, so a broken experiment is caught by
``pytest tests/`` without paying benchmark-level runtimes.
"""

from __future__ import annotations

import pytest

from repro.bench.context import ExperimentContext
from repro.bench.experiments import (
    CODINGS,
    figure2_index_keys,
    figure3_branching,
    figure8_index_size,
    figure9_posting_counts,
    figure10_build_time,
    figure11_runtime_by_matches,
    figure12_runtime_by_query_size,
    figure13_scalability,
    shard_scalability,
    table1_size_ratio,
    table2_system_comparison,
    table3_join_counts,
)


@pytest.fixture(scope="module")
def context(tmp_path_factory) -> ExperimentContext:
    with ExperimentContext(workdir=str(tmp_path_factory.mktemp("bench")), seed=23) as ctx:
        yield ctx


class TestContext:
    def test_corpus_is_cached(self, context: ExperimentContext) -> None:
        assert context.corpus(30) is context.corpus(30)
        assert len(context.corpus(30)) == 30

    def test_index_is_cached(self, context: ExperimentContext) -> None:
        first = context.subtree_index(30, "filter", 2)
        assert context.subtree_index(30, "filter", 2) is first

    def test_executor_and_store(self, context: ExperimentContext) -> None:
        from repro.query.parser import parse_query

        executor = context.executor(30, "root-split", 2)
        assert executor.execute(parse_query("NP")).total_matches > 0

    def test_tree_store(self, context: ExperimentContext) -> None:
        store = context.tree_store(30)
        assert len(store) == 30
        assert context.tree_store(30) is store  # cached, closed by the context

    def test_held_out_trees_differ_from_corpus(self, context: ExperimentContext) -> None:
        from repro.trees.penn import to_penn

        corpus_texts = {to_penn(tree.root) for tree in context.corpus(30)}
        held_out_texts = {to_penn(tree.root) for tree in context.held_out_trees(10)}
        assert not corpus_texts & held_out_texts or len(held_out_texts) > 1


class TestIndexExperiments:
    def test_figure2(self, context: ExperimentContext) -> None:
        result = figure2_index_keys(context, sentence_counts=(5, 20), mss_values=(1, 2, 3))
        assert len(result.rows) == 6
        for mss in (1, 2, 3):
            series = [row[2] for row in result.rows if row[1] == mss]
            assert series == sorted(series)

    def test_figure3(self, context: ExperimentContext) -> None:
        result = figure3_branching(context, sentence_count=20, sizes=(2, 3))
        assert result.columns == ["branching_factor", "subtree_size", "avg_subtrees"]
        assert result.rows

    def test_figure8_and_table1(self, context: ExperimentContext) -> None:
        figure8 = figure8_index_size(context, sentence_counts=(20,), mss_values=(1, 3, 5))
        sizes = {(row[1], row[2]): row[3] for row in figure8.rows}
        assert sizes[("filter", 5)] <= sizes[("root-split", 5)] <= sizes[("subtree-interval", 5)]

        table1 = table1_size_ratio(figure8)
        ratios = {row[1]: row[2] for row in table1.rows}
        assert ratios["root-split"] <= ratios["subtree-interval"]

    def test_figure9(self, context: ExperimentContext) -> None:
        result = figure9_posting_counts(context, sentence_counts=(20,), mss_values=(1, 3))
        postings = {(row[1], row[2]): row[3] for row in result.rows}
        assert postings[("root-split", 1)] == postings[("subtree-interval", 1)]
        assert postings[("filter", 3)] <= postings[("root-split", 3)] <= postings[("subtree-interval", 3)]

    def test_figure10(self, context: ExperimentContext) -> None:
        result = figure10_build_time(context, sentence_counts=(20,), mss_values=(1, 3))
        assert all(row[3] >= 0 for row in result.rows)
        assert len(result.rows) == len(CODINGS) * 2


class TestQueryExperiments:
    def test_figure11(self, context: ExperimentContext) -> None:
        result = figure11_runtime_by_matches(context, sentence_count=40, mss_values=(1, 2))
        assert result.rows
        assert all(row[4] >= 0 for row in result.rows)
        assert {row[0] for row in result.rows} == set(CODINGS)

    def test_figure12(self, context: ExperimentContext) -> None:
        result = figure12_runtime_by_query_size(
            context, sentence_count=40, mss_values=(1, 2), min_matches=1
        )
        assert result.rows
        assert all(isinstance(row[2], int) for row in result.rows)

    def test_figure13(self, context: ExperimentContext) -> None:
        result = figure13_scalability(context, sentence_counts=(20, 40), mss=2)
        assert len(result.rows) == 2 * len(CODINGS)
        assert all(row[2] >= 0 for row in result.rows)

    def test_table2(self, context: ExperimentContext) -> None:
        result = table2_system_comparison(context, sentence_count=40, cutoffs=(0.01,))
        systems = {row[1] for row in result.rows}
        assert "RS" in systems and "ATG" in systems and "FB(0.01)" in systems

    def test_shard_scalability(self, context: ExperimentContext) -> None:
        result = shard_scalability(
            context, sentence_count=40, shard_counts=(1, 2), warm_passes=1
        )
        rows = result.as_dicts()
        assert [row["shards"] for row in rows] == [1, 2]
        # Merged results are identical regardless of partitioning.
        assert len({row["total_matches"] for row in rows}) == 1
        for row in rows:
            assert row["build_seconds"] > 0
            assert row["build_speedup"] > 0

    def test_shard_scalability_baseline_without_one_shard_row(
        self, context: ExperimentContext
    ) -> None:
        result = shard_scalability(
            context, sentence_count=40, shard_counts=(2,), warm_passes=1
        )
        (row,) = result.as_dicts()
        assert row["build_speedup"] == 1.0  # the smallest count is its own baseline

    def test_table3(self) -> None:
        result = table3_join_counts(mss_values=(2, 5))
        assert len(result.rows) == 4 * 2
        for row in result.rows:
            group, mss, rs, si = row
            assert si <= rs + 1e-9
