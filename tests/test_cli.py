"""End-to-end tests of the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def corpus_file(tmp_path) -> str:
    path = str(tmp_path / "corpus.penn")
    assert main(["generate", "--sentences", "40", "--seed", "3", "--out", path]) == 0
    return path


@pytest.fixture()
def index_file(tmp_path, corpus_file) -> str:
    path = str(tmp_path / "corpus.si")
    assert main(["build", corpus_file, "--mss", "3", "--coding", "root-split", "--out", path]) == 0
    return path


class TestGenerate:
    def test_generate_writes_corpus(self, tmp_path, capsys) -> None:
        path = str(tmp_path / "gen.penn")
        assert main(["generate", "--sentences", "40", "--seed", "3", "--out", path]) == 0
        assert "40 parse trees" in capsys.readouterr().out
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 40
        assert lines[0].startswith("(ROOT")

    def test_generate_is_deterministic(self, tmp_path) -> None:
        first = str(tmp_path / "a.penn")
        second = str(tmp_path / "b.penn")
        main(["generate", "--sentences", "10", "--seed", "5", "--out", first])
        main(["generate", "--sentences", "10", "--seed", "5", "--out", second])
        assert open(first).read() == open(second).read()


class TestBuildAndStats:
    def test_build_reports_counts(self, tmp_path, corpus_file, capsys) -> None:
        out = str(tmp_path / "counts.si")
        assert main(["build", corpus_file, "--mss", "2", "--coding", "root-split", "--out", out]) == 0
        captured = capsys.readouterr()
        assert "root-split index" in captured.out
        assert "keys" in captured.out

    def test_stats(self, index_file, capsys) -> None:
        assert main(["stats", index_file]) == 0
        captured = capsys.readouterr()
        assert "coding          : root-split" in captured.out
        assert "mss             : 3" in captured.out

    def test_stats_top_keys(self, index_file, capsys) -> None:
        assert main(["stats", index_file, "--top", "5"]) == 0
        captured = capsys.readouterr()
        assert "top 5 keys" in captured.out

    @pytest.mark.parametrize("coding", ["filter", "subtree-interval"])
    def test_build_other_codings(self, tmp_path, corpus_file, coding) -> None:
        out = str(tmp_path / f"{coding}.si")
        assert main(["build", corpus_file, "--coding", coding, "--out", out]) == 0


class TestBuildValidation:
    def test_mss_below_one_is_friendly(self, corpus_file, tmp_path, capsys) -> None:
        out = str(tmp_path / "bad.si")
        assert main(["build", corpus_file, "--mss", "0", "--out", out]) == 2
        assert "--mss must be at least 1" in capsys.readouterr().err

    def test_missing_corpus_is_friendly(self, tmp_path, capsys) -> None:
        out = str(tmp_path / "bad.si")
        assert main(["build", str(tmp_path / "nope.penn"), "--out", out]) == 2
        assert "corpus file not found" in capsys.readouterr().err

    def test_bad_shard_and_worker_counts(self, corpus_file, tmp_path, capsys) -> None:
        out = str(tmp_path / "bad.si")
        assert main(["build", corpus_file, "--shards", "0", "--out", out]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["build", corpus_file, "--shards", "2", "--workers", "0", "--out", out]) == 2
        assert "--workers" in capsys.readouterr().err


class TestSharded:
    @pytest.fixture()
    def manifest_file(self, tmp_path, corpus_file) -> str:
        out = str(tmp_path / "sharded.si")
        assert main(
            ["build", corpus_file, "--mss", "3", "--shards", "3", "--workers", "1", "--out", out]
        ) == 0
        return out + ".manifest.json"

    def test_build_reports_shards(self, tmp_path, corpus_file, capsys) -> None:
        out = str(tmp_path / "s.si")
        assert main(["build", corpus_file, "--shards", "2", "--workers", "1", "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "2 shards" in captured
        assert "manifest:" in captured

    def test_query_against_manifest(self, manifest_file, index_file, capsys) -> None:
        assert main(["query", manifest_file, "NP(DT)(NN)", "--show-tids"]) == 0
        sharded_out = capsys.readouterr().out
        assert main(["query", index_file, "NP(DT)(NN)", "--show-tids"]) == 0
        single_out = capsys.readouterr().out
        # Identical matches, counts and tid lists through either path.
        assert sharded_out.splitlines()[0].split("(")[0] == single_out.splitlines()[0].split("(")[0]
        assert sharded_out.splitlines()[1] == single_out.splitlines()[1]

    def test_stats_shows_per_shard_table(self, manifest_file, capsys) -> None:
        assert main(["stats", manifest_file]) == 0
        captured = capsys.readouterr().out
        assert "shards          : 3 (hash partitioner)" in captured

    def test_stats_json(self, manifest_file, index_file, capsys) -> None:
        assert main(["stats", manifest_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sharded"] is True
        assert payload["shard_count"] == 3
        assert len(payload["shards"]) == 3
        assert sum(s["tree_count"] for s in payload["shards"]) == payload["tree_count"]
        # Plain indexes emit the same shape, minus the shard breakdown.
        assert main(["stats", index_file, "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert plain["sharded"] is False
        assert "shards" not in plain


class TestLive:
    @pytest.fixture()
    def live_manifest(self, tmp_path, corpus_file) -> str:
        out = str(tmp_path / "live.si")
        assert main(["build", corpus_file, "--mss", "3", "--live", "--out", out]) == 0
        return out + ".live.json"

    @pytest.fixture()
    def extra_file(self, tmp_path) -> str:
        path = str(tmp_path / "extra.penn")
        assert main(["generate", "--sentences", "6", "--seed", "9", "--out", path]) == 0
        return path

    def test_build_live_reports_manifest(self, tmp_path, corpus_file, capsys) -> None:
        out = str(tmp_path / "b.si")
        assert main(["build", corpus_file, "--live", "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "built live root-split index" in captured
        assert "manifest:" in captured

    def test_build_live_rejects_shards(self, tmp_path, corpus_file, capsys) -> None:
        out = str(tmp_path / "b.si")
        assert main(["build", corpus_file, "--live", "--shards", "2", "--out", out]) == 2
        assert "--live and --shards" in capsys.readouterr().err

    def test_add_then_query_sees_new_trees(self, live_manifest, extra_file, capsys) -> None:
        assert main(["query", live_manifest, "NP"]) == 0
        before = int(capsys.readouterr().out.split(":")[1].split()[0])
        assert main(["add", live_manifest, extra_file]) == 0
        assert "added 6 trees" in capsys.readouterr().out
        assert main(["query", live_manifest, "NP"]) == 0
        after = int(capsys.readouterr().out.split(":")[1].split()[0])
        assert after > before

    def test_add_missing_corpus_is_friendly(self, live_manifest, tmp_path, capsys) -> None:
        assert main(["add", live_manifest, str(tmp_path / "nope.penn")]) == 2
        assert "corpus file not found" in capsys.readouterr().err

    def test_add_malformed_corpus_is_friendly(self, live_manifest, tmp_path, capsys) -> None:
        bad = tmp_path / "bad.penn"
        bad.write_text("(NP ((BAD\n", encoding="utf-8")
        assert main(["add", live_manifest, str(bad)]) == 2
        assert "cannot read corpus" in capsys.readouterr().err

    def test_add_to_non_live_index_is_friendly(self, index_file, extra_file, capsys) -> None:
        assert main(["add", index_file, extra_file]) == 2
        assert "not a live index" in capsys.readouterr().err

    def test_delete_and_unknown_tid(self, live_manifest, capsys) -> None:
        assert main(["delete", live_manifest, "3", "5"]) == 0
        assert "deleted 2 of 2" in capsys.readouterr().out
        assert main(["delete", live_manifest, "3"]) == 2  # already deleted
        assert "no tree with tid 3" in capsys.readouterr().err

    def test_compact_and_stats(self, live_manifest, extra_file, capsys) -> None:
        assert main(["add", live_manifest, extra_file]) == 0
        assert main(["delete", live_manifest, "0"]) == 0
        capsys.readouterr()
        assert main(["compact", live_manifest]) == 0
        out = capsys.readouterr().out
        assert "compacted to epoch 1" in out
        assert "flushed 6 delta trees" in out
        assert main(["compact", live_manifest]) == 0
        assert "nothing to compact" in capsys.readouterr().out
        assert main(["stats", live_manifest]) == 0
        out = capsys.readouterr().out
        assert "kind            : live (epoch 1)" in out
        assert "delta           : 0 trees" in out
        assert "wal             : 0 ops" in out

    def test_stats_json_live_payload(self, live_manifest, extra_file, capsys) -> None:
        assert main(["add", live_manifest, extra_file]) == 0
        capsys.readouterr()
        assert main(["stats", live_manifest, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["live"] is True
        assert payload["sharded"] is False
        assert payload["key_count_semantics"] == "per-source-sum"
        assert payload["epoch"] == 0
        assert payload["delta"]["tree_count"] == 6
        assert payload["wal"]["ops"] == 6
        assert payload["tree_count"] == 46
        assert len(payload["segments"]) == 1


class TestExplain:
    def test_explain_prints_plan_without_joining(self, index_file, capsys) -> None:
        assert main(["query", index_file, "S(NP)(VP(VBZ))", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "plan: strategy=min-rc, mss=3, coding=root-split" in out
        assert "cover:" in out
        assert "postings" in out
        assert "join phase not executed" in out
        assert "matches" not in out  # no execution happened

    def test_explain_rejects_batch_and_repeat(self, index_file, capsys) -> None:
        assert main(["query", index_file, "NP", "--explain", "--batch"]) == 2
        assert "--explain cannot be combined" in capsys.readouterr().err
        assert main(["query", index_file, "NP", "--explain", "--repeat", "3"]) == 2

    def test_explain_works_on_live_index(self, tmp_path, corpus_file, capsys) -> None:
        out = str(tmp_path / "exp.si")
        assert main(["build", corpus_file, "--live", "--out", out]) == 0
        capsys.readouterr()
        assert main(["query", out + ".live.json", "NP(DT)(NN)", "--explain"]) == 0
        assert "fetch total:" in capsys.readouterr().out


def _bench_document(value_factor: float = 1.0) -> dict:
    """A minimal valid bench document with one gated lower-is-better metric."""
    return {
        "schema_version": 1,
        "kind": "repro-bench-result",
        "experiment": "demo",
        "config": {
            "name": "demo", "title": "Demo", "description": "d", "runner": "r",
            "seed": 17, "scale": 1.0, "params": {},
            "key_columns": ["size"], "metrics": {"latency": "lower"},
            "timing_columns": ["latency"],
        },
        "environment": {
            "python": "3.11.7", "implementation": "CPython", "platform": "linux",
            "cpu_count": 4, "ci": False, "git_sha": None,
            "generated_at": "2026-01-01T00:00:00+00:00",
        },
        "measurement": {"wall_seconds": 0.1, "warmup_runs": 0, "measured_runs": 1},
        "result": {
            "name": "Demo", "description": "d", "columns": ["size", "latency"],
            "rows": [[100, 1.0 * value_factor], [200, 2.0 * value_factor]],
            "notes": [],
        },
    }


class TestBench:
    def test_bench_list(self, capsys) -> None:
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "figure8_index_size" in out
        assert "table3_join_counts" in out
        assert "experiments registered" in out

    def test_bench_list_json(self, capsys) -> None:
        assert main(["bench", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [config["name"] for config in payload]
        assert "figure2_index_keys" in names
        assert all("metrics" in config for config in payload)

    def test_bench_list_rejects_names(self, capsys) -> None:
        assert main(["bench", "list", "figure8_index_size"]) == 2
        assert "takes no experiment names" in capsys.readouterr().err

    def test_bench_without_action_is_friendly(self, capsys) -> None:
        assert main(["bench"]) == 2
        assert "pass an action" in capsys.readouterr().err

    def test_bench_run_unknown_experiment(self, tmp_path, capsys) -> None:
        assert main([
            "bench", "run", "no_such_experiment",
            "--out", str(tmp_path / "out"), "--workdir", str(tmp_path / "work"),
        ]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bench_run_emits_artefacts(self, tmp_path, capsys) -> None:
        out = tmp_path / "out"
        assert main([
            "bench", "run", "table3_join_counts",
            "--out", str(out), "--workdir", str(tmp_path / "work"),
        ]) == 0
        assert "table3_join_counts" in capsys.readouterr().out
        assert (out / "table3_join_counts.txt").exists()
        document = json.loads((out / "BENCH_table3_join_counts.json").read_text())
        from repro.bench.schema import validate_document

        assert validate_document(document) == []
        assert document["experiment"] == "table3_join_counts"

    def test_bench_run_json_output(self, tmp_path, capsys) -> None:
        assert main([
            "bench", "run", "table3_join_counts", "--json",
            "--out", str(tmp_path / "out"), "--workdir", str(tmp_path / "work"),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table3_join_counts"

    def test_gate_passes_on_identical_runs(self, tmp_path, monkeypatch, capsys) -> None:
        monkeypatch.delenv("CI", raising=False)
        for directory in ("baseline", "current"):
            (tmp_path / directory).mkdir()
            (tmp_path / directory / "BENCH_demo.json").write_text(
                json.dumps(_bench_document()), encoding="utf-8"
            )
        assert main([
            "bench", "gate", str(tmp_path / "baseline"),
            "--current", str(tmp_path / "current"),
        ]) == 0
        assert "gate: OK" in capsys.readouterr().out

    def test_gate_fails_on_injected_regression(self, tmp_path, monkeypatch, capsys) -> None:
        monkeypatch.delenv("CI", raising=False)
        (tmp_path / "baseline").mkdir()
        (tmp_path / "baseline" / "BENCH_demo.json").write_text(
            json.dumps(_bench_document()), encoding="utf-8"
        )
        (tmp_path / "current").mkdir()
        (tmp_path / "current" / "BENCH_demo.json").write_text(
            json.dumps(_bench_document(value_factor=2.0)), encoding="utf-8"
        )
        assert main([
            "bench", "gate", str(tmp_path / "baseline"), str(tmp_path / "current"),
        ]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "gate: REGRESSED" in out

    def test_gate_shorthand_flag_and_json(self, tmp_path, monkeypatch, capsys) -> None:
        monkeypatch.delenv("CI", raising=False)
        for directory in ("baseline", "current"):
            (tmp_path / directory).mkdir()
            (tmp_path / directory / "BENCH_demo.json").write_text(
                json.dumps(_bench_document()), encoding="utf-8"
            )
        assert main([
            "bench", "--gate", str(tmp_path / "baseline"),
            "--current", str(tmp_path / "current"), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["experiments"][0]["experiment"] == "demo"

    def test_gate_tolerance_flag(self, tmp_path, monkeypatch, capsys) -> None:
        monkeypatch.delenv("CI", raising=False)
        (tmp_path / "baseline").mkdir()
        (tmp_path / "baseline" / "BENCH_demo.json").write_text(
            json.dumps(_bench_document()), encoding="utf-8"
        )
        (tmp_path / "current").mkdir()
        (tmp_path / "current" / "BENCH_demo.json").write_text(
            json.dumps(_bench_document(value_factor=2.0)), encoding="utf-8"
        )
        # A 2x regression passes when the band is widened past it.
        assert main([
            "bench", "gate", str(tmp_path / "baseline"), str(tmp_path / "current"),
            "--tolerance", "1.5",
        ]) == 0
        capsys.readouterr()

    def test_gate_missing_baseline_is_friendly(self, tmp_path, capsys) -> None:
        assert main([
            "bench", "gate", str(tmp_path / "nope"),
            "--current", str(tmp_path / "nope"),
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_gate_requires_baseline_argument(self, capsys) -> None:
        assert main(["bench", "gate"]) == 2
        assert "needs a baseline directory" in capsys.readouterr().err


class TestQuery:
    def test_query_returns_matches(self, index_file, capsys) -> None:
        assert main(["query", index_file, "NP(DT)", "VP(VBZ)"]) == 0
        captured = capsys.readouterr()
        assert "NP(DT):" in captured.out
        assert "matches" in captured.out

    def test_query_show_tids(self, index_file, capsys) -> None:
        assert main(["query", index_file, "NP", "--show-tids", "--limit", "3"]) == 0
        captured = capsys.readouterr()
        assert "tids:" in captured.out

    def test_bad_query_sets_exit_code(self, index_file, capsys) -> None:
        assert main(["query", index_file, "NP((("]) == 2
        captured = capsys.readouterr()
        assert "cannot parse query" in captured.err

    def test_filter_coding_query_uses_data_file(self, tmp_path, corpus_file, capsys) -> None:
        out = str(tmp_path / "filter.si")
        main(["build", corpus_file, "--coding", "filter", "--out", out])
        assert main(["query", out, "S(NP)(VP)"]) == 0
        assert "matches" in capsys.readouterr().out


class TestServeValidation:
    def test_missing_index_is_friendly(self, tmp_path, capsys) -> None:
        assert main(["serve", str(tmp_path / "nope.si")]) == 2
        assert "cannot open index" in capsys.readouterr().err

    def test_corrupt_index_is_friendly(self, tmp_path, capsys) -> None:
        path = str(tmp_path / "corrupt.si")
        with open(path, "wb") as handle:
            handle.write(b"not an index at all")
        assert main(["serve", path]) == 2
        assert "cannot open index" in capsys.readouterr().err

    def test_invalid_port_is_friendly(self, index_file, capsys) -> None:
        assert main(["serve", index_file, "--port", "99999"]) == 2
        assert "--port must be in 0..65535" in capsys.readouterr().err
        assert main(["serve", index_file, "--port", "-1"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_invalid_server_knobs_are_friendly(self, index_file, capsys) -> None:
        assert main(["serve", index_file, "--flush-window", "-0.5"]) == 2
        assert "--flush-window" in capsys.readouterr().err
        assert main(["serve", index_file, "--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err
        assert main(["serve", index_file, "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestLoadtest:
    def test_loadtest_writes_schema_valid_bench_artifact(
        self, index_file, tmp_path, capsys
    ) -> None:
        out = str(tmp_path / "results")
        assert main([
            "loadtest", index_file,
            "--concurrency", "1", "2",
            "--duration", "0.3",
            "--out", out,
        ]) == 0
        captured = capsys.readouterr()
        assert "0 mismatches" in captured.out
        assert "wrote" in captured.out

        from repro.bench.schema import validate_document

        with open(f"{out}/BENCH_serve_http_throughput.json", encoding="utf-8") as handle:
            document = json.load(handle)
        assert validate_document(document) == []
        assert document["experiment"] == "serve_http_throughput"
        assert document["config"]["params"]["index"] == index_file
        columns = document["result"]["columns"]
        for column in ("concurrency", "qps", "p50_ms", "p95_ms", "p99_ms"):
            assert column in columns
        assert [row[columns.index("concurrency")] for row in document["result"]["rows"]] == [1, 2]
        mismatches = columns.index("mismatches")
        assert all(row[mismatches] == 0 for row in document["result"]["rows"])

    def test_loadtest_against_external_url(self, index_file, tmp_path, capsys) -> None:
        from repro.serve.server import open_server

        service, thread = open_server(index_file)
        try:
            out = str(tmp_path / "results")
            assert main([
                "loadtest", index_file,
                "--url", thread.url,
                "--concurrency", "1",
                "--duration", "0.2",
                "--out", out,
            ]) == 0
        finally:
            thread.stop()
            service.close()
        captured = capsys.readouterr()
        assert "0 mismatches" in captured.out

    def test_unreachable_url_is_friendly(self, index_file, tmp_path, capsys) -> None:
        assert main([
            "loadtest", index_file,
            "--url", "http://127.0.0.1:9",
            "--duration", "0.2",
            "--out", str(tmp_path),
        ]) == 2
        assert "load test against" in capsys.readouterr().err

    def test_invalid_arguments_are_friendly(self, index_file, tmp_path, capsys) -> None:
        assert main(["loadtest", index_file, "--concurrency", "0"]) == 2
        assert "--concurrency" in capsys.readouterr().err
        assert main(["loadtest", index_file, "--duration", "0"]) == 2
        assert "--duration" in capsys.readouterr().err
        assert main(["loadtest", index_file, "--url", "ftp://x"]) == 2
        assert "http" in capsys.readouterr().err
        assert main(["loadtest", str(tmp_path / "nope.si")]) == 2
        assert "cannot open index" in capsys.readouterr().err
