"""Smoke test: the README's 5-minute CLI session, end to end in a temp dir.

Runs ``python -m repro.cli generate / build / query / stats`` as real
subprocesses so the documented quickstart can never rot: if the README
session breaks, this test breaks.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*argv: str, cwd: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture(scope="module")
def workdir(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("smoke"))


def test_readme_session(workdir) -> None:
    """The exact generate -> build -> query -> stats flow the README documents."""
    generate = run_cli(
        "generate", "--sentences", "300", "--seed", "7", "--out", "corpus.penn", cwd=workdir
    )
    assert generate.returncode == 0, generate.stderr
    assert "300 parse trees" in generate.stdout

    build = run_cli(
        "build", "corpus.penn", "--mss", "3", "--coding", "root-split",
        "--out", "corpus.si", cwd=workdir,
    )
    assert build.returncode == 0, build.stderr
    assert "built root-split index" in build.stdout

    query = run_cli(
        "query", "corpus.si", "NP(DT)(NN)", "S(NP)(VP(VBZ))", cwd=workdir
    )
    assert query.returncode == 0, query.stderr
    assert "NP(DT)(NN):" in query.stdout
    assert "matches" in query.stdout

    repeat = run_cli(
        "query", "corpus.si", "NP(DT)(NN)", "--repeat", "5", "--cache-stats", cwd=workdir
    )
    assert repeat.returncode == 0, repeat.stderr
    assert "warm avg=" in repeat.stdout
    assert "cache: plans" in repeat.stdout

    batch = run_cli(
        "query", "corpus.si", "NP(DT)", "NP(DT)(NN)", "--batch", cwd=workdir
    )
    assert batch.returncode == 0, batch.stderr
    assert batch.stdout.count("matches") >= 2

    traced = run_cli("query", "corpus.si", "NP(DT)(NN)", "--trace", cwd=workdir)
    assert traced.returncode == 0, traced.stderr
    assert "trace query" in traced.stdout
    for stage in ("prepare", "fetch_postings", "fetch_key", "join"):
        assert stage in traced.stdout, stage

    stats = run_cli("stats", "corpus.si", "--top", "3", cwd=workdir)
    assert stats.returncode == 0, stats.stderr
    assert "coding          : root-split" in stats.stdout
    assert "top 3 keys" in stats.stdout


def test_readme_sharded_session(workdir) -> None:
    """Step 5 of the README quickstart: sharded build, manifest query, JSON stats."""
    build = run_cli(
        "build", "corpus.penn", "--shards", "4", "--workers", "1",
        "--out", "sharded.si", cwd=workdir,
    )
    assert build.returncode == 0, build.stderr
    assert "4 shards" in build.stdout
    assert "manifest: sharded.si.manifest.json" in build.stdout

    query = run_cli("query", "sharded.si.manifest.json", "NP(DT)(NN)", cwd=workdir)
    assert query.returncode == 0, query.stderr
    assert "NP(DT)(NN):" in query.stdout

    stats = run_cli("stats", "sharded.si.manifest.json", "--json", cwd=workdir)
    assert stats.returncode == 0, stats.stderr
    assert '"shard_count": 4' in stats.stdout


def test_readme_live_session(workdir) -> None:
    """Step 6 of the README quickstart: the add -> query -> compact workflow."""
    build = run_cli("build", "corpus.penn", "--live", "--out", "live.si", cwd=workdir)
    assert build.returncode == 0, build.stderr
    assert "built live root-split index" in build.stdout
    assert "manifest: live.si.live.json" in build.stdout

    generate = run_cli(
        "generate", "--sentences", "50", "--seed", "1", "--out", "more.penn", cwd=workdir
    )
    assert generate.returncode == 0, generate.stderr

    add = run_cli("add", "live.si.live.json", "more.penn", cwd=workdir)
    assert add.returncode == 0, add.stderr
    assert "added 50 trees (tids 300..349)" in add.stdout

    query = run_cli("query", "live.si.live.json", "NP(DT)(NN)", cwd=workdir)
    assert query.returncode == 0, query.stderr
    assert "NP(DT)(NN):" in query.stdout

    delete = run_cli("delete", "live.si.live.json", "3", cwd=workdir)
    assert delete.returncode == 0, delete.stderr
    assert "deleted 1 of 1" in delete.stdout

    compact = run_cli("compact", "live.si.live.json", cwd=workdir)
    assert compact.returncode == 0, compact.stderr
    assert "compacted to epoch 1" in compact.stdout

    stats = run_cli("stats", "live.si.live.json", cwd=workdir)
    assert stats.returncode == 0, stats.stderr
    assert "kind            : live (epoch 1)" in stats.stdout
    assert "trees indexed   : 349" in stats.stdout  # 300 + 50 - 1

    explain = run_cli(
        "query", "live.si.live.json", "S(NP)(VP(VBZ))", "--explain", cwd=workdir
    )
    assert explain.returncode == 0, explain.stderr
    assert "cover:" in explain.stdout
    assert "join phase not executed" in explain.stdout


def test_readme_serving_session(workdir) -> None:
    """Step 7 of the README quickstart: serve over HTTP, then load-test it."""
    import json
    import urllib.request

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    # Foreground server on an ephemeral port (the README shows --port 8321;
    # port 0 keeps the test safe to run concurrently).
    server = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve", "corpus.si", "--port", "0"],
        cwd=workdir,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stdout.readline()
        assert "serving plain index 'corpus.si' on http://" in banner, banner
        url = banner.rsplit(" on ", 1)[1].strip()
        with urllib.request.urlopen(url + "/healthz", timeout=10) as response:
            assert json.load(response)["status"] == "ok"
    finally:
        server.terminate()
        server.wait(timeout=10)

    # Self-served load test, as in the README (shorter duration for CI).
    loadtest = run_cli(
        "loadtest", "corpus.si", "--concurrency", "1", "2",
        "--duration", "0.3", "--out", "results", cwd=workdir,
    )
    assert loadtest.returncode == 0, loadtest.stderr
    assert "concurrency 1:" in loadtest.stdout
    assert "concurrency 2:" in loadtest.stdout
    assert "0 mismatches" in loadtest.stdout
    assert (Path(workdir) / "results" / "BENCH_serve_http_throughput.json").exists()


def test_malformed_query_fails_cleanly(workdir) -> None:
    """A malformed query exits non-zero with a message, never a traceback."""
    result = run_cli("query", "corpus.si", "NP(((", cwd=workdir)
    assert result.returncode == 2
    assert "cannot parse query" in result.stderr
    assert "Traceback" not in result.stderr


def test_missing_index_fails_cleanly(workdir) -> None:
    result = run_cli("query", "no-such-index.si", "NP", cwd=workdir)
    assert result.returncode == 2
    assert "cannot open index" in result.stderr
    assert "Traceback" not in result.stderr
    assert not (Path(workdir) / "no-such-index.si").exists()
