"""Tests for the four baseline systems.

Every baseline must return exactly the matches of the reference matcher; the
comparisons in Table 2 are only meaningful if all engines answer queries
identically.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.baselines.atreegrep import ATreeGrepIndex
from repro.baselines.frequency_based import FrequencyBasedIndex
from repro.baselines.node_index import NodeIntervalIndex
from repro.baselines.tgrep_scan import TGrepScanner
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus
from repro.query.parser import parse_query
from repro.trees.matching import match_corpus

QUERY_TEXTS = [
    "NP",
    "NP(DT)",
    "NP(DT)(NN)",
    "VP(VBZ)(NP)",
    "S(NP)(VP)",
    "S(NP(DT))(VP(VBD))",
    "S(//NN)",
    "VP(VBD(//NNS))",
    "PP(IN)(NP(NN))",
    "QP(WDT)",
]


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(CorpusGenerator(seed=303).generate(60))


@pytest.fixture(scope="module")
def expected(corpus) -> Dict[str, Dict[int, int]]:
    return {text: match_corpus(parse_query(text).root, list(corpus)) for text in QUERY_TEXTS}


class TestTGrepScanner:
    def test_matches_reference(self, corpus, expected) -> None:
        scanner = TGrepScanner(corpus)
        for text in QUERY_TEXTS:
            assert scanner.execute(parse_query(text)).matches_per_tree == expected[text]

    def test_scans_whole_corpus(self, corpus) -> None:
        scanner = TGrepScanner.from_trees(corpus)
        result = scanner.execute(parse_query("NP"))
        assert result.stats.candidates_filtered == len(corpus)
        assert result.stats.coding == "tgrep-scan"

    def test_execute_many(self, corpus) -> None:
        scanner = TGrepScanner(corpus)
        results = scanner.execute_many([parse_query("NP"), parse_query("VP")])
        assert len(results) == 2


class TestNodeIntervalIndex:
    @pytest.fixture(scope="class")
    def index(self, corpus, tmp_path_factory) -> NodeIntervalIndex:
        path = str(tmp_path_factory.mktemp("node") / "node.bpt")
        return NodeIntervalIndex.build(corpus, path)

    def test_matches_reference(self, index, expected) -> None:
        for text in QUERY_TEXTS:
            assert index.execute(parse_query(text)).matches_per_tree == expected[text], text

    def test_label_frequency(self, index, corpus) -> None:
        total_np = sum(
            1 for tree in corpus for node in tree.preorder() if node.label == "NP"
        )
        assert index.label_frequency("NP") == total_np
        assert index.label_frequency("NOPE") == 0

    def test_reopen(self, corpus, tmp_path) -> None:
        path = str(tmp_path / "node.bpt")
        NodeIntervalIndex.build(corpus, path).close()
        reopened = NodeIntervalIndex.open(path)
        assert reopened.label_frequency("NP") > 0
        assert reopened.size_bytes() > 0
        reopened.close()

    def test_join_stats(self, index) -> None:
        result = index.execute(parse_query("S(NP)(VP)"))
        assert result.stats.coding == "node-interval"
        assert result.stats.join_count == 2
        assert result.stats.postings_fetched > 0


class TestATreeGrep:
    @pytest.fixture(scope="class")
    def index(self, corpus) -> ATreeGrepIndex:
        return ATreeGrepIndex.build(corpus, store=corpus)

    def test_matches_reference(self, index, expected) -> None:
        for text in QUERY_TEXTS:
            assert index.execute(parse_query(text)).matches_per_tree == expected[text], text

    def test_prefilter_limits_candidates(self, index, corpus) -> None:
        result = index.execute(parse_query("QP(WDT)"))
        assert result.stats.candidates_filtered <= len(corpus)

    def test_no_match_query(self, index) -> None:
        assert index.execute(parse_query("ZZ(YY)")).matches_per_tree == {}


class TestFrequencyBased:
    @pytest.fixture(scope="class", params=[0.001, 0.01, 0.1])
    def index(self, request, corpus) -> FrequencyBasedIndex:
        return FrequencyBasedIndex.build(corpus, store=corpus, mss=3, frequency_cutoff=request.param)

    def test_matches_reference(self, index, expected) -> None:
        for text in QUERY_TEXTS:
            assert index.execute(parse_query(text)).matches_per_tree == expected[text], text

    def test_higher_cutoff_keeps_more_keys(self, corpus) -> None:
        small = FrequencyBasedIndex.build(corpus, store=corpus, frequency_cutoff=0.001)
        large = FrequencyBasedIndex.build(corpus, store=corpus, frequency_cutoff=0.10)
        assert large.key_count >= small.key_count

    def test_single_nodes_always_kept(self, corpus) -> None:
        index = FrequencyBasedIndex.build(corpus, store=corpus, frequency_cutoff=0.0)
        assert index.has_key(b"NP")
        assert index.tids(b"NP")
