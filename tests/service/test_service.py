"""Integration tests for the QueryService: caching, batching, thread safety."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.index import SubtreeIndex
from repro.exec.executor import QueryExecutor
from repro.query.parser import parse_query
from repro.service.service import QueryService

QUERIES = [
    "NP(DT)(NN)",
    "S(NP)(VP)",
    "VP(VBZ)(NP)",
    "S(NP)(VP(VBZ))",
    "S(//NN)",
]


@pytest.fixture(scope="module")
def index_path(tmp_path_factory, small_corpus) -> str:
    path = str(tmp_path_factory.mktemp("service") / "corpus.si")
    SubtreeIndex.build(small_corpus, mss=3, coding="root-split", path=path).close()
    return path


@pytest.fixture()
def index(index_path) -> SubtreeIndex:
    opened = SubtreeIndex.open(index_path)
    yield opened
    opened.close()


@pytest.fixture()
def service(index, small_corpus) -> QueryService:
    svc = QueryService(index, store=small_corpus)
    yield svc
    svc.close()


class TestResultsMatchExecutor:
    def test_run_agrees_with_query_executor(self, service, index, small_corpus) -> None:
        executor = QueryExecutor(index, store=small_corpus)
        for text in QUERIES:
            expected = executor.execute(parse_query(text))
            assert service.run(text).matches_per_tree == expected.matches_per_tree
            # A second, cache-served run returns the same answer.
            assert service.run(text).matches_per_tree == expected.matches_per_tree

    def test_run_many_agrees_with_run(self, service) -> None:
        fresh = [f" {text} " for text in QUERIES]  # bypass nothing, just vary text
        batch = service.run_many(fresh)
        assert [r.matches_per_tree for r in batch] == [
            service.run(text).matches_per_tree for text in QUERIES
        ]

    def test_accepts_parsed_query_trees(self, service) -> None:
        parsed = parse_query("NP(DT)(NN)")
        assert service.run(parsed).matches_per_tree == service.run("NP(DT)(NN)").matches_per_tree


class TestPreparedQueryCache:
    def test_prepare_caches_by_normalized_text(self, service) -> None:
        first = service.prepare("NP(DT)(NN)")
        again = service.prepare("NP(DT)(NN)")
        spaced = service.prepare("NP( DT )( NN )")
        assert again is first
        assert spaced is first

    def test_path_form_shares_the_entry(self, service) -> None:
        bracketed = service.prepare("S(NP(//NN))")
        path_form = service.prepare("S/NP//NN")
        assert path_form is bracketed

    def test_plan_cache_counts_hits(self, service) -> None:
        service.prepare("NP(DT)(NN)")
        before = service.stats().plans.hits
        service.prepare("NP(DT)(NN)")
        assert service.stats().plans.hits == before + 1

    def test_prepared_keys_match_cover(self, service) -> None:
        prepared = service.prepare("S(NP)(VP(VBZ))")
        assert len(prepared.key_bytes) == len(prepared.cover.subtrees)
        assert prepared.distinct_keys == frozenset(
            subtree.key_bytes() for subtree in prepared.cover.subtrees
        )


class TestPostingCache:
    def test_repeat_run_hits_posting_cache(self, index, small_corpus) -> None:
        service = QueryService(index, store=small_corpus, result_cache_size=0)
        service.run("NP(DT)(NN)")
        descents_after_cold = service.stats().probes.tree_descents
        service.run("NP(DT)(NN)")
        stats = service.stats()
        assert stats.probes.tree_descents == descents_after_cold
        assert stats.postings.hits > 0
        service.close()

    def test_probe_counters_account_hits_and_misses(self, index, small_corpus) -> None:
        index.reset_probe_stats()
        service = QueryService(index, store=small_corpus, result_cache_size=0)
        service.run("NP(DT)(NN)")   # single-key cover: one get, one descent
        service.run("NP(DT)(NN)")   # served by the posting cache
        stats = service.stats().probes
        assert stats.gets == 2
        assert stats.tree_descents == 1
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        service.close()


class TestResultCache:
    def test_identical_queries_share_the_result(self, service) -> None:
        first = service.run("NP(DT)(NN)")
        second = service.run("NP( DT )( NN )")
        assert second is first
        assert service.stats().results.hits == 1

    def test_all_caches_can_be_disabled(self, index, small_corpus) -> None:
        service = QueryService(
            index, store=small_corpus,
            plan_cache_size=0, postings_cache_size=0, result_cache_size=0,
        )
        first = service.run("NP(DT)(NN)")
        second = service.run("NP(DT)(NN)")
        assert second is not first
        assert second.matches_per_tree == first.matches_per_tree
        stats = service.stats()
        assert stats.plans.lookups == 0
        assert stats.postings.lookups == 0
        assert stats.results.lookups == 0
        assert index.postings_cache is None  # nothing was attached
        service.close()

    def test_disabled_result_cache_recomputes(self, index, small_corpus) -> None:
        service = QueryService(index, store=small_corpus, result_cache_size=0)
        first = service.run("NP(DT)(NN)")
        second = service.run("NP(DT)(NN)")
        assert second is not first
        assert second.matches_per_tree == first.matches_per_tree
        assert service.stats().results.lookups == 0
        service.close()


class TestBatchAPI:
    def test_batch_fetches_each_distinct_key_exactly_once(self, index, small_corpus) -> None:
        """The acceptance property: one B+Tree probe per distinct cover key."""
        index.reset_probe_stats()
        service = QueryService(index, store=small_corpus, result_cache_size=0)

        batch = ["NP(DT)(NN)", "S(NP)(VP)", "NP(DT)(NN)", "S(NP)(VP(VBZ))"]
        distinct_keys = set()
        for text in batch:
            distinct_keys |= service.prepare(text).distinct_keys

        results = service.run_many(batch)
        stats = service.stats()
        assert len(results) == len(batch)
        assert stats.probes.gets == len(distinct_keys)
        assert stats.probes.tree_descents == len(distinct_keys)
        # The repeated query and any shared cover keys were deduplicated.
        total_keys = sum(len(service.prepare(text).key_bytes) for text in batch)
        assert stats.batch_keys_deduped == total_keys - len(distinct_keys)
        service.close()

    def test_second_batch_is_served_from_caches(self, index, small_corpus) -> None:
        service = QueryService(index, store=small_corpus, result_cache_size=0)
        service.run_many(QUERIES)
        descents = service.stats().probes.tree_descents
        service.run_many(QUERIES)
        assert service.stats().probes.tree_descents == descents
        service.close()

    def test_batch_results_keep_input_order(self, service) -> None:
        singles = {text: service.run(text).matches_per_tree for text in QUERIES}
        batch = service.run_many(list(reversed(QUERIES)))
        assert [r.matches_per_tree for r in batch] == [
            singles[text] for text in reversed(QUERIES)
        ]

    def test_empty_batch(self, service) -> None:
        assert service.run_many([]) == []

    def test_identical_batch_queries_share_one_join(self, index, small_corpus) -> None:
        service = QueryService(index, store=small_corpus, result_cache_size=0)
        first, second = service.run_many(["NP(DT)(NN)", "NP( DT )( NN )"])
        assert second is first  # joined once, shared across positions
        service.close()


class TestInvalidationOnReopen:
    def test_close_clears_and_detaches_the_cache(self, index_path, small_corpus) -> None:
        index = SubtreeIndex.open(index_path)
        service = QueryService(index, store=small_corpus)
        service.run("NP(DT)(NN)")
        cache = index.postings_cache
        assert cache is not None and len(cache) > 0
        index.close()
        assert len(cache) == 0          # close() flushed the shared cache
        assert index.postings_cache is None

        # A reopened index starts cold: nothing stale is served.
        reopened = SubtreeIndex.open(index_path)
        fresh = QueryService(reopened, store=small_corpus)
        fresh.run("NP(DT)(NN)")
        stats = fresh.stats()
        assert stats.postings.hits == 0
        assert stats.probes.tree_descents > 0
        reopened.close()

    def test_service_close_releases_owned_resources(self, index_path) -> None:
        service = QueryService.open(index_path)
        result = service.run("NP(DT)")
        assert result.total_matches > 0
        service.close()
        with pytest.raises(Exception):
            service.index.lookup(b"NP")  # underlying tree file is closed

    def test_open_missing_index_raises(self, tmp_path) -> None:
        missing = str(tmp_path / "nope.si")
        with pytest.raises(FileNotFoundError):
            QueryService.open(missing)
        assert not (tmp_path / "nope.si").exists()


class TestConcurrency:
    def test_threaded_runs_return_consistent_results(self, index, small_corpus) -> None:
        service = QueryService(index, store=small_corpus)
        expected = {text: service.run(text).matches_per_tree for text in QUERIES}
        service.clear_caches()

        workload = QUERIES * 8

        def serve(text: str):
            return text, service.run(text).matches_per_tree

        with ThreadPoolExecutor(max_workers=6) as pool:
            for text, matches in pool.map(serve, workload):
                assert matches == expected[text]
        service.close()
