"""Unit tests for the serving-layer LRU caches."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import CacheStats, LRUCache, StripedLRUCache


class TestLRUCache:
    def test_put_and_get(self) -> None:
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", "default") == "default"

    def test_none_is_a_cacheable_value(self) -> None:
        cache = LRUCache(4)
        cache.put("absent-key", None)
        sentinel = object()
        assert cache.get("absent-key", sentinel) is None
        assert cache.get("other", sentinel) is sentinel

    def test_capacity_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_eviction_is_least_recently_used(self) -> None:
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.get("a")          # refresh a: order is now b, c, a
        cache.put("d", "D")     # evicts b
        assert "b" not in cache
        assert all(key in cache for key in "acd")
        assert cache.keys() == ["c", "a", "d"]

    def test_put_refreshes_recency(self) -> None:
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh a: LRU is now b
        cache.put("c", 3)       # evicts b
        assert "b" not in cache
        assert cache.get("a") == 10
        assert cache.get("c") == 3

    def test_hit_miss_eviction_counters(self) -> None:
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        cache.put("b", 2)
        cache.put("c", 3)       # evicts a
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.size == 2
        assert stats.capacity == 2

    def test_invalidate_and_clear(self) -> None:
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        cache.invalidate("never-there")  # no-op
        assert "a" not in cache
        assert "b" in cache
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate_of_untouched_cache_is_zero(self) -> None:
        assert LRUCache(1).stats().hit_rate == 0.0


class TestStripedLRUCache:
    def test_protocol_round_trip(self) -> None:
        cache = StripedLRUCache(64, stripes=4)
        for i in range(40):
            cache.put(f"key-{i}", i)
        assert all(cache.get(f"key-{i}") == i for i in range(40))
        assert len(cache) == 40
        cache.invalidate("key-7")
        assert "key-7" not in cache
        cache.clear()
        assert len(cache) == 0

    def test_stats_aggregate_over_stripes(self) -> None:
        cache = StripedLRUCache(64, stripes=4)
        for i in range(10):
            cache.put(i, i)
        for i in range(10):
            assert cache.get(i) == i
        cache.get("missing")
        stats = cache.stats()
        assert stats.hits == 10
        assert stats.misses == 1
        assert stats.size == 10
        assert stats.capacity == 64

    def test_capacity_is_split_across_stripes(self) -> None:
        cache = StripedLRUCache(8, stripes=4)
        assert cache.stats().capacity == 8
        tiny = StripedLRUCache(2, stripes=8)  # fewer stripes, never more entries
        assert tiny.stats().capacity == 2
        assert tiny.stripe_count == 2

    def test_stripe_count_validation(self) -> None:
        with pytest.raises(ValueError):
            StripedLRUCache(8, stripes=0)
        with pytest.raises(ValueError):
            StripedLRUCache(0, stripes=4)

    def test_concurrent_mixed_operations_are_safe(self) -> None:
        cache = StripedLRUCache(128, stripes=8)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(500):
                    key = (worker_id * 7 + i) % 200
                    cache.put(key, key * 2)
                    value = cache.get(key)
                    assert value is None or value == key * 2
                    if i % 50 == 0:
                        cache.invalidate(key)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 128


class TestCacheStats:
    def test_addition(self) -> None:
        total = CacheStats(hits=1, misses=2, evictions=3, size=4, capacity=5) + CacheStats(
            hits=10, misses=20, evictions=30, size=40, capacity=50
        )
        assert (total.hits, total.misses, total.evictions) == (11, 22, 33)
        assert (total.size, total.capacity) == (44, 55)
