"""End-to-end tests of the HTTP server over all three service flavors.

One server is started per flavor (plain / sharded / live) over the same
corpus; every test runs against each, so the equivalence guarantee --
served responses identical to in-process ``QueryService.run`` -- is checked
across the whole dispatch surface of ``QueryService.open``.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.index import SubtreeIndex
from repro.corpus.store import TreeStore, data_file_path
from repro.live import LiveIndex
from repro.serve.server import ENDPOINTS, ServerThread, open_server, result_to_dict
from repro.shard import ShardedIndex

QUERIES = ["NP(DT)(NN)", "VP(VBZ)", "S(NP)(VP)", "NP(DT)(JJ)(NN)"]

FLAVORS = ("plain", "sharded", "live")


def _get(url: str) -> tuple:
    with urllib.request.urlopen(url) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def _post(url: str, payload: bytes) -> tuple:
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}, method="POST"
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def _post_error(url: str, payload: bytes) -> tuple:
    request = urllib.request.Request(
        url, data=payload, headers={"Content-Type": "application/json"}, method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    return excinfo.value.code, json.load(excinfo.value)


@pytest.fixture(scope="module")
def index_paths(tmp_path_factory, small_corpus) -> dict:
    """One index per flavor, all over the same corpus."""
    root = tmp_path_factory.mktemp("serve")
    plain = str(root / "plain.si")
    SubtreeIndex.build(small_corpus, mss=3, coding="root-split", path=plain).close()
    TreeStore.build(data_file_path(plain), small_corpus).close()
    sharded = str(root / "sharded.si")
    ShardedIndex.build(
        small_corpus, mss=3, coding="root-split", path=sharded, shards=2, workers=1
    ).close()
    live = str(root / "live.si")
    LiveIndex.create(live, mss=3, coding="root-split", trees=list(small_corpus)).close()
    return {
        "plain": plain,
        "sharded": sharded + ".manifest.json",
        "live": live + ".live.json",
    }


@pytest.fixture(scope="module", params=FLAVORS)
def served(request, index_paths):
    """(flavor, service, base URL) for each flavor, server running."""
    flavor = request.param
    service, thread = open_server(index_paths[flavor])
    try:
        yield flavor, service, thread.url
    finally:
        thread.stop()
        service.close()


class TestEndpoints:
    def test_healthz_reports_flavor_and_index(self, served, index_paths) -> None:
        flavor, _, url = served
        status, content_type, body = _get(url + "/healthz")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["flavor"] == flavor
        assert payload["index"] == index_paths[flavor]
        assert payload["uptime_seconds"] >= 0

    def test_query_payload_shape(self, served) -> None:
        _, _, url = served
        status, _, body = _post(url + "/query", json.dumps({"query": QUERIES[0]}).encode())
        assert status == 200
        payload = json.loads(body)
        assert payload["query"] == QUERIES[0]
        result = payload["result"]
        assert set(result) == {"total_matches", "matched_tids", "matches_per_tree", "stats"}
        assert result["total_matches"] == sum(result["matches_per_tree"].values())
        assert sorted(int(tid) for tid in result["matches_per_tree"]) == result["matched_tids"]
        assert set(result["stats"]) == {
            "coding", "strategy", "cover_size", "join_count",
            "postings_fetched", "candidates_filtered", "elapsed_seconds",
        }

    def test_served_results_identical_to_direct_run(self, served) -> None:
        # The acceptance bar of the serving layer: the HTTP hop returns byte
        # for byte what QueryService.run computes in-process.
        _, service, url = served
        for text in QUERIES:
            direct = json.loads(json.dumps(result_to_dict(service.run(text))))
            _, _, body = _post(url + "/query", json.dumps({"query": text}).encode())
            assert json.loads(body)["result"] == direct, text

    def test_batch_results_identical_to_run_and_ordered(self, served) -> None:
        _, service, url = served
        queries = QUERIES + [QUERIES[0]]  # a duplicate shares one evaluation
        status, _, body = _post(
            url + "/query/batch", json.dumps({"queries": queries}).encode()
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == len(queries)
        assert [item["query"] for item in payload["results"]] == queries
        for item in payload["results"]:
            direct = json.loads(json.dumps(result_to_dict(service.run(item["query"]))))
            assert item["result"] == direct

    def test_stats_shape_is_flavor_independent(self, served) -> None:
        flavor, _, url = served
        _post(url + "/query", json.dumps({"query": QUERIES[0]}).encode())
        _, _, body = _get(url + "/stats")
        payload = json.loads(body)
        assert payload["flavor"] == flavor
        service_stats = payload["service"]
        # The merged shape: identical core keys for every flavor, so the
        # metrics exporter needs no per-flavor branches.
        assert {"queries", "batches", "batch_keys_deduped", "caches", "probes"} <= set(
            service_stats
        )
        assert set(service_stats["caches"]) == {"plans", "postings", "results"}
        for counters in service_stats["caches"].values():
            assert set(counters) == {
                "hits", "misses", "lookups", "evictions", "size", "capacity", "hit_rate",
            }
        assert set(service_stats["probes"]) == {
            "gets", "cache_hits", "tree_descents", "hit_rate",
        }
        assert service_stats["queries"] >= 1
        # Flavor extras ride under their own keys, never in the core shape.
        if flavor == "sharded":
            assert len(service_stats["shards"]) == 2
        if flavor == "live":
            assert service_stats["live"]["epoch"] >= 0
        server_stats = payload["server"]
        assert set(server_stats["endpoints"]) == set(ENDPOINTS)
        assert server_stats["endpoints"]["/query"]["requests"] >= 1
        assert server_stats["batcher"]["max_batch"] == 64

    def test_metrics_exposition(self, served) -> None:
        _, _, url = served
        _post(url + "/query", json.dumps({"query": QUERIES[0]}).encode())
        status, content_type, body = _get(url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = body.decode("utf-8")
        for family in (
            "repro_http_requests_total",
            "repro_http_errors_total",
            "repro_http_request_duration_seconds",
            "repro_queries_total",
            "repro_cache_hit_rate",
            "repro_index_probes_total",
            "repro_batcher_flushes_total",
        ):
            assert f"# TYPE {family}" in text, family
        assert 'repro_http_requests_total{endpoint="/query"}' in text
        assert 'le="+Inf"' in text
        assert 'quantile="0.99"' in text


class TestErrorHandling:
    def test_unparseable_query_is_a_400(self, served) -> None:
        _, _, url = served
        code, payload = _post_error(url + "/query", json.dumps({"query": "((bad"}).encode())
        assert code == 400
        assert "cannot parse query" in payload["error"]

    def test_missing_and_empty_query_fields_are_400s(self, served) -> None:
        _, _, url = served
        code, payload = _post_error(url + "/query", b"{}")
        assert (code, payload["error"]) == (400, "missing 'query' field")
        code, payload = _post_error(url + "/query", json.dumps({"query": "  "}).encode())
        assert code == 400 and "non-empty" in payload["error"]
        code, payload = _post_error(url + "/query/batch", b"{}")
        assert code == 400 and "queries" in payload["error"]
        code, _ = _post_error(url + "/query/batch", json.dumps({"queries": "NP"}).encode())
        assert code == 400

    def test_invalid_json_bodies_are_400s(self, served) -> None:
        _, _, url = served
        code, payload = _post_error(url + "/query", b"not json at all")
        assert code == 400 and "not valid JSON" in payload["error"]
        code, payload = _post_error(url + "/query", b'["a", "list"]')
        assert code == 400 and "JSON object" in payload["error"]

    def test_bad_batch_query_fails_before_batching(self, served) -> None:
        # One bad query must 400 the request without failing the good ones
        # coalesced into the same micro-batch window.
        _, _, url = served
        code, payload = _post_error(
            url + "/query/batch", json.dumps({"queries": [QUERIES[0], "((bad"]}).encode()
        )
        assert code == 400 and "((bad" in payload["error"]
        status, _, body = _post(
            url + "/query/batch", json.dumps({"queries": [QUERIES[0]]}).encode()
        )
        assert status == 200 and json.loads(body)["count"] == 1

    def test_unknown_path_is_a_404_listing_endpoints(self, served) -> None:
        _, _, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url + "/nope")
        assert excinfo.value.code == 404
        assert "/query/batch" in json.load(excinfo.value)["error"]

    def test_wrong_methods_are_405s(self, served) -> None:
        _, _, url = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url + "/query")  # GET on a POST endpoint
        assert excinfo.value.code == 405
        code, _ = _post_error(url + "/stats", b"{}")
        assert code == 405


class TestServerThread:
    def test_ephemeral_ports_and_stop_are_clean(self, index_paths) -> None:
        service, thread = open_server(index_paths["plain"])
        port = thread.port
        assert port > 0
        thread.stop()
        service.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=0.5)

    def test_bind_conflict_surfaces_in_caller(self, index_paths) -> None:
        service, thread = open_server(index_paths["plain"])
        try:
            from repro.service.service import QueryService

            other = QueryService.open(index_paths["plain"])
            with pytest.raises(OSError):
                ServerThread(other, port=thread.port).start()
            other.close()
        finally:
            thread.stop()
            service.close()
