"""Satellite: /metrics survives a strict Prometheus parser, twice over.

``chaoskit.parse_prometheus`` enforces the exposition grammar (HELP/TYPE
per family, one declaration each, float-parseable values, samples under
their own family, cumulative buckets with ``+Inf == _count``); this test
drives mixed traffic, parses two scrapes, and checks every counter-like
series moved monotonically and by exactly the traffic issued in between.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from tests.serve.chaos.conftest import QUERIES
from tests.serve.chaoskit import assert_monotonic, parse_prometheus

#: Every family the hardened server promises to export.
EXPECTED_FAMILIES = {
    "repro_http_requests_total": "counter",
    "repro_http_errors_total": "counter",
    "repro_http_request_duration_seconds": "histogram",
    "repro_http_sheds_total": "counter",
    "repro_http_timeouts_total": "counter",
    "repro_http_protocol_errors_total": "counter",
    "repro_http_idle_closed_total": "counter",
    "repro_http_connections_open": "gauge",
    "repro_http_connections_peak": "gauge",
    "repro_server_draining": "gauge",
    "repro_queries_total": "counter",
    "repro_batches_total": "counter",
    "repro_cache_lookups_total": "counter",
    "repro_cache_hits_total": "counter",
    "repro_cache_hit_rate": "gauge",
    "repro_index_probes_total": "counter",
    "repro_index_tree_descents_total": "counter",
    "repro_batcher_flushes_total": "counter",
    "repro_batcher_queries_total": "counter",
}


def _traffic(url: str, queries) -> None:
    """A little of everything: successes, client errors, a batch, a 404."""
    for text in queries:
        _post(url + "/query", {"query": text})
    _post(url + "/query/batch", {"queries": list(queries)})
    _get(url + "/stats")
    _get(url + "/healthz")
    _post(url + "/query", {"wrong": "shape"})  # 400
    _get(url + "/definitely-not-a-route")  # 404

def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _scrape(url: str):
    with urllib.request.urlopen(url + "/metrics", timeout=10.0) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")
        return parse_prometheus(response.read().decode("utf-8"))


def test_metrics_roundtrip_wellformed_and_monotonic(start_server) -> None:
    thread = start_server()
    url = thread.url
    _traffic(url, QUERIES)
    first = _scrape(url)  # parse_prometheus validates the grammar itself

    for name, kind in EXPECTED_FAMILIES.items():
        assert name in first, f"family {name} missing from /metrics"
        assert first[name].kind == kind, name
        assert first[name].samples, f"family {name} exported no samples"

    # Label spaces are complete from the first scrape: every shed reason,
    # every timeout kind, every endpoint -- scrapers never see series pop
    # into existence later.
    sheds = first["repro_http_sheds_total"]
    assert {labels["reason"] for _, labels, _ in sheds.samples} == {
        "connections", "queue", "draining",
    }
    timeouts = first["repro_http_timeouts_total"]
    assert {labels["kind"] for _, labels, _ in timeouts.samples} == {
        "header", "body", "handler", "write",
    }
    requests_family = first["repro_http_requests_total"]
    endpoints = {labels["endpoint"] for _, labels, _ in requests_family.samples}
    assert {"/query", "/query/batch", "/stats", "/healthz", "/metrics", "other"} <= endpoints

    # This quiet little server shed and timed nothing out, and is not
    # draining -- the hardening counters exist but sit at zero.
    assert all(value == 0 for _, _, value in sheds.samples)
    assert all(value == 0 for _, _, value in timeouts.samples)
    assert first["repro_server_draining"].value() == 0

    # Second scrape after more traffic: strictly accounted, never backwards.
    _traffic(url, QUERIES)
    second = _scrape(url)
    assert_monotonic(first, second)

    def query_requests(families):
        return families["repro_http_requests_total"].value({"endpoint": "/query"})

    # _traffic posts len(QUERIES) + 1 requests to /query (the bad-shape 400
    # included); the counter moved by exactly that.
    assert query_requests(second) - query_requests(first) == len(QUERIES) + 1
    errors = second["repro_http_errors_total"]
    assert errors.value({"endpoint": "/query"}) >= 2  # one 400 per _traffic call
    assert errors.value({"endpoint": "other"}) >= 2  # one 404 per _traffic call

    # The histogram count for /query agrees with the request counter --
    # the two families are recorded by the same code path, in lockstep.
    histogram = second["repro_http_request_duration_seconds"]
    assert histogram.value({"endpoint": "/query"}, suffix="_count") == query_requests(second)
