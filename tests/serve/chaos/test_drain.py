"""Chaos: graceful drain -- in-flight work finishes, nothing leaks.

The subprocess test at the bottom is the end-to-end version: a real
``repro serve`` process under real SIGTERM while a closed-loop load
generator is mid-flight, asserting exit code 0 and that every response the
server acked before dying was byte-for-byte correct.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve.loadgen import run_load
from repro.serve.server import result_to_dict
from tests.serve.chaos.conftest import QUERIES
from tests.serve.chaoskit import SlowService, connect, http_request, read_http_response


def _wait_for(predicate, timeout: float = 10.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within the timeout")


def _serve_threads() -> list:
    """Executor worker threads of any QueryServer (not the loop thread)."""
    return [t for t in threading.enumerate() if t.name.startswith("repro-serve_")]


class TestDrain:
    def test_drain_finishes_inflight_and_leaks_nothing(self, start_server, service) -> None:
        slow = SlowService(service, delay=0.4)
        thread = start_server(service_override=slow, drain_timeout=10.0)
        sock = connect(thread.port)
        try:
            body = json.dumps({"query": QUERIES[0]}).encode()
            sock.sendall(http_request("/query", method="POST", body=body))
            _wait_for(lambda: len(thread.server._busy) == 1)
            summary = thread.drain()
            assert summary["completed"] is True
            assert summary["forced_connections"] == 0
            # The in-flight request was answered, correctly, with a close.
            response = read_http_response(sock, timeout=5.0)
            assert response is not None and response.status == 200
            expected = json.loads(json.dumps(result_to_dict(service.run(QUERIES[0]))))
            assert response.json()["result"] == expected
            assert response.headers["connection"] == "close"
        finally:
            sock.close()
        # Leak audit: no connection tasks, no busy set, no executor threads.
        assert thread.server._connections == set()
        assert thread.server._busy == set()
        assert thread.server._executor is None
        assert thread.server._batcher is None
        assert _serve_threads() == []
        assert thread.server.draining is True

    def test_drain_reaps_idle_keepalive_without_loop_noise(
        self, start_server, caplog
    ) -> None:
        # Regression: cancelling an idle keep-alive handler used to leave the
        # task *cancelled*, and on 3.11 asyncio.streams' done-callback calls
        # task.exception() without a cancelled() guard -- every drain dumped
        # a spurious CancelledError into the loop's exception handler (which
        # logs to the "asyncio" logger).  The handler now swallows the
        # cancellation and closes the socket like any other goodbye.
        thread = start_server()
        sock = connect(thread.port)
        try:
            sock.sendall(http_request("/healthz"))  # keep-alive: stays parked
            response = read_http_response(sock, timeout=5.0)
            assert response is not None and response.status == 200
            _wait_for(lambda: len(thread.server._connections) == 1)
            with caplog.at_level(logging.ERROR, logger="asyncio"):
                summary = thread.drain()
                time.sleep(0.2)  # let any straggling done-callbacks fire
            assert summary["completed"] is True
            assert summary["forced_connections"] == 0  # idle is reaped, not forced
            assert caplog.records == [], [r.getMessage() for r in caplog.records]
            sock.settimeout(5.0)
            try:
                assert sock.recv(4096) == b""  # a plain close, no junk
            except ConnectionError:
                pass
        finally:
            sock.close()
        assert thread.server._connections == set()
        assert _serve_threads() == []

    def test_drain_is_idempotent_and_refuses_new_connections(self, start_server) -> None:
        thread = start_server()
        first = thread.drain()
        assert first["completed"] is True
        second = thread.drain()
        assert second == {"drain_seconds": 0.0, "forced_connections": 0, "completed": True}
        with pytest.raises(ConnectionRefusedError):
            socket.create_connection(("127.0.0.1", thread.port), timeout=2.0)

    def test_drain_force_closes_stragglers_at_the_deadline(self, start_server, service) -> None:
        slow = SlowService(service, delay=1.2)
        thread = start_server(
            service_override=slow, drain_timeout=0.2, request_timeout=30.0
        )
        sock = connect(thread.port)
        try:
            body = json.dumps({"query": QUERIES[0]}).encode()
            sock.sendall(http_request("/query", method="POST", body=body))
            _wait_for(lambda: len(thread.server._busy) == 1)
            summary = thread.drain()
            assert summary["forced_connections"] == 1
            # The straggler's client gets a dropped connection, not junk.
            sock.settimeout(5.0)
            try:
                assert sock.recv(4096) == b""
            except ConnectionError:
                pass  # a reset is an equally clean statement of "gone"
        finally:
            sock.close()
        assert thread.server._connections == set()
        assert _serve_threads() == []


class TestSigterm:
    def test_sigterm_mid_traffic_exits_zero_with_correct_acked_responses(
        self, index_path, service
    ) -> None:
        repo_root = Path(__file__).resolve().parents[3]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", index_path,
                "--port", "0", "--drain-timeout", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout is not None
            first_line = proc.stdout.readline()
            assert " on http://" in first_line, first_line
            url = first_line.rsplit(" on ", 1)[1].strip()

            expected = {
                text: json.loads(json.dumps(result_to_dict(service.run(text))))
                for text in QUERIES
            }
            outcome = {}

            def drive() -> None:
                # Every 200 the server acks before dying is verified against
                # the offline ground truth; post-drain connection failures
                # count as errors here, never as mismatches.
                outcome["report"] = run_load(
                    url, QUERIES, concurrency=2, duration=2.5, expected=expected
                )

            driver = threading.Thread(target=drive)
            driver.start()
            time.sleep(0.8)  # traffic is in full flight
            sigterm_at = time.monotonic()
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=15.0)
            drain_took = time.monotonic() - sigterm_at
            driver.join(timeout=15.0)
            assert not driver.is_alive()

            assert returncode == 0
            assert drain_took < 10.0, f"drain deadline blown: {drain_took:.1f}s"
            output = proc.stdout.read()
            assert "draining: listener closed" in output, output
            assert "drained in" in output, output

            report = outcome["report"]
            assert report.requests > 0
            assert report.mismatches == 0, "an acked response differed from ground truth"
        finally:
            if proc.poll() is None:  # pragma: no cover - only on assertion failure
                proc.kill()
                proc.wait(timeout=10.0)
