"""Chaos: slow and silent clients are reaped by the read/handler timeouts."""

from __future__ import annotations

import json
import time

from tests.serve.chaos.conftest import QUERIES
from tests.serve.chaoskit import (
    GatedService,
    assert_closed,
    connect,
    http_request,
    read_http_response,
    send_slowly,
)


def _wait_for(predicate, timeout: float = 5.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within the timeout")


class TestHeaderTimeout:
    def test_bare_connect_is_reaped_with_408(self, start_server) -> None:
        # The satellite guarantee: a client that connects and sends nothing
        # must not hold its connection slot forever.
        thread = start_server(header_timeout=0.3)
        sock = connect(thread.port)
        try:
            started = time.monotonic()
            response = read_http_response(sock, timeout=5.0)
            elapsed = time.monotonic() - started
            assert response is not None and response.status == 408
            assert "timed out" in response.json()["error"]
            assert response.headers["connection"] == "close"
            assert 0.2 <= elapsed < 3.0, f"reaped after {elapsed:.2f}s, not ~0.3s"
            assert_closed(sock)
        finally:
            sock.close()
        assert thread.server.metrics.timeouts["header"] == 1
        assert thread.server.metrics.idle_closed == 0

    def test_slow_loris_head_is_reaped_with_408(self, start_server) -> None:
        thread = start_server(header_timeout=0.3)
        sock = connect(thread.port)
        try:
            # ~45 bytes at 1 byte / 30 ms needs ~1.4 s: far past the budget.
            send_slowly(sock, http_request("/healthz"), chunk_size=1, pause=0.03)
            response = read_http_response(sock, timeout=5.0)
            assert response is not None and response.status == 408
            assert_closed(sock)
        finally:
            sock.close()
        assert thread.server.metrics.timeouts["header"] >= 1

    def test_idle_keepalive_is_closed_silently(self, start_server) -> None:
        # A connection that already served a request is NOT a timeout
        # victim: it is reaped like any idle keep-alive, with no response
        # bytes and its own counter.
        thread = start_server(header_timeout=0.3)
        sock = connect(thread.port)
        try:
            sock.sendall(http_request("/healthz"))
            response = read_http_response(sock, timeout=5.0)
            assert response is not None and response.status == 200
            assert response.headers["connection"] == "keep-alive"
            sock.settimeout(5.0)
            assert sock.recv(4096) == b"", "expected a silent close, got bytes"
        finally:
            sock.close()
        assert thread.server.metrics.idle_closed == 1
        assert thread.server.metrics.timeouts["header"] == 0

    def test_stalled_body_is_reaped_with_408(self, start_server) -> None:
        thread = start_server(header_timeout=0.3)
        sock = connect(thread.port)
        try:
            head = (
                b"POST /query HTTP/1.1\r\nHost: chaos\r\n"
                b"Content-Length: 50\r\n\r\nonly-"
            )
            sock.sendall(head)  # 45 bytes of body never arrive
            response = read_http_response(sock, timeout=5.0)
            assert response is not None and response.status == 408
            assert "body" in response.json()["error"]
            assert_closed(sock)
        finally:
            sock.close()
        assert thread.server.metrics.timeouts["body"] == 1


class TestHandlerTimeout:
    def test_frozen_handler_becomes_504(self, start_server, service) -> None:
        gated = GatedService(service)
        thread = start_server(service_override=gated, request_timeout=0.3, max_workers=1)
        try:
            sock = connect(thread.port)
            try:
                body = json.dumps({"query": QUERIES[0]}).encode()
                sock.sendall(http_request("/query", method="POST", body=body))
                response = read_http_response(sock, timeout=10.0)
                assert response is not None and response.status == 504
                assert "timed out" in response.json()["error"]
            finally:
                sock.close()
            _wait_for(lambda: gated.entered >= 1)
            assert thread.server.metrics.timeouts["handler"] == 1
        finally:
            # Executor threads cannot be cancelled: open the gate so the
            # zombie query finishes and shutdown does not hang.
            gated.release()
