"""Fixtures for the chaos suite: one shared index, per-test servers.

Every chaos test abuses the server differently (tiny timeouts, tiny caps,
frozen services), so servers are started per test with custom knobs via the
``start_server`` factory; the index and the query service underneath are
built once per module.
"""

from __future__ import annotations

import pytest

from repro.core.index import SubtreeIndex
from repro.corpus.store import TreeStore, data_file_path
from repro.serve.server import ServerThread
from repro.service.service import QueryService

#: Queries every chaos test may use (all parse against the shared corpus).
QUERIES = ["NP(DT)(NN)", "VP(VBZ)", "S(NP)(VP)", "NP(DT)(JJ)(NN)"]


@pytest.fixture(scope="module")
def index_path(tmp_path_factory, small_corpus) -> str:
    root = tmp_path_factory.mktemp("chaos")
    path = str(root / "chaos.si")
    SubtreeIndex.build(small_corpus, mss=3, coding="root-split", path=path).close()
    TreeStore.build(data_file_path(path), small_corpus).close()
    return path


@pytest.fixture(scope="module")
def service(index_path):
    service = QueryService.open(index_path)
    yield service
    service.close()


@pytest.fixture()
def start_server(service):
    """``start_server(**knobs)`` -> a running ServerThread, stopped on teardown.

    Pass ``service_override=`` to serve a wrapped (gated / slowed) service.
    """
    threads = []

    def _start(service_override=None, **knobs):
        thread = ServerThread(service_override or service, **knobs).start()
        threads.append(thread)
        return thread

    yield _start
    for thread in threads:
        thread.stop()
