"""Chaos: seeded fuzz of the HTTP parser -- 4xx JSON or clean close, always.

Every case opens a fresh connection, fires malformed bytes, half-closes its
send side (so the server never waits out a read timeout on our account) and
checks the response: a well-formed 4xx with a JSON error body, or a clean
connection close.  Never a 5xx, never a server-side traceback, and the
server must still answer a correct query when the barrage is over.
"""

from __future__ import annotations

import json
import random
import socket

from tests.serve.chaos.conftest import QUERIES
from tests.serve.chaoskit import connect, http_request, read_http_response

SEED = 20260807


def _handcrafted_cases() -> list:
    """Deterministic classics: every parser branch gets a visit."""
    return [
        b"",  # connect, say nothing, hang up
        b"\r\n",
        b"GET\r\n\r\n",  # one-token request line
        b"GET /healthz\r\n\r\n",  # two tokens
        b"GET /healthz HTTP/1.1 extra words\r\n\r\n",  # five tokens
        b"\x00\x01\x02\x03 binary garbage \xff\xfe\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nno-colon-header\r\n\r\n",  # tolerated: empty value
        b"POST /query HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /query HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
        b"POST /query HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
        b"POST /query HTTP/1.1\r\nContent-Length: 1_0\r\n\r\n",
        b"POST /query HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
        b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        b"5\r\nhello\r\n0\r\n\r\n",  # chunked bodies are refused up front
        # Declared body far past max_body_bytes (2048 on the fuzz server).
        b"POST /query HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        # Header block past max_header_bytes (1024 on the fuzz server).
        b"GET /healthz HTTP/1.1\r\n" + b"X-Pad: " + b"a" * 2048 + b"\r\n\r\n",
        # A single line past the stream reader's 64 KiB line limit.
        b"GET /healthz HTTP/1.1\r\nX-Line: " + b"b" * (80 * 1024) + b"\r\n\r\n",
        # More headers than the 256-header cap.
        b"GET /healthz HTTP/1.1\r\n" + b"".join(
            b"X-H%d: v\r\n" % i for i in range(300)
        ) + b"\r\n",
        # Valid head, body is not JSON.
        http_request("/query", method="POST", body=b"this is not json"),
        # Valid head, JSON body of the wrong shape.
        http_request("/query", method="POST", body=b'{"nope": 1}'),
        http_request("/query", method="POST", body=b'{"query": ""}'),
        http_request("/query/batch", method="POST", body=b'{"queries": "not-a-list"}'),
        # Unknown path / wrong method.
        http_request("/definitely/not/a/route"),
        http_request("/query", method="BREW"),
        http_request("/metrics", method="POST"),
    ]


def _random_cases(rng: random.Random, count: int) -> list:
    cases = []
    alphabet = bytes(range(256))
    for _ in range(count):
        kind = rng.randrange(4)
        if kind == 0:  # pure binary noise
            cases.append(bytes(rng.choices(alphabet, k=rng.randrange(1, 200))))
        elif kind == 1:  # noise shaped like a request line
            tokens = [
                bytes(rng.choices(alphabet, k=rng.randrange(1, 12)))
                for _ in range(rng.randrange(1, 6))
            ]
            cases.append(b" ".join(tokens) + b"\r\n\r\n")
        elif kind == 2:  # valid-ish head with a corrupted content-length
            garbage = bytes(rng.choices(b"0123456789eE+-._ ", k=rng.randrange(1, 8)))
            cases.append(
                b"POST /query HTTP/1.1\r\nContent-Length: " + garbage + b"\r\n\r\nxx"
            )
        else:  # truncated at a random point of a valid request
            full = http_request(
                "/query", method="POST", body=json.dumps({"query": "NP(DT)(NN)"}).encode()
            )
            cases.append(full[: rng.randrange(1, len(full))])
    return cases


def _fire(port: int, payload: bytes):
    """Send one case, half-close, and read the verdict (response or close)."""
    sock = connect(port, timeout=10.0)
    try:
        try:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass  # the server hung up mid-send: that IS the clean close
        try:
            return read_http_response(sock, timeout=10.0)
        except OSError:
            return None  # reset instead of FIN: still a close, not a traceback
    finally:
        sock.close()


def test_parser_fuzz_never_breaks_the_server(start_server, service) -> None:
    thread = start_server(
        max_header_bytes=1024, max_body_bytes=2048, header_timeout=5.0
    )
    rng = random.Random(SEED)
    cases = _handcrafted_cases() + _random_cases(rng, 120)
    for number, payload in enumerate(cases):
        response = _fire(thread.port, payload)
        if response is not None:
            assert 200 <= response.status < 500, (
                f"case {number} ({payload[:60]!r}) -> {response.status}"
            )
            if response.status >= 400:
                assert "error" in response.json(), f"case {number}: non-JSON error body"

    # The barrage left no internal errors behind and the server still works.
    assert thread.server._server_errors == 0
    assert thread.server.metrics.protocol_errors > 0  # the fuzz did reach the parser
    sock = connect(thread.port)
    try:
        body = json.dumps({"query": QUERIES[0]}).encode()
        sock.sendall(http_request("/query", method="POST", body=body))
        response = read_http_response(sock, timeout=10.0)
        assert response is not None and response.status == 200
        assert response.json()["result"]["total_matches"] == service.run(QUERIES[0]).total_matches
    finally:
        sock.close()
