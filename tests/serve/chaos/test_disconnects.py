"""Chaos: clients that vanish mid-request or accept but never read."""

from __future__ import annotations

import json
import time

from tests.serve.chaos.conftest import QUERIES
from tests.serve.chaoskit import (
    connect,
    http_request,
    never_reading_socket,
    read_http_response,
)


def _wait_for(predicate, timeout: float = 15.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within the timeout")


class TestDisconnects:
    def test_disconnect_mid_body_is_a_clean_close(self, start_server) -> None:
        thread = start_server()
        sock = connect(thread.port)
        sock.sendall(
            b"POST /query HTTP/1.1\r\nHost: chaos\r\nContent-Length: 100\r\n\r\nhalf"
        )
        sock.close()  # vanish with 96 body bytes owed
        _wait_for(lambda: len(thread.server._connections) == 0)
        assert thread.server._server_errors == 0
        # The server is unharmed: the next client is served normally.
        follow_up = connect(thread.port)
        try:
            follow_up.sendall(http_request("/healthz"))
            response = read_http_response(follow_up, timeout=5.0)
            assert response is not None and response.status == 200
        finally:
            follow_up.close()

    def test_disconnect_mid_headers_is_a_clean_close(self, start_server) -> None:
        thread = start_server()
        sock = connect(thread.port)
        sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: cha")  # no terminator, ever
        sock.close()
        _wait_for(lambda: len(thread.server._connections) == 0)
        assert thread.server._server_errors == 0
        assert thread.server.metrics.protocol_errors == 0

    def test_never_reading_client_is_aborted_by_write_timeout(self, start_server) -> None:
        # A sink that requests responses but never reads them fills the
        # write buffers until writer.drain() stalls; the write timeout must
        # abort the connection instead of pinning its task forever.
        thread = start_server(write_timeout=0.5, write_buffer=4096)
        sock = never_reading_socket(thread.port)
        try:
            # Pipeline a flood of /metrics requests (multi-KiB responses)
            # and never read a byte of the answers.
            sock.sendall(http_request("/metrics") * 2000)
            _wait_for(lambda: thread.server.metrics.timeouts["write"] >= 1)
            _wait_for(lambda: len(thread.server._connections) == 0)
        finally:
            sock.close()
        assert thread.server._server_errors == 0
        # The server still answers well-behaved clients afterwards.
        follow_up = connect(thread.port)
        try:
            body = json.dumps({"query": QUERIES[0]}).encode()
            follow_up.sendall(http_request("/query", method="POST", body=body))
            response = read_http_response(follow_up, timeout=10.0)
            assert response is not None and response.status == 200
        finally:
            follow_up.close()
