"""Chaos: connection floods and saturated executors are shed, not queued."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

from tests.serve.chaos.conftest import QUERIES
from tests.serve.chaoskit import (
    GatedService,
    assert_closed,
    connect,
    http_request,
    parse_prometheus,
    read_http_response,
)


def _wait_for(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within the timeout")


class TestConnectionCap:
    def test_flood_past_the_cap_is_shed_with_503(self, start_server) -> None:
        thread = start_server(max_connections=4, header_timeout=5.0)
        holders = [connect(thread.port) for _ in range(4)]
        try:
            _wait_for(lambda: len(thread.server._connections) >= 4)
            shed_statuses = []
            for _ in range(3):
                extra = connect(thread.port)
                try:
                    response = read_http_response(extra, timeout=5.0)
                    assert response is not None
                    shed_statuses.append(response.status)
                    assert response.headers.get("retry-after") == "1"
                    assert "connection limit" in response.json()["error"]
                    assert_closed(extra)
                finally:
                    extra.close()
            assert shed_statuses == [503, 503, 503]
            assert thread.server.metrics.sheds["connections"] == 3
            # The holders were never evicted: the cap sheds newcomers only.
            holders[0].sendall(http_request("/healthz"))
            response = read_http_response(holders[0], timeout=5.0)
            assert response is not None and response.status == 200
        finally:
            for sock in holders:
                sock.close()


class TestQueueBound:
    def test_saturated_executor_sheds_with_503(self, start_server, service) -> None:
        # One worker, a queue bound of 2 and a frozen service: the first two
        # queries occupy the bound, every later one must be shed -- and once
        # the gate opens, the occupants complete correctly.
        gated = GatedService(service)
        thread = start_server(service_override=gated, max_queue=2, max_workers=1)
        expected = service.run(QUERIES[0]).total_matches
        statuses = []
        lock = threading.Lock()

        def client() -> None:
            request = urllib.request.Request(
                thread.url + "/query",
                data=json.dumps({"query": QUERIES[0]}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=30.0) as response:
                    payload = json.load(response)
                    assert payload["result"]["total_matches"] == expected
                    with lock:
                        statuses.append(response.status)
            except urllib.error.HTTPError as error:
                with lock:
                    statuses.append(error.code)
                assert error.code == 503
                assert error.headers.get("Retry-After") == "1"
                assert "saturated" in json.load(error)["error"]

        clients = [threading.Thread(target=client) for _ in range(6)]
        try:
            for worker in clients:
                worker.start()
            # All six reach the server while the gate is closed: exactly two
            # fit the bound, exactly four are shed.
            _wait_for(lambda: thread.server.metrics.sheds["queue"] == 4)
        finally:
            gated.release()
            for worker in clients:
                worker.join(timeout=30.0)
        assert sorted(statuses) == [200, 200, 503, 503, 503, 503]
        assert thread.server.metrics.sheds["queue"] == 4


class TestDrainingSurface:
    def test_keepalive_connection_sees_healthz_draining_and_close(self, start_server) -> None:
        thread = start_server()
        health_sock = connect(thread.port)
        try:
            health_sock.sendall(http_request("/healthz"))
            response = read_http_response(health_sock, timeout=5.0)
            assert response is not None and response.status == 200
            assert response.json()["status"] == "ok"
            # Let the handler finish its between-requests bookkeeping and
            # park in readline: a handler still between "response written"
            # and "waiting for the next request" when the flag flips treats
            # the connection as drain-closable and hangs up instead.
            time.sleep(0.3)
            # Flip the drain flag the way QueryServer.drain does as its
            # first act (a real drain also closes the listener, which is
            # why this probe rides an existing keep-alive connection).
            thread.server._draining = True
            health_sock.sendall(http_request("/healthz"))
            response = read_http_response(health_sock, timeout=5.0)
            assert response is not None and response.status == 503
            assert response.json()["status"] == "draining"
            assert response.headers["connection"] == "close"
            assert_closed(health_sock)
            # The draining gauge flips in the same breath.  Rendered
            # in-process: a draining server closes idle keep-alive
            # connections as soon as their current response is out, so no
            # HTTP scrape is guaranteed to land (the exposition grammar over
            # HTTP is test_metrics_roundtrip's job).
            status, _, body = thread.server._handle_metrics()
            assert status == 200
            families = parse_prometheus(body.decode("utf-8"))
            assert families["repro_server_draining"].value() == 1
        finally:
            thread.server._draining = False  # hand a clean server to teardown
            health_sock.close()

    def test_new_connection_while_draining_is_shed(self, start_server) -> None:
        thread = start_server()
        thread.server._draining = True
        try:
            sock = connect(thread.port)
            try:
                response = read_http_response(sock, timeout=5.0)
                assert response is not None and response.status == 503
                assert "draining" in response.json()["error"]
                assert response.headers.get("retry-after") == "1"
                assert_closed(sock)
            finally:
                sock.close()
            assert thread.server.metrics.sheds["draining"] == 1
        finally:
            thread.server._draining = False
