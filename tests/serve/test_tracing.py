"""HTTP-layer observability: request ids, /debug/trace, error lines, slow log.

Each test starts its own :class:`ServerThread` over one module-scoped
index so tracing knobs (`trace`, `trace_log`, `slow_ms`) can vary per
test; the server owns the global tracer for its lifetime and must leave
tracing off when stopped.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core.index import SubtreeIndex
from repro.obs.sinks import validate_trace_log
from repro.serve.server import ServerThread
from repro.service.service import QueryService

QUERY = "NP(DT)(NN)"


@pytest.fixture(scope="module")
def index_path(tmp_path_factory, small_corpus) -> str:
    path = str(tmp_path_factory.mktemp("tracing") / "plain.si")
    SubtreeIndex.build(small_corpus, mss=3, coding="root-split", path=path).close()
    return path


@pytest.fixture()
def service(index_path):
    service = QueryService.open(index_path)
    yield service
    service.close()


def _request(url: str, payload=None, headers=None, method=None):
    """(status, response headers, parsed JSON body) for one request."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json", **(headers or {})},
        method=method,
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.headers, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, error.headers, json.load(error)


class TestRequestIdPropagation:
    def test_client_request_id_is_echoed_untraced(self, service) -> None:
        with ServerThread(service) as thread:
            status, headers, _ = _request(
                thread.url + "/query", {"query": QUERY},
                headers={"X-Request-ID": "rid-echo-1"},
            )
            assert status == 200
            assert headers["X-Request-ID"] == "rid-echo-1"
        assert not obs.enabled()

    def test_missing_request_id_gets_a_generated_one(self, service) -> None:
        with ServerThread(service) as thread:
            _, headers, _ = _request(thread.url + "/query", {"query": QUERY})
            rid = headers["X-Request-ID"]
            assert len(rid) == 32
            int(rid, 16)

    def test_request_id_reaches_the_trace(self, service) -> None:
        with ServerThread(service, trace=True) as thread:
            status, headers, _ = _request(
                thread.url + "/query", {"query": QUERY},
                headers={"X-Request-ID": "rid-trace-1"},
            )
            assert status == 200
            assert headers["X-Request-ID"] == "rid-trace-1"
            _, _, debug = _request(thread.url + "/debug/trace?n=10")
        assert debug["enabled"] is True
        mine = [t for t in debug["traces"] if t["request_id"] == "rid-trace-1"]
        assert len(mine) == 1
        trace = mine[0]
        assert trace["name"] == "http_request"
        assert trace["attrs"]["path"] == "/query"
        assert trace["attrs"]["status"] == 200
        # The service's span tree nests under the HTTP root across the
        # executor hand-off, and stage times stay inside the request time.
        assert "query" in trace["stages"]
        assert trace["stages"]["query"] <= trace["duration_ms"] + 0.01

    def test_batched_requests_keep_distinct_ids(self, service) -> None:
        # Two concurrent /query/batch clients may share one MicroBatcher
        # flush; each response must still carry its own id and the flush
        # span must attribute both.
        with ServerThread(service, trace=True, flush_window=0.05) as thread:
            results = {}

            def call(rid: str) -> None:
                results[rid] = _request(
                    thread.url + "/query/batch",
                    {"queries": [QUERY, "VP(VBZ)"]},
                    headers={"X-Request-ID": rid},
                )

            workers = [
                threading.Thread(target=call, args=(rid,))
                for rid in ("rid-batch-a", "rid-batch-b")
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            _, _, debug = _request(thread.url + "/debug/trace?n=20")

        for rid, (status, headers, body) in results.items():
            assert status == 200
            assert headers["X-Request-ID"] == rid
            assert body["count"] == 2
        http_ids = {
            t["request_id"] for t in debug["traces"] if t["name"] == "http_request"
        }
        assert {"rid-batch-a", "rid-batch-b"} <= http_ids
        # The flush spans are their own roots (a flush serves several
        # requests); together they must attribute every submitted id.
        flushes = [t for t in debug["traces"] if t["name"] == "batch_flush"]
        assert 1 <= len(flushes) <= 2
        flushed_ids = set()
        for flush in flushes:
            assert flush["request_id"] is None
            flushed_ids.update(flush["attrs"]["request_ids"])
        assert flushed_ids == {"rid-batch-a", "rid-batch-b"}

    def test_hostile_request_id_is_sanitised(self, service) -> None:
        with ServerThread(service) as thread:
            _, headers, _ = _request(
                thread.url + "/query", {"query": QUERY},
                headers={"X-Request-ID": "rid\tinject" + "x" * 300},
            )
            echoed = headers["X-Request-ID"]
            assert "\t" not in echoed and "\r" not in echoed and "\n" not in echoed
            assert len(echoed) <= 128


class TestDebugTraceEndpoint:
    def test_reports_disabled_when_untraced(self, service) -> None:
        with ServerThread(service) as thread:
            status, _, body = _request(thread.url + "/debug/trace")
            assert status == 200
            assert body == {"enabled": False, "traces": []}

    def test_returns_the_last_k_traces(self, service) -> None:
        with ServerThread(service, trace=True) as thread:
            for index in range(4):
                _request(
                    thread.url + "/query", {"query": QUERY},
                    headers={"X-Request-ID": f"rid-k-{index}"},
                )
            status, _, body = _request(thread.url + "/debug/trace?n=2")
        assert status == 200
        assert body["count"] == 2
        assert body["traces_finished"] >= 4
        assert [t["request_id"] for t in body["traces"]] == ["rid-k-2", "rid-k-3"]

    def test_rejects_bad_n(self, service) -> None:
        with ServerThread(service, trace=True) as thread:
            status, _, body = _request(thread.url + "/debug/trace?n=zero")
            assert status == 400 and "integer" in body["error"]
            status, _, body = _request(thread.url + "/debug/trace?n=0")
            assert status == 400 and ">= 1" in body["error"]

    def test_is_get_only(self, service) -> None:
        with ServerThread(service, trace=True) as thread:
            status, _, _ = _request(thread.url + "/debug/trace", {}, method="POST")
            assert status == 405


class TestServerErrorLogging:
    def test_forced_500_writes_one_error_line(self, service, tmp_path) -> None:
        log_path = str(tmp_path / "trace.jsonl")
        with ServerThread(service, trace_log=log_path) as thread:
            def boom(_query):
                raise RuntimeError("secret internal detail")

            service.run = boom
            try:
                status, headers, body = _request(
                    thread.url + "/query", {"query": QUERY},
                    headers={"X-Request-ID": "rid-err-1"},
                )
            finally:
                del service.run
            assert status == 500
            assert headers["X-Request-ID"] == "rid-err-1"
            # The body stays generic: no exception text, no traceback.
            assert body == {"error": "internal server error"}
        counts = validate_trace_log(log_path)
        assert counts.get("error") == 1
        errors = [
            record
            for record in map(json.loads, open(log_path, encoding="utf-8"))
            if record["kind"] == "error"
        ]
        assert len(errors) == 1
        error = errors[0]
        assert error["request_id"] == "rid-err-1"
        assert error["path"] == "/query"
        assert "RuntimeError" in error["error"]
        assert "secret internal detail" in error["traceback"]
        assert not obs.enabled()

    def test_500_count_is_surfaced_in_stats(self, service) -> None:
        with ServerThread(service, trace=True) as thread:
            def boom(_query):
                raise RuntimeError("boom")

            service.run = boom
            try:
                _request(thread.url + "/query", {"query": QUERY})
            finally:
                del service.run
            _, _, stats = _request(thread.url + "/stats")
        assert stats["server"]["tracing"]["errors"] == 1


class TestSlowQueryLog:
    def test_slow_queries_are_flagged_and_listed(self, service) -> None:
        # slow_ms=0 marks everything slow -- and by itself turns tracing on.
        with ServerThread(service, slow_ms=0.0) as thread:
            _request(
                thread.url + "/query", {"query": QUERY},
                headers={"X-Request-ID": "rid-slow-1"},
            )
            _, _, debug = _request(thread.url + "/debug/trace?n=5")
            _, _, stats = _request(thread.url + "/stats")
        mine = [t for t in debug["traces"] if t["request_id"] == "rid-slow-1"]
        assert mine and mine[0]["slow"] is True
        tracing = stats["server"]["tracing"]
        assert tracing["enabled"] is True
        assert tracing["slow_ms"] == 0.0
        slow_ids = {entry["request_id"] for entry in tracing["slow_queries"]}
        assert "rid-slow-1" in slow_ids
        assert all("duration_ms" in entry for entry in tracing["slow_queries"])

    def test_stats_tracing_block_when_untraced(self, service) -> None:
        with ServerThread(service) as thread:
            _, _, stats = _request(thread.url + "/stats")
        assert stats["server"]["tracing"] == {"enabled": False, "errors": 0}


class TestServerTracerOwnership:
    def test_server_owns_and_releases_the_tracer(self, service) -> None:
        assert not obs.enabled()
        with ServerThread(service, trace=True):
            assert obs.enabled()
        assert not obs.enabled()

    def test_server_leaves_an_external_tracer_alone(self, service) -> None:
        tracer = obs.enable(obs.Tracer())
        try:
            with ServerThread(service, trace=True) as thread:
                _request(thread.url + "/query", {"query": QUERY})
                assert obs.get_tracer() is tracer
            assert obs.enabled()  # still on: the server never owned it
        finally:
            obs.disable()
