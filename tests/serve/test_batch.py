"""Unit tests of the micro-batcher (no HTTP, no real index)."""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.batch import BatcherClosed, MicroBatcher


class FakeService:
    """Records run_many batches; results are derived from the query text."""

    def __init__(self, error: Exception = None):
        self.calls = []
        self.error = error

    def run_many(self, texts):
        self.calls.append(list(texts))
        if self.error is not None:
            raise self.error
        return [f"result:{text}" for text in texts]


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def executor():
    with ThreadPoolExecutor(max_workers=2) as pool:
        yield pool


class TestMicroBatcher:
    def test_one_submission_flushes_as_one_batch(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=0.0)

        results = run(batcher.submit(["a", "b", "a"]))
        assert results == ["result:a", "result:b", "result:a"]
        assert service.calls == [["a", "b", "a"]]
        assert batcher.flushes == 1
        assert batcher.queries_batched == 3

    def test_concurrent_submissions_coalesce_into_one_run_many(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=0.01)

        async def scenario():
            return await asyncio.gather(
                batcher.submit(["a", "b"]), batcher.submit(["c"]), batcher.submit(["d"])
            )

        first, second, third = run(scenario())
        assert first == ["result:a", "result:b"]
        assert second == ["result:c"]
        assert third == ["result:d"]
        # All three awaiters landed inside one flush window.
        assert service.calls == [["a", "b", "c", "d"]]
        assert batcher.flushes == 1

    def test_max_batch_flushes_immediately(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=10.0, max_batch=2)
        # A window of 10 s would hang the test if the size trigger failed.
        results = run(batcher.submit(["a", "b"]))
        assert results == ["result:a", "result:b"]
        assert service.calls == [["a", "b"]]

    def test_empty_submission_short_circuits(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=0.0)
        assert run(batcher.submit([])) == []
        assert service.calls == []
        assert batcher.flushes == 0

    def test_service_error_fails_every_awaiter(self, executor) -> None:
        service = FakeService(error=RuntimeError("store is gone"))
        batcher = MicroBatcher(service, executor, flush_window=0.0)

        async def scenario():
            with pytest.raises(RuntimeError, match="store is gone"):
                await batcher.submit(["a"])

        run(scenario())

    def test_drain_flushes_pending_work(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=60.0)

        async def scenario():
            # Submit without awaiting, then drain: the pending batch must be
            # executed (shutdown never strands queued queries).
            task = asyncio.ensure_future(batcher.submit(["a"]))
            await asyncio.sleep(0)  # let submit() enqueue
            await batcher.drain()
            return await task

        assert run(scenario()) == ["result:a"]
        assert service.calls == [["a"]]

    def test_invalid_knobs_rejected(self, executor) -> None:
        with pytest.raises(ValueError, match="flush window"):
            MicroBatcher(FakeService(), executor, flush_window=-0.001)
        with pytest.raises(ValueError, match="max batch"):
            MicroBatcher(FakeService(), executor, max_batch=0)

    def test_submit_after_drain_raises_batcher_closed(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=0.0)

        async def scenario():
            await batcher.drain()
            assert batcher.closed
            with pytest.raises(BatcherClosed):
                await batcher.submit(["a"])

        run(scenario())
        assert service.calls == []

    def test_drain_waits_for_inflight_pool_batches(self, executor) -> None:
        import threading

        gate = threading.Event()

        class GatedFake(FakeService):
            def run_many(self, texts):
                gate.wait(10.0)
                return super().run_many(texts)

        service = GatedFake()
        batcher = MicroBatcher(service, executor, flush_window=0.0)

        async def scenario():
            task = asyncio.ensure_future(batcher.submit(["a"]))
            # Two ticks: enqueue, then the zero-window flush onto the pool.
            await asyncio.sleep(0)
            await asyncio.sleep(0.01)
            assert batcher._inflight, "the flush should be on the pool by now"
            gate.set()
            await batcher.drain()
            # drain() must not return while the pool batch is unfinished.
            assert not batcher._inflight
            return await task

        assert run(scenario()) == ["result:a"]


class TestDrainRace:
    """The shutdown race, stress-tested: submissions concurrent with drain()
    are either answered or rejected with BatcherClosed -- never dropped.

    The submit path's closed-check and enqueue run without an intervening
    await, so there is no interleaving in which a query slips into a batch
    drain() will not flush.  Fifty repetitions with a randomized drain point
    make a regression of that property loud.
    """

    def test_concurrent_submit_and_drain_never_drops(self, executor) -> None:
        service = FakeService()

        async def one_round(round_number: int) -> None:
            batcher = MicroBatcher(service, executor, flush_window=0.0005)

            async def submitter(index: int):
                # Stagger submissions across the drain point.
                await asyncio.sleep(0.0001 * (index % 7))
                try:
                    return await batcher.submit([f"q{round_number}.{index}"])
                except BatcherClosed:
                    return BatcherClosed

            async def drainer():
                await asyncio.sleep(0.0001 * (round_number % 5))
                await batcher.drain()

            results = await asyncio.gather(
                drainer(), *(submitter(index) for index in range(8))
            )
            answered = rejected = 0
            for index, outcome in enumerate(results[1:]):
                if outcome is BatcherClosed:
                    rejected += 1
                else:
                    # An answered submission got exactly its own result.
                    assert outcome == [f"result:q{round_number}.{index}"]
                    answered += 1
            assert answered + rejected == 8
            # After drain, the batcher is terminally closed.
            with pytest.raises(BatcherClosed):
                await batcher.submit(["late"])

        async def scenario():
            for round_number in range(50):
                await one_round(round_number)

        run(scenario())
        # Every query the fake service ever saw belonged to an answered
        # submission: flushed batches are never half-dropped.
        flushed = [text for call in service.calls for text in call]
        assert len(flushed) == len(set(flushed)), "a query was flushed twice"
