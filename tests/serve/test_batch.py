"""Unit tests of the micro-batcher (no HTTP, no real index)."""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.batch import MicroBatcher


class FakeService:
    """Records run_many batches; results are derived from the query text."""

    def __init__(self, error: Exception = None):
        self.calls = []
        self.error = error

    def run_many(self, texts):
        self.calls.append(list(texts))
        if self.error is not None:
            raise self.error
        return [f"result:{text}" for text in texts]


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture()
def executor():
    with ThreadPoolExecutor(max_workers=2) as pool:
        yield pool


class TestMicroBatcher:
    def test_one_submission_flushes_as_one_batch(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=0.0)

        results = run(batcher.submit(["a", "b", "a"]))
        assert results == ["result:a", "result:b", "result:a"]
        assert service.calls == [["a", "b", "a"]]
        assert batcher.flushes == 1
        assert batcher.queries_batched == 3

    def test_concurrent_submissions_coalesce_into_one_run_many(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=0.01)

        async def scenario():
            return await asyncio.gather(
                batcher.submit(["a", "b"]), batcher.submit(["c"]), batcher.submit(["d"])
            )

        first, second, third = run(scenario())
        assert first == ["result:a", "result:b"]
        assert second == ["result:c"]
        assert third == ["result:d"]
        # All three awaiters landed inside one flush window.
        assert service.calls == [["a", "b", "c", "d"]]
        assert batcher.flushes == 1

    def test_max_batch_flushes_immediately(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=10.0, max_batch=2)
        # A window of 10 s would hang the test if the size trigger failed.
        results = run(batcher.submit(["a", "b"]))
        assert results == ["result:a", "result:b"]
        assert service.calls == [["a", "b"]]

    def test_empty_submission_short_circuits(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=0.0)
        assert run(batcher.submit([])) == []
        assert service.calls == []
        assert batcher.flushes == 0

    def test_service_error_fails_every_awaiter(self, executor) -> None:
        service = FakeService(error=RuntimeError("store is gone"))
        batcher = MicroBatcher(service, executor, flush_window=0.0)

        async def scenario():
            with pytest.raises(RuntimeError, match="store is gone"):
                await batcher.submit(["a"])

        run(scenario())

    def test_drain_flushes_pending_work(self, executor) -> None:
        service = FakeService()
        batcher = MicroBatcher(service, executor, flush_window=60.0)

        async def scenario():
            # Submit without awaiting, then drain: the pending batch must be
            # executed (shutdown never strands queued queries).
            task = asyncio.ensure_future(batcher.submit(["a"]))
            await asyncio.sleep(0)  # let submit() enqueue
            await batcher.drain()
            return await task

        assert run(scenario()) == ["result:a"]
        assert service.calls == [["a"]]

    def test_invalid_knobs_rejected(self, executor) -> None:
        with pytest.raises(ValueError, match="flush window"):
            MicroBatcher(FakeService(), executor, flush_window=-0.001)
        with pytest.raises(ValueError, match="max batch"):
            MicroBatcher(FakeService(), executor, max_batch=0)
