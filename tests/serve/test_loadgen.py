"""Tests of the closed-loop load generator against a real served index."""

from __future__ import annotations

import json

import pytest

from repro.core.index import SubtreeIndex
from repro.serve.loadgen import LoadgenReport, parse_base_url, run_load
from repro.serve.server import open_server, result_to_dict

QUERIES = ["NP(DT)(NN)", "VP(VBZ)", "S(NP)(VP)"]


@pytest.fixture(scope="module")
def served(tmp_path_factory, small_corpus):
    path = str(tmp_path_factory.mktemp("loadgen") / "corpus.si")
    SubtreeIndex.build(small_corpus, mss=3, coding="root-split", path=path).close()
    service, thread = open_server(path)
    try:
        yield service, thread.url
    finally:
        thread.stop()
        service.close()


class TestParseBaseUrl:
    def test_host_and_port(self) -> None:
        assert parse_base_url("http://127.0.0.1:8321") == ("127.0.0.1", 8321)
        assert parse_base_url("http://localhost") == ("localhost", 80)
        assert parse_base_url("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_rejects_non_http_and_hostless(self) -> None:
        with pytest.raises(ValueError, match="http"):
            parse_base_url("ftp://example.com")
        with pytest.raises(ValueError, match="host"):
            parse_base_url("http://")


class TestRunLoad:
    def test_closed_loop_reports_throughput_and_latency(self, served) -> None:
        service, url = served
        report = run_load(url, QUERIES, concurrency=2, duration=0.4)
        assert report.concurrency == 2
        assert report.duration_seconds == pytest.approx(0.4, abs=0.3)
        assert report.requests > 0
        assert report.errors == 0
        assert report.qps > 0
        assert len(report.latencies) == report.requests
        assert report.latencies == sorted(report.latencies)
        latency = report.percentiles_ms()
        assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_expected_payloads_verify_clean(self, served) -> None:
        service, url = served
        expected = {
            text: json.loads(json.dumps(result_to_dict(service.run(text))))
            for text in QUERIES
        }
        report = run_load(url, QUERIES, concurrency=1, duration=0.3, expected=expected)
        assert report.requests > 0
        assert report.mismatches == 0

    def test_wrong_expectations_are_counted_as_mismatches(self, served) -> None:
        _, url = served
        wrong = {text: {"total_matches": -1} for text in QUERIES}
        report = run_load(url, QUERIES, concurrency=1, duration=0.2, expected=wrong)
        assert report.mismatches == report.requests > 0

    def test_connection_refused_raises_instead_of_empty_report(self) -> None:
        with pytest.raises(OSError):
            run_load("http://127.0.0.1:9", QUERIES, concurrency=1, duration=0.2)

    def test_invalid_arguments_rejected(self, served) -> None:
        _, url = served
        with pytest.raises(ValueError, match="concurrency"):
            run_load(url, QUERIES, concurrency=0, duration=0.2)
        with pytest.raises(ValueError, match="duration"):
            run_load(url, QUERIES, concurrency=1, duration=0.0)
        with pytest.raises(ValueError, match="query mix"):
            run_load(url, [], concurrency=1, duration=0.2)


class TestLoadgenReport:
    def test_empty_report_degrades_gracefully(self) -> None:
        report = LoadgenReport(
            concurrency=1, duration_seconds=0.0, requests=0, errors=0, mismatches=0
        )
        assert report.qps == 0.0
        assert report.percentile(0.5) is None
        assert report.percentiles_ms() == {"p50": None, "p95": None, "p99": None}

    def test_as_dict_is_json_friendly(self) -> None:
        report = LoadgenReport(
            concurrency=2,
            duration_seconds=1.0,
            requests=2,
            errors=0,
            mismatches=0,
            latencies=[0.001, 0.003],
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["qps"] == 2.0
        assert payload["latency_ms"]["p50"] == pytest.approx(2.0)
