"""Unit tests of the histogram/quantile math and the Prometheus renderer."""

from __future__ import annotations

import random

import pytest

from repro.serve.metrics import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    percentile_of_sorted,
    prometheus_line,
    render_families,
    render_histogram,
)


class TestPercentileOfSorted:
    def test_empty_series_is_none(self) -> None:
        assert percentile_of_sorted([], 0.5) is None
        assert percentile_of_sorted([], 0.99) is None

    def test_single_sample_is_every_quantile(self) -> None:
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert percentile_of_sorted([0.042], q) == 0.042

    def test_endpoints_are_min_and_max(self) -> None:
        values = [1.0, 2.0, 5.0, 9.0]
        assert percentile_of_sorted(values, 0.0) == 1.0
        assert percentile_of_sorted(values, 1.0) == 9.0

    def test_median_interpolates_between_middle_samples(self) -> None:
        assert percentile_of_sorted([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert percentile_of_sorted([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_out_of_range_quantile_rejected(self) -> None:
        with pytest.raises(ValueError, match="quantile"):
            percentile_of_sorted([1.0], 1.5)
        with pytest.raises(ValueError, match="quantile"):
            percentile_of_sorted([1.0], -0.1)


class TestLatencyHistogram:
    def test_empty_histogram_reports_zero_quantiles(self) -> None:
        # Never-observed histograms must stay number-valued (no None/NaN):
        # /stats and /metrics render every endpoint from the first scrape.
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_sample_is_reported_exactly(self) -> None:
        histogram = LatencyHistogram()
        histogram.observe(0.0042)
        # A bucketed estimate would land somewhere inside (0.0025, 0.005];
        # the min/max clamp pins a single observation to itself.
        for q in (0.5, 0.95, 0.99):
            assert histogram.quantile(q) == 0.0042

    def test_bucket_boundary_value_lands_in_its_le_bucket(self) -> None:
        histogram = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        histogram.observe(0.01)  # exactly on a bound: le semantics, not lt
        assert histogram.bucket_counts() == [0, 1, 0, 0]
        histogram.observe(0.010001)  # just past the bound: next bucket up
        assert histogram.bucket_counts() == [0, 1, 1, 0]

    def test_overflow_beyond_last_bound_is_counted(self) -> None:
        histogram = LatencyHistogram(buckets=(0.001, 0.01))
        histogram.observe(5.0)
        assert histogram.bucket_counts() == [0, 0, 1]
        assert histogram.cumulative_counts() == [0, 0, 1]
        assert histogram.quantile(0.5) == 5.0  # clamped to the observed max

    def test_negative_observations_clamp_to_zero(self) -> None:
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        assert histogram.count == 1
        assert histogram.sum == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_p99_of_heavy_tailed_series(self) -> None:
        # 990 fast requests at ~1 ms, 10 stragglers at ~1 s: p99 must sit at
        # the boundary between body and tail, p50 firmly in the body.
        histogram = LatencyHistogram()
        rng = random.Random(7)
        samples = [rng.uniform(0.0009, 0.0011) for _ in range(990)]
        samples += [rng.uniform(0.9, 1.1) for _ in range(10)]
        for value in samples:
            histogram.observe(value)
        p50 = histogram.quantile(0.5)
        p99 = histogram.quantile(0.99)
        assert p50 is not None and p50 < 0.0025
        assert p99 is not None and p99 <= 0.0025  # rank 990 is still in the body
        p995 = histogram.quantile(0.995)
        assert p995 is not None and p995 > 0.25  # one straggler deep into the tail
        assert histogram.quantile(1.0) == max(samples)

    def test_estimates_track_exact_quantiles_within_bucket_resolution(self) -> None:
        histogram = LatencyHistogram()
        rng = random.Random(23)
        samples = sorted(rng.expovariate(1 / 0.02) for _ in range(5_000))
        for value in samples:
            histogram.observe(value)
        for q in (0.5, 0.95, 0.99):
            exact = percentile_of_sorted(samples, q)
            estimate = histogram.quantile(q)
            assert estimate is not None and exact is not None
            # The estimate may be off by up to one bucket width (2.5x ladder).
            assert exact / 3.0 <= estimate <= exact * 3.0, (q, exact, estimate)

    def test_counters_and_sum(self) -> None:
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)
        assert sum(histogram.bucket_counts()) == 3
        assert histogram.cumulative_counts()[-1] == 3

    def test_bad_bucket_bounds_rejected(self) -> None:
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=())
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.1, 0.1))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.5, 0.1))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(-0.1, 0.5))


class TestPrometheusRendering:
    def test_sample_line_with_sorted_escaped_labels(self) -> None:
        line = prometheus_line("m_total", 3, {"b": 'say "hi"', "a": "x"})
        assert line == 'm_total{a="x",b="say \\"hi\\""} 3'
        assert prometheus_line("m", 0.5) == "m 0.5"

    def test_histogram_series_shape(self) -> None:
        histogram = LatencyHistogram(buckets=(0.001, 0.01))
        histogram.observe(0.0005)
        histogram.observe(0.005)
        lines = render_histogram("lat", histogram, {"endpoint": "/query"})
        assert 'lat_bucket{endpoint="/query",le="0.001"} 1' in lines
        assert 'lat_bucket{endpoint="/query",le="0.01"} 2' in lines
        assert 'lat_bucket{endpoint="/query",le="+Inf"} 2' in lines  # cumulative
        assert 'lat_count{endpoint="/query"} 2' in lines
        assert any(line.startswith('lat_sum{endpoint="/query"}') for line in lines)
        quantile_lines = [line for line in lines if "quantile=" in line]
        assert len(quantile_lines) == 3
        assert all('quantile="0.' in line for line in quantile_lines)

    def test_empty_histogram_renders_zero_series(self) -> None:
        # A zero-observation family still renders: all-zero buckets, zero
        # sum/count and 0.0 quantile estimates -- and never NaN/None.
        histogram = LatencyHistogram(buckets=(0.001, 0.01))
        lines = render_histogram("lat", histogram, {"endpoint": "/debug/trace"})
        assert 'lat_bucket{endpoint="/debug/trace",le="+Inf"} 0' in lines
        assert 'lat_sum{endpoint="/debug/trace"} 0' in lines
        assert 'lat_count{endpoint="/debug/trace"} 0' in lines
        quantile_lines = [line for line in lines if "quantile=" in line]
        assert len(quantile_lines) == 3
        assert all(line.endswith(" 0") for line in quantile_lines)
        assert not any("NaN" in line or "None" in line for line in lines)

    def test_families_join_with_help_and_type_headers(self) -> None:
        body = render_families([("m_total", "counter", "A counter.", ["m_total 1"])])
        assert body == "# HELP m_total A counter.\n# TYPE m_total counter\nm_total 1\n"

    def test_default_buckets_are_a_valid_ladder(self) -> None:
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] == pytest.approx(0.0001)
        assert DEFAULT_BUCKETS[-1] == 10.0
