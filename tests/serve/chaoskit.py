"""Fault-injection toolkit for the serving-layer chaos suite.

Everything the ``tests/serve/chaos`` tests need to behave badly on purpose:
raw-socket clients that connect and say nothing, dribble bytes slower than
any timeout, vanish mid-request, or accept responses without ever reading
them; a gate that freezes a query service mid-request so queue bounds and
handler timeouts can be observed deterministically; and a strict parser for
the Prometheus text exposition format so ``/metrics`` can be checked for
well-formedness, not just for substrings.

Stdlib only, like everything else in the repo.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# ----------------------------------------------------------------------
# Raw-socket clients
# ----------------------------------------------------------------------


def connect(port: int, host: str = "127.0.0.1", timeout: float = 10.0) -> socket.socket:
    """A connected TCP socket with a read timeout (the *tests* never hang)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return sock


def http_request(
    path: str = "/healthz",
    method: str = "GET",
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
    version: str = "HTTP/1.1",
) -> bytes:
    """A well-formed request head + body, ready to send (or mangle)."""
    lines = [f"{method} {path} {version}", "Host: chaos"]
    if body:
        lines.append(f"Content-Length: {len(body)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def send_slowly(
    sock: socket.socket,
    payload: bytes,
    chunk_size: int = 1,
    pause: float = 0.05,
    give_up_after: float = 10.0,
) -> int:
    """Slow-loris: dribble *payload* out in tiny chunks, pausing in between.

    Stops early (returning the bytes sent) once the server hangs up -- which
    is exactly what the timeout tests expect it to do.
    """
    sent = 0
    deadline = time.monotonic() + give_up_after
    for start in range(0, len(payload), chunk_size):
        if time.monotonic() > deadline:
            break
        try:
            sock.sendall(payload[start : start + chunk_size])
        except OSError:
            break  # the server reset the connection: mission accomplished
        sent += chunk_size
        time.sleep(pause)
    return sent


@dataclass
class HttpResponse:
    """One parsed HTTP/1.1 response."""

    status: int
    reason: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Dict[str, object]:
        return json.loads(self.body.decode("utf-8"))


def read_http_response(sock: socket.socket, timeout: float = 10.0) -> Optional[HttpResponse]:
    """Read exactly one response off *sock*; ``None`` on a clean close.

    Raises ``socket.timeout`` if the server sends nothing within *timeout*
    and ``ValueError`` if it sends something that is not HTTP -- both are
    test failures, never silent.
    """
    sock.settimeout(timeout)
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(4096)
        if not chunk:
            if buffer:
                raise ValueError(f"connection closed mid-head: {buffer!r}")
            return None
        buffer += chunk
    head, _, rest = buffer.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    match = re.fullmatch(r"HTTP/1\.1 (\d{3}) (.*)", lines[0])
    if match is None:
        raise ValueError(f"malformed status line: {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = sock.recv(4096)
        if not chunk:
            raise ValueError(f"connection closed mid-body ({len(rest)}/{length} bytes)")
        rest += chunk
    return HttpResponse(int(match.group(1)), match.group(2), headers, rest[:length])


def assert_closed(sock: socket.socket, timeout: float = 5.0) -> None:
    """Block until the server closes *sock*; fail the test if it does not."""
    sock.settimeout(timeout)
    leftover = b""
    while True:
        chunk = sock.recv(4096)  # socket.timeout here fails the test loudly
        if not chunk:
            return
        leftover += chunk
        if len(leftover) > 1 << 20:
            raise AssertionError("server keeps sending instead of closing")


def never_reading_socket(port: int, host: str = "127.0.0.1") -> socket.socket:
    """A connected socket with the smallest receive buffer the OS allows.

    The owner must *not* read from it: responses pile up in the tiny kernel
    buffers until the server's ``writer.drain()`` stalls and its write
    timeout fires.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)  # kernel clamps to its floor
    sock.connect((host, port))
    sock.settimeout(30.0)
    return sock


# ----------------------------------------------------------------------
# Service gating: freeze query execution mid-request
# ----------------------------------------------------------------------
class GatedService:
    """Wraps a query service so every ``run``/``run_many`` blocks on a gate.

    With the gate closed, requests pile up on the server's executor --
    exactly the state the queue-bound and handler-timeout tests need to
    reach deterministically.  ``release()`` lets everything finish (always
    call it in teardown: executor threads cannot be cancelled).  All other
    attributes (``prepare``, ``stats``, caches, ...) pass through.
    """

    def __init__(self, inner, hold_timeout: float = 30.0):
        self._inner = inner
        self._gate = threading.Event()
        self._hold_timeout = hold_timeout
        self.entered = 0  # calls that reached the gate (observable from tests)

    def release(self) -> None:
        self._gate.set()

    def run(self, text: str):
        self.entered += 1
        self._gate.wait(self._hold_timeout)
        return self._inner.run(text)

    def run_many(self, texts):
        self.entered += 1
        self._gate.wait(self._hold_timeout)
        return self._inner.run_many(texts)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SlowService:
    """Wraps a query service so every query takes at least *delay* seconds."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self.delay = delay

    def run(self, text: str):
        time.sleep(self.delay)
        return self._inner.run(text)

    def run_many(self, texts):
        time.sleep(self.delay)
        return self._inner.run_many(texts)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


# ----------------------------------------------------------------------
# Prometheus text-format parsing (exposition format 0.0.4)
# ----------------------------------------------------------------------
#: Suffixes a histogram family's sample names may carry.  ``_quantile`` is
#: this server's pre-computed p50/p95/p99 export alongside the buckets.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count", "_quantile")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass
class Family:
    """One ``# HELP``/``# TYPE`` family and its sample lines, parsed."""

    name: str
    kind: str
    help: str
    #: ``(sample name, labels, value)`` triples in exposition order.
    samples: List[Tuple[str, Dict[str, str], float]] = field(default_factory=list)

    def value(self, labels: Optional[Dict[str, str]] = None, suffix: str = "") -> float:
        """The single sample matching *labels* (and name *suffix*)."""
        wanted = labels or {}
        matches = [
            value
            for name, sample_labels, value in self.samples
            if name == self.name + suffix
            and all(sample_labels.get(key) == val for key, val in wanted.items())
        ]
        if len(matches) != 1:
            raise AssertionError(
                f"expected exactly one {self.name}{suffix} sample with {wanted}, "
                f"got {len(matches)}"
            )
        return matches[0]


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)  # raises ValueError on garbage: caller reports the line


def parse_prometheus(text: str) -> Dict[str, Family]:
    """Parse (and structurally validate) one ``/metrics`` exposition body.

    Enforces what a real scraper relies on: ``# HELP`` then ``# TYPE`` per
    family, each family declared once, every sample line syntactically
    valid with a float-parseable value, every sample attributed to the
    family declared above it (histogram samples via the standard suffixes),
    and histogram bucket series cumulative with a ``+Inf`` bucket equal to
    ``_count``.  Raises ``AssertionError`` with the offending line on any
    violation.
    """
    families: Dict[str, Family] = {}
    current: Optional[Family] = None
    pending_help: Optional[Tuple[str, str]] = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            assert len(parts) == 2 and parts[1].strip(), f"HELP without text: {line!r}"
            assert parts[0] not in families, f"family {parts[0]!r} declared twice"
            pending_help = (parts[0], parts[1])
            current = None
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ")
            assert len(parts) == 2, f"malformed TYPE line: {line!r}"
            name, kind = parts
            assert kind in ("counter", "gauge", "histogram", "summary", "untyped"), line
            assert pending_help is not None and pending_help[0] == name, (
                f"TYPE for {name!r} not preceded by its HELP line"
            )
            current = Family(name=name, kind=kind, help=pending_help[1])
            families[name] = current
            pending_help = None
            continue
        assert not line.startswith("#"), f"unexpected comment line: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"malformed sample line: {line!r}"
        name = match.group("name")
        labels = {key: value for key, value in _LABEL_RE.findall(match.group("labels") or "")}
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise AssertionError(f"non-numeric sample value: {line!r}") from None
        assert current is not None, f"sample before any TYPE header: {line!r}"
        allowed = current.name == name or (
            current.kind == "histogram"
            and any(name == current.name + suffix for suffix in _HISTOGRAM_SUFFIXES)
        )
        assert allowed, f"sample {name!r} under family {current.name!r}: {line!r}"
        current.samples.append((name, labels, value))
    assert pending_help is None, f"HELP without a TYPE line: {pending_help[0]!r}"
    _check_histograms(families)
    return families


def _check_histograms(families: Dict[str, Family]) -> None:
    for family in families.values():
        if family.kind != "histogram":
            continue
        # Group bucket series by their non-le labels.
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for name, labels, value in family.samples:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if name == family.name + "_bucket":
                assert "le" in labels, f"bucket without le label in {family.name}"
                series.setdefault(key, []).append((_parse_value(labels["le"]), value))
            elif name == family.name + "_count":
                counts[key] = value
        for key, buckets in series.items():
            bounds = [bound for bound, _ in buckets]
            cumulative = [count for _, count in buckets]
            assert bounds == sorted(bounds), f"{family.name} buckets out of order for {key}"
            assert bounds[-1] == float("inf"), f"{family.name} missing +Inf bucket for {key}"
            assert cumulative == sorted(cumulative), (
                f"{family.name} bucket counts not cumulative for {key}"
            )
            assert key in counts and counts[key] == cumulative[-1], (
                f"{family.name} +Inf bucket != _count for {key}"
            )


#: Sample names whose values must never decrease between two scrapes of the
#: same server: counters, plus a histogram's buckets / sum / count.
def monotonic_samples(families: Dict[str, Family]) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """The monotonic subset of an exposition, keyed for scrape-to-scrape diffing."""
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for family in families.values():
        for name, labels, value in family.samples:
            if family.kind == "counter" or (
                family.kind == "histogram" and not name.endswith("_quantile")
            ):
                out[(name, tuple(sorted(labels.items())))] = value
    return out


def assert_monotonic(before: Dict[str, Family], after: Dict[str, Family]) -> None:
    """Every counter-like sample in *before* exists in *after*, not smaller."""
    earlier = monotonic_samples(before)
    later = monotonic_samples(after)
    for key, value in earlier.items():
        assert key in later, f"sample {key} disappeared between scrapes"
        assert later[key] >= value, f"sample {key} went backwards: {value} -> {later[key]}"
