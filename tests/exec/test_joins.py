"""Unit tests for the structural join primitives."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.exec.joins import (
    deduplicate_rows,
    group_rows_by_tid,
    intersect_sorted_tid_lists,
    merge_join_bindings,
    mpmg_join_codes,
)
from repro.trees.numbering import IntervalCode


class TestIntersection:
    def test_basic(self) -> None:
        assert intersect_sorted_tid_lists([[1, 3, 5, 7], [3, 5, 9], [2, 3, 5]]) == [3, 5]

    def test_empty_inputs(self) -> None:
        assert intersect_sorted_tid_lists([]) == []
        assert intersect_sorted_tid_lists([[1, 2], []]) == []

    def test_single_list(self) -> None:
        assert intersect_sorted_tid_lists([[1, 2, 3]]) == [1, 2, 3]

    def test_disjoint(self) -> None:
        assert intersect_sorted_tid_lists([[1, 2], [3, 4]]) == []

    @given(st.lists(st.sets(st.integers(min_value=0, max_value=50)), min_size=1, max_size=4))
    def test_matches_set_intersection(self, groups: list[set[int]]) -> None:
        lists = [sorted(group) for group in groups]
        expected = sorted(set.intersection(*groups)) if groups else []
        assert intersect_sorted_tid_lists(lists) == expected


class TestMergeJoinBindings:
    def test_joins_on_shared_tid_only(self) -> None:
        left = [(1, {0: IntervalCode(1, 5, 0)}), (2, {0: IntervalCode(1, 7, 0)})]
        right = [(2, {1: IntervalCode(2, 3, 1)}), (3, {1: IntervalCode(2, 2, 1)})]
        rows = merge_join_bindings(left, right, lambda a, b: True)
        assert [tid for tid, _ in rows] == [2]
        assert rows[0][1] == {0: IntervalCode(1, 7, 0), 1: IntervalCode(2, 3, 1)}

    def test_predicate_filters_pairs(self) -> None:
        left = [(1, {0: IntervalCode(1, 10, 0)}), (1, {0: IntervalCode(5, 4, 2)})]
        right = [(1, {1: IntervalCode(2, 3, 1)})]
        rows = merge_join_bindings(
            left, right, lambda a, b: a[0].is_ancestor_of(b[1])
        )
        assert len(rows) == 1
        assert rows[0][1][0].pre == 1

    def test_group_rows_by_tid(self) -> None:
        rows = [(1, {"a": 1}), (1, {"a": 2}), (4, {"a": 3})]
        grouped = list(group_rows_by_tid(rows))
        assert [tid for tid, _ in grouped] == [1, 4]
        assert len(grouped[0][1]) == 2

    def test_deduplicate_rows(self) -> None:
        code = IntervalCode(1, 2, 0)
        rows = [(1, {0: code}), (1, {0: code}), (2, {0: code})]
        assert len(deduplicate_rows(rows)) == 2


class TestMPMGJoin:
    def test_ancestor_descendant(self) -> None:
        ancestors = [(1, IntervalCode(1, 10, 0)), (1, IntervalCode(2, 4, 1))]
        descendants = [(1, IntervalCode(3, 2, 2)), (1, IntervalCode(6, 6, 1))]
        results = mpmg_join_codes(ancestors, descendants, axis="//")
        pairs = {(a.pre, d.pre) for _, a, d in results}
        assert pairs == {(1, 3), (2, 3), (1, 6)}

    def test_parent_child_restricts_level(self) -> None:
        ancestors = [(1, IntervalCode(1, 10, 0))]
        descendants = [(1, IntervalCode(2, 4, 1)), (1, IntervalCode(3, 2, 2))]
        results = mpmg_join_codes(ancestors, descendants, axis="/")
        assert {(a.pre, d.pre) for _, a, d in results} == {(1, 2)}

    def test_different_trees_never_join(self) -> None:
        ancestors = [(1, IntervalCode(1, 10, 0))]
        descendants = [(2, IntervalCode(2, 4, 1))]
        assert mpmg_join_codes(ancestors, descendants, axis="//") == []
