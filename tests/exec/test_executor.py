"""Integration tests: index executors vs the reference matcher.

The central correctness claim of the paper is that root-split and
subtree-interval codings perform *exact* matching without post-validation.
These tests build all three indexes over a shared synthetic corpus and check
that every executor returns exactly the matches of the naive in-memory
matcher, query by query.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.core.index import SubtreeIndex
from repro.corpus.store import Corpus
from repro.exec.executor import QueryExecutor
from repro.query.model import QueryTree, has_duplicate_siblings, query_from_node
from repro.query.parser import parse_query
from repro.trees.matching import match_corpus

CODINGS = ["filter", "root-split", "subtree-interval"]
MSS_VALUES = [1, 2, 3]

#: Structural queries exercised against the shared corpus.  They only use
#: Penn tags produced by the generator grammar, and avoid duplicate siblings
#: (see DESIGN.md on ambiguity of such queries).
QUERY_TEXTS = [
    "NP",
    "VBZ",
    "NP(DT)",
    "NP(DT)(NN)",
    "VP(VBZ)",
    "S(NP)(VP)",
    "VP(VBZ)(NP)",
    "NP(DT)(JJ)(NN)",
    "S(NP(DT))(VP)",
    "S(NP)(VP(VBD))",
    "VP(VBD(//NN))",
    "S(//NN)",
    "S(NP(//DT))(VP)",
    "NP(NP)(PP(IN))",
    "PP(IN)(NP(NN))",
    "S(NP(DT)(NN))(VP(VBZ))",
    "VP(MD)(VP)",
    "ROOT(S(NP)(VP))",
]


@pytest.fixture(scope="module")
def corpus(tmp_path_factory) -> Corpus:
    from repro.corpus.generator import CorpusGenerator

    return Corpus(CorpusGenerator(seed=101).generate(80))


@pytest.fixture(scope="module")
def executors(tmp_path_factory, corpus: Corpus) -> Dict[tuple, QueryExecutor]:
    directory = tmp_path_factory.mktemp("indexes")
    built: Dict[tuple, QueryExecutor] = {}
    for coding in CODINGS:
        for mss in MSS_VALUES:
            path = str(directory / f"{coding}-{mss}.si")
            index = SubtreeIndex.build(corpus, mss=mss, coding=coding, path=path)
            built[(coding, mss)] = QueryExecutor(index, store=corpus)
    return built


def _expected(corpus: Corpus, query: QueryTree) -> Dict[int, int]:
    return match_corpus(query.root, list(corpus))


class TestExecutorsAgainstReferenceMatcher:
    @pytest.mark.parametrize("text", QUERY_TEXTS)
    @pytest.mark.parametrize("coding", CODINGS)
    def test_matches_reference(self, executors, corpus, coding: str, text: str) -> None:
        query = parse_query(text)
        assert not has_duplicate_siblings(query)
        expected = _expected(corpus, query)
        for mss in MSS_VALUES:
            result = executors[(coding, mss)].execute(query)
            assert result.matches_per_tree == expected, (
                f"coding={coding} mss={mss} query={text}: "
                f"{result.matches_per_tree} != {expected}"
            )

    @pytest.mark.parametrize("coding", CODINGS)
    def test_no_match_query(self, executors, coding: str) -> None:
        query = parse_query("QP(WP)(WDT)")
        for mss in MSS_VALUES:
            result = executors[(coding, mss)].execute(query)
            assert result.matches_per_tree == {}

    def test_codings_agree_with_each_other(self, executors) -> None:
        query = parse_query("S(NP(DT))(VP(VBZ))")
        results = {
            (coding, mss): executors[(coding, mss)].execute(query).matches_per_tree
            for coding in CODINGS
            for mss in MSS_VALUES
        }
        baseline = results[("filter", 1)]
        assert all(value == baseline for value in results.values())


class TestExtractedSubtreeQueries:
    """FB-style queries: subtrees extracted from held-out generated trees."""

    def test_extracted_queries_match_reference(self, executors, corpus) -> None:
        from repro.corpus.generator import CorpusGenerator

        held_out = CorpusGenerator(seed=999).generate_list(5)
        queries: List[QueryTree] = []
        for tree in held_out:
            for node in tree.root.preorder():
                if 2 <= node.size() <= 6 and not node.is_leaf:
                    query = QueryTree(query_from_node(node))
                    if not has_duplicate_siblings(query):
                        queries.append(query)
                if len(queries) >= 12:
                    break
            if len(queries) >= 12:
                break

        assert queries, "no extracted queries -- generator changed unexpectedly?"
        for query in queries:
            expected = _expected(corpus, query)
            for coding in CODINGS:
                result = executors[(coding, 3)].execute(query)
                assert result.matches_per_tree == expected, query.to_string()


class TestExecutionStats:
    def test_stats_populated(self, executors) -> None:
        query = parse_query("S(NP(DT)(NN))(VP)")
        result = executors[("root-split", 3)].execute(query)
        stats = result.stats
        assert stats.coding == "root-split"
        assert stats.strategy == "min-rc"
        assert stats.cover_size >= 1
        assert stats.join_count == stats.cover_size - 1
        assert stats.elapsed_seconds > 0

    def test_filter_based_counts_candidates(self, executors) -> None:
        query = parse_query("NP(DT)")
        result = executors[("filter", 2)].execute(query)
        assert result.stats.candidates_filtered >= len(result.matches_per_tree)

    def test_filter_without_store_raises(self, executors, corpus, tmp_path) -> None:
        index = SubtreeIndex.build(list(corpus)[:5], mss=2, coding="filter", path=str(tmp_path / "f.si"))
        executor = QueryExecutor(index, store=None)
        with pytest.raises(RuntimeError):
            executor.execute(parse_query("NP(DT)"))

    def test_default_strategies(self, executors) -> None:
        assert executors[("root-split", 2)].strategy == "min-rc"
        assert executors[("subtree-interval", 2)].strategy == "optimal"
        assert executors[("filter", 2)].strategy == "optimal"
