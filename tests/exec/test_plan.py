"""Unit tests for join planning: binding relations, predicates and join order."""

from __future__ import annotations


from repro.coding.base import Occurrence
from repro.coding.root_split import RootSplitCoding
from repro.coding.subtree_interval import SubtreeIntervalCoding
from repro.exec.plan import JoinPredicate, build_plan
from repro.query.decompose import min_rc, optimal_cover
from repro.query.parser import parse_query
from repro.trees.numbering import IntervalCode


def _occurrence(tid: int, codes: list[tuple[int, int, int]]) -> Occurrence:
    return Occurrence(tid=tid, codes=tuple(IntervalCode(*code) for code in codes))


class TestJoinPredicate:
    def test_equal(self) -> None:
        predicate = JoinPredicate("equal", 1, 1)
        assert predicate.holds(IntervalCode(3, 8, 1), IntervalCode(3, 8, 1))
        assert not predicate.holds(IntervalCode(3, 8, 1), IntervalCode(4, 2, 2))

    def test_child(self) -> None:
        predicate = JoinPredicate("child", 0, 1)
        parent = IntervalCode(1, 10, 0)
        child = IntervalCode(2, 5, 1)
        grandchild = IntervalCode(3, 2, 2)
        assert predicate.holds(parent, child)
        assert not predicate.holds(parent, grandchild)
        assert not predicate.holds(child, parent)

    def test_descendant(self) -> None:
        predicate = JoinPredicate("descendant", 0, 1)
        assert predicate.holds(IntervalCode(1, 10, 0), IntervalCode(3, 2, 2))
        assert not predicate.holds(IntervalCode(3, 2, 2), IntervalCode(1, 10, 0))


class TestBuildPlan:
    def _root_split_plan(self, text: str, mss: int = 2):
        query = parse_query(text)
        cover = min_rc(query, mss)
        coding = RootSplitCoding()
        postings = [
            coding.postings_from_occurrences([_occurrence(1, [(i + 1, 10 - i, i)])])
            for i, _ in enumerate(cover.subtrees)
        ]
        return query, cover, build_plan(query, cover, postings, coding)

    def test_relations_match_cover(self) -> None:
        _, cover, plan = self._root_split_plan("S(NP(DT))(VP)")
        assert len(plan.relations) == len(cover.subtrees)
        assert plan.join_count == len(cover.subtrees) - 1

    def test_root_split_relations_bind_only_roots(self) -> None:
        _, cover, plan = self._root_split_plan("S(NP(DT)(NN))(VP(VBZ))", mss=2)
        for relation, subtree in zip(plan.relations, cover.subtrees):
            assert relation.bound_nodes == {subtree.root.node_id}

    def test_subtree_interval_relations_bind_all_nodes(self) -> None:
        query = parse_query("NP(DT)(NN)")
        cover = optimal_cover(query, 3)
        coding = SubtreeIntervalCoding()
        postings = [
            coding.postings_from_occurrences(
                [_occurrence(1, [(1, 5, 0), (2, 1, 1), (3, 4, 1)])]
            )
        ]
        plan = build_plan(query, cover, postings, coding)
        assert plan.relations[0].bound_nodes == {0, 1, 2}

    def test_every_query_edge_between_bound_nodes_has_a_predicate(self) -> None:
        query, cover, plan = self._root_split_plan("S(NP(DT)(NN))(VP(VBZ))", mss=2)
        bound = set()
        for relation in plan.relations:
            bound |= relation.bound_nodes
        predicate_pairs = {
            (predicate.ancestor_node, predicate.descendant_node)
            for predicate in plan.predicates
            if predicate.kind in ("child", "descendant")
        }
        for parent, child, _ in query.edges():
            if parent.node_id in bound and child.node_id in bound:
                assert (parent.node_id, child.node_id) in predicate_pairs

    def test_descendant_axis_produces_descendant_predicate(self) -> None:
        query = parse_query("S(NP(//NN))")
        cover = min_rc(query, 3)
        coding = RootSplitCoding()
        postings = [
            coding.postings_from_occurrences([_occurrence(1, [(i + 1, 9 - i, i)])])
            for i, _ in enumerate(cover.subtrees)
        ]
        plan = build_plan(query, cover, postings, coding)
        kinds = {predicate.kind for predicate in plan.predicates}
        assert "descendant" in kinds

    def test_join_order_starts_with_smallest_relation(self) -> None:
        query = parse_query("S(NP)(VP)")
        cover = min_rc(query, 1, pad=False)
        coding = RootSplitCoding()
        postings = []
        for index, _ in enumerate(cover.subtrees):
            count = 5 - index  # later subtrees get shorter posting lists
            postings.append(
                coding.postings_from_occurrences(
                    [_occurrence(tid, [(tid + index, 20, index)]) for tid in range(count)]
                )
            )
        plan = build_plan(query, cover, postings, coding)
        first = plan.order[0]
        assert plan.relations[first].cardinality == min(r.cardinality for r in plan.relations)

    def test_order_keeps_connectivity(self) -> None:
        query, cover, plan = self._root_split_plan("S(NP(DT)(NN))(VP(VBZ)(NP))", mss=2)
        seen = set(plan.relations[plan.order[0]].bound_nodes)
        for index in plan.order[1:]:
            nodes = plan.relations[index].bound_nodes
            connected = bool(seen & nodes) or any(
                (p.ancestor_node in seen and p.descendant_node in nodes)
                or (p.descendant_node in seen and p.ancestor_node in nodes)
                for p in plan.predicates
            )
            assert connected
            seen |= nodes
