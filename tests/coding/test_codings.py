"""Unit and property tests for the three coding schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.coding import (
    FilterBasedCoding,
    FilterPosting,
    Occurrence,
    RootPosting,
    RootSplitCoding,
    SubtreeIntervalCoding,
    get_coding,
)
from repro.coding.base import coding_names
from repro.trees.numbering import IntervalCode


def _occurrence(tid: int, codes: list[tuple[int, int, int]]) -> Occurrence:
    return Occurrence(tid=tid, codes=tuple(IntervalCode(*code) for code in codes))


OCCURRENCES = [
    _occurrence(3, [(2, 5, 1), (3, 2, 2)]),
    _occurrence(3, [(2, 5, 1), (4, 3, 2)]),     # same root, different child
    _occurrence(7, [(10, 12, 4), (11, 10, 5)]),
    _occurrence(7, [(10, 12, 4), (11, 10, 5)]),  # exact duplicate embedding
]


class TestRegistry:
    def test_known_names(self) -> None:
        assert set(coding_names()) == {"filter", "root-split", "subtree-interval"}

    @pytest.mark.parametrize("name", ["filter", "root-split", "subtree-interval"])
    def test_get_coding(self, name: str) -> None:
        assert get_coding(name).name == name

    def test_unknown_name_rejected(self) -> None:
        with pytest.raises(ValueError):
            get_coding("mystery")


class TestFilterBasedCoding:
    def test_postings_are_unique_sorted_tids(self) -> None:
        postings = FilterBasedCoding().postings_from_occurrences(OCCURRENCES)
        assert postings == [FilterPosting(3), FilterPosting(7)]

    def test_round_trip(self) -> None:
        coding = FilterBasedCoding()
        postings = coding.postings_from_occurrences(OCCURRENCES)
        assert coding.decode_postings(coding.encode_postings(postings)) == postings

    def test_posting_count(self) -> None:
        assert FilterBasedCoding().posting_count(OCCURRENCES) == 2


class TestRootSplitCoding:
    def test_dedupes_same_root(self) -> None:
        postings = RootSplitCoding().postings_from_occurrences(OCCURRENCES)
        # Occurrences 1 and 2 share (tid=3, root pre=2); 3 and 4 are duplicates.
        assert postings == [RootPosting(3, 2, 5, 1), RootPosting(7, 10, 12, 4)]

    def test_round_trip(self) -> None:
        coding = RootSplitCoding()
        postings = coding.postings_from_occurrences(OCCURRENCES)
        assert coding.decode_postings(coding.encode_postings(postings)) == postings

    def test_posting_is_smaller_than_subtree_interval(self) -> None:
        root_split = RootSplitCoding()
        interval = SubtreeIntervalCoding()
        rs_bytes = root_split.encode_postings(root_split.postings_from_occurrences(OCCURRENCES))
        si_bytes = interval.encode_postings(interval.postings_from_occurrences(OCCURRENCES))
        assert len(rs_bytes) < len(si_bytes)


class TestSubtreeIntervalCoding:
    def test_keeps_distinct_embeddings(self) -> None:
        postings = SubtreeIntervalCoding().postings_from_occurrences(OCCURRENCES)
        assert len(postings) == 3  # only the exact duplicate collapses

    def test_order_values_are_preorder_ranks(self) -> None:
        # Codes listed in canonical order that differs from pre order.
        occurrence = _occurrence(1, [(5, 9, 2), (8, 7, 3), (6, 6, 3)])
        posting = SubtreeIntervalCoding().postings_from_occurrences([occurrence])[0]
        orders = [node.order for node in posting.nodes]
        assert orders == [1, 3, 2]

    def test_round_trip(self) -> None:
        coding = SubtreeIntervalCoding()
        postings = coding.postings_from_occurrences(OCCURRENCES)
        assert coding.decode_postings(coding.encode_postings(postings)) == postings

    def test_posting_properties(self) -> None:
        posting = SubtreeIntervalCoding().postings_from_occurrences([OCCURRENCES[0]])[0]
        assert posting.size == 2
        assert posting.root.pre == 2


class TestTidsOf:
    @pytest.mark.parametrize("name", ["filter", "root-split", "subtree-interval"])
    def test_tids_of(self, name: str) -> None:
        coding = get_coding(name)
        postings = coding.postings_from_occurrences(OCCURRENCES)
        assert coding.tids_of(postings) == [3, 7]


# ----------------------------------------------------------------------
# Property tests: encode/decode are inverse for arbitrary occurrences.
# ----------------------------------------------------------------------
_code_strategy = st.tuples(
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=0, max_value=60),
)
_occurrence_strategy = st.builds(
    _occurrence,
    tid=st.integers(min_value=0, max_value=1_000_000),
    codes=st.lists(_code_strategy, min_size=1, max_size=6, unique_by=lambda c: c[0]),
)


@pytest.mark.parametrize("name", ["filter", "root-split", "subtree-interval"])
@given(occurrences=st.lists(_occurrence_strategy, min_size=0, max_size=20))
def test_round_trip_property(name: str, occurrences: list[Occurrence]) -> None:
    coding = get_coding(name)
    postings = coding.postings_from_occurrences(occurrences)
    decoded = coding.decode_postings(coding.encode_postings(postings))
    assert decoded == postings
    # Posting lists are sorted by tid, which downstream merge joins rely on.
    tids = [coding._tid_of(posting) for posting in postings]
    assert tids == sorted(tids)
