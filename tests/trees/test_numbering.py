"""Unit tests for the interval numbering scheme."""

from __future__ import annotations

from repro.trees.node import ParseTree, build_tree
from repro.trees.numbering import IntervalCode, node_records, number_tree
from repro.trees.penn import parse_penn


def _codes_by_label(tree: ParseTree) -> dict:
    codes = number_tree(tree)
    return {node.label: codes[id(node)] for node in tree.preorder()}


class TestNumberTree:
    def test_pre_numbers_follow_preorder(self) -> None:
        tree = ParseTree(build_tree(("S", [("NP", ["DT", "NN"]), ("VP", ["VBZ"])])), tid=0)
        codes = number_tree(tree)
        pres = [codes[id(node)].pre for node in tree.preorder()]
        assert pres == sorted(pres)
        assert pres[0] == 1
        assert len(set(pres)) == tree.size()

    def test_post_numbers_are_a_permutation(self) -> None:
        tree = ParseTree(build_tree(("S", [("NP", ["DT", "NN"]), ("VP", ["VBZ"])])), tid=0)
        codes = number_tree(tree)
        posts = sorted(code.post for code in codes.values())
        assert posts == list(range(1, tree.size() + 1))

    def test_levels(self) -> None:
        tree = ParseTree(build_tree(("S", [("NP", ["DT", "NN"]), ("VP", ["VBZ"])])), tid=0)
        by_label = _codes_by_label(tree)
        assert by_label["S"].level == 0
        assert by_label["NP"].level == 1
        assert by_label["DT"].level == 2

    def test_ancestor_relation(self) -> None:
        tree = ParseTree(parse_penn("(S (NP (DT the) (NN dog)) (VP (VBZ barks)))"), tid=0)
        by_label = _codes_by_label(tree)
        assert by_label["S"].is_ancestor_of(by_label["DT"])
        assert by_label["NP"].is_ancestor_of(by_label["NN"])
        assert not by_label["NP"].is_ancestor_of(by_label["VBZ"])
        assert not by_label["DT"].is_ancestor_of(by_label["S"])

    def test_parent_relation(self) -> None:
        tree = ParseTree(parse_penn("(S (NP (DT the) (NN dog)) (VP (VBZ barks)))"), tid=0)
        by_label = _codes_by_label(tree)
        assert by_label["NP"].is_parent_of(by_label["DT"])
        assert not by_label["S"].is_parent_of(by_label["DT"])
        assert by_label["S"].is_parent_of(by_label["NP"])

    def test_containment_matches_descendant_sets(self) -> None:
        tree = ParseTree(parse_penn("(S (NP (DT the) (NN dog)) (VP (VBZ barks) (NP (NNS cats))))"), tid=0)
        codes = number_tree(tree)
        for node in tree.preorder():
            descendants = {id(d) for d in node.descendants()}
            for other in tree.preorder():
                expected = id(other) in descendants
                actual = codes[id(node)].is_ancestor_of(codes[id(other)])
                assert actual == expected


class TestNodeRecords:
    def test_records_sorted_by_pre(self) -> None:
        tree = ParseTree(parse_penn("(S (NP (DT the) (NN dog)) (VP (VBZ barks)))"), tid=7)
        records = node_records(tree)
        assert [record.pre for record in records] == sorted(record.pre for record in records)
        assert all(record.tid == 7 for record in records)

    def test_parent_ids(self) -> None:
        tree = ParseTree(parse_penn("(S (NP (DT the)) (VP (VBZ barks)))"), tid=0)
        records = {record.label: record for record in node_records(tree)}
        assert records["S"].parent_id == 0
        assert records["NP"].parent_id == records["S"].node_id
        assert records["DT"].parent_id == records["NP"].node_id

    def test_record_code_property(self) -> None:
        tree = ParseTree(parse_penn("(NP (DT the) (NN dog))"), tid=0)
        for record in node_records(tree):
            assert isinstance(record.code, IntervalCode)
            assert record.code.pre == record.pre
