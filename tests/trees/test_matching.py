"""Unit tests for the reference query-matching semantics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.trees.matching import count_matches, find_matches, match_corpus, tree_matches_query
from repro.trees.node import ParseTree
from repro.trees.penn import parse_penn


@dataclass
class Q:
    """A minimal query node satisfying the QueryLike protocol."""

    label: str
    children: List["Q"] = field(default_factory=list)
    child_axes: List[str] = field(default_factory=list)

    def child(self, node: "Q", axis: str = "/") -> "Q":
        self.children.append(node)
        self.child_axes.append(axis)
        return self


def _sentence() -> ParseTree:
    text = (
        "(ROOT (S (NP (DT The) (NNS agouti)) "
        "(VP (VBZ is) (NP (DT a) (JJ short-tailed) (JJ plant-eating) (NN rodent)))))"
    )
    return ParseTree(parse_penn(text), tid=1)


class TestChildAxis:
    def test_single_node_query(self) -> None:
        tree = _sentence()
        assert count_matches(Q("NP"), tree) == 2
        assert count_matches(Q("VP"), tree) == 1
        assert count_matches(Q("XP"), tree) == 0

    def test_parent_child_query(self) -> None:
        tree = _sentence()
        query = Q("NP").child(Q("DT"))
        assert count_matches(query, tree) == 2

    def test_query_with_lexical_leaf(self) -> None:
        tree = _sentence()
        query = Q("NP").child(Q("DT").child(Q("a")))
        assert count_matches(query, tree) == 1

    def test_multi_child_query(self) -> None:
        tree = _sentence()
        query = Q("VP").child(Q("VBZ")).child(Q("NP"))
        assert count_matches(query, tree) == 1

    def test_unordered_children(self) -> None:
        tree = _sentence()
        query = Q("VP").child(Q("NP")).child(Q("VBZ"))
        assert count_matches(query, tree) == 1

    def test_paper_figure1_query(self) -> None:
        # The query of Figure 1(a) without the lexical leaves it drops.
        tree = _sentence()
        query = Q("S").child(
            Q("NP").child(Q("NNS").child(Q("agouti")))
        ).child(
            Q("VP").child(Q("VBZ").child(Q("is"))).child(Q("NP").child(Q("DT").child(Q("a"))).child(Q("NN")))
        )
        assert count_matches(query, tree) == 1


class TestDescendantAxis:
    def test_descendant_query(self) -> None:
        tree = _sentence()
        query = Q("S").child(Q("NN"), axis="//")
        assert count_matches(query, tree) == 1

    def test_descendant_not_matched_by_self(self) -> None:
        tree = _sentence()
        query = Q("NN").child(Q("NN"), axis="//")
        assert count_matches(query, tree) == 0

    def test_mixed_axes(self) -> None:
        tree = _sentence()
        query = Q("VP").child(Q("VBZ")).child(Q("rodent"), axis="//")
        assert count_matches(query, tree) == 1


class TestInjectivity:
    def test_duplicate_children_require_distinct_nodes(self) -> None:
        tree = ParseTree(parse_penn("(NP (NN a) (NN b))"), tid=0)
        two = Q("NP").child(Q("NN")).child(Q("NN"))
        three = Q("NP").child(Q("NN")).child(Q("NN")).child(Q("NN"))
        assert count_matches(two, tree) == 1
        assert count_matches(three, tree) == 0


class TestCorpusMatching:
    def test_find_matches_returns_nodes(self) -> None:
        tree = _sentence()
        nodes = find_matches(Q("NP").child(Q("DT")), tree)
        assert len(nodes) == 2
        assert all(node.label == "NP" for node in nodes)

    def test_tree_matches_query(self) -> None:
        tree = _sentence()
        assert tree_matches_query(Q("VP"), tree)
        assert not tree_matches_query(Q("QP"), tree)

    def test_match_corpus(self) -> None:
        trees = [_sentence(), ParseTree(parse_penn("(NP (DT the) (NN cat))"), tid=2)]
        results = match_corpus(Q("NP").child(Q("DT")), trees)
        assert results == {1: 2, 2: 1}
