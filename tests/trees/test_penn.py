"""Unit tests for Penn-bracket parsing and serialisation."""

from __future__ import annotations

import pytest

from repro.trees.penn import PennSyntaxError, parse_penn, parse_penn_corpus, to_penn


class TestParsePenn:
    def test_simple_tree(self) -> None:
        tree = parse_penn("(NP (DT the) (NN dog))")
        assert tree.label == "NP"
        assert [child.label for child in tree.children] == ["DT", "NN"]
        assert tree.tokens() == ["the", "dog"]

    def test_nested_tree(self) -> None:
        tree = parse_penn("(S (NP (NN agouti)) (VP (VBZ is) (NP (DT a) (NN rodent))))")
        assert tree.size() == 12
        assert tree.tokens() == ["agouti", "is", "a", "rodent"]

    def test_whitespace_tolerance(self) -> None:
        tree = parse_penn("  ( NP   ( DT the )\n ( NN dog ) ) ")
        assert tree.tokens() == ["the", "dog"]

    def test_anonymous_root_wrapper(self) -> None:
        tree = parse_penn("( (S (NP (NN cats)) (VP (VBP purr))))")
        assert tree.label == "ROOT"
        assert tree.children[0].label == "S"

    def test_round_trip(self) -> None:
        text = "(S (NP (DT the) (NN dog)) (VP (VBZ barks)))"
        assert to_penn(parse_penn(text)) == text

    def test_pretty_round_trip(self) -> None:
        text = "(S (NP (DT the) (NN dog)) (VP (VBZ barks) (PP (IN at) (NP (NN cats)))))"
        pretty = to_penn(parse_penn(text), pretty=True)
        assert parse_penn(pretty).structurally_equal(parse_penn(text))

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(",
            ")",
            "(NP",
            "(NP (DT the)))",
            "()",
            "stray (NP (DT the))extra" + ")",
        ],
    )
    def test_malformed_input_raises(self, bad: str) -> None:
        with pytest.raises(PennSyntaxError):
            parse_penn(bad)

    def test_error_reports_position(self) -> None:
        with pytest.raises(PennSyntaxError) as excinfo:
            parse_penn("(NP (DT the)")
        assert excinfo.value.position >= 0


class TestParseCorpus:
    def test_sequential_tids(self) -> None:
        lines = ["(NP (NN a))", "", "# comment", "(NP (NN b))"]
        trees = list(parse_penn_corpus(lines))
        assert [tree.tid for tree in trees] == [0, 1]
        assert trees[1].tokens() == ["b"]

    def test_start_tid(self) -> None:
        trees = list(parse_penn_corpus(["(NP (NN a))"], start_tid=100))
        assert trees[0].tid == 100
