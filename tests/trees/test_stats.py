"""Unit tests for tree shape statistics."""

from __future__ import annotations

from repro.corpus.store import Corpus
from repro.trees.node import ParseTree, build_tree
from repro.trees.stats import TreeShapeStats, branching_factor_histogram, corpus_stats, tree_stats


def _tree() -> ParseTree:
    return ParseTree(build_tree(("S", [("NP", ["DT", "NN"]), ("VP", ["VBZ"])])), tid=0)


class TestTreeShapeStats:
    def test_single_tree_counts(self) -> None:
        stats = tree_stats(_tree())
        assert stats.tree_count == 1
        assert stats.node_count == 6
        assert stats.leaf_count == 3
        assert stats.internal_node_count == 3
        assert stats.max_branching == 2

    def test_avg_branching_factor(self) -> None:
        stats = tree_stats(_tree())
        # S has 2 children, NP has 2, VP has 1 -> 5/3.
        assert abs(stats.avg_branching_factor - 5 / 3) < 1e-9

    def test_merge(self) -> None:
        a = tree_stats(_tree())
        b = tree_stats(_tree())
        merged = a.merge(b)
        assert merged.tree_count == 2
        assert merged.node_count == 12

    def test_nodes_with_branching_above(self) -> None:
        stats = tree_stats(ParseTree(build_tree(("NP", ["A", "B", "C", "D"])), tid=0))
        assert stats.nodes_with_branching_above(3) == 1
        assert stats.nodes_with_branching_above(4) == 0

    def test_label_frequency_classes_partition(self) -> None:
        stats = TreeShapeStats()
        for index in range(30):
            stats.label_counts[f"L{index}"] = 1000 // (index + 1)
        classes = stats.label_frequency_classes()
        assert set(classes.values()) == {"H", "M", "L"}
        assert classes["L0"] == "H"
        assert classes["L29"] == "L"


class TestCorpusLevelStats:
    def test_corpus_stats_accumulates(self, small_corpus: Corpus) -> None:
        stats = corpus_stats(small_corpus)
        assert stats.tree_count == len(small_corpus)
        assert stats.node_count == small_corpus.total_nodes()
        assert stats.unique_labels > 10

    def test_generated_corpus_matches_paper_shape(self, small_corpus: Corpus) -> None:
        """The synthetic corpus must reproduce the shape facts of Section 4.1."""
        stats = corpus_stats(small_corpus)
        # Paper: average internal branching factor about 1.5.
        assert 1.2 <= stats.avg_branching_factor <= 2.0
        # Paper: nodes with branching factor > 10 are extremely rare.
        assert stats.nodes_with_branching_above(10) <= stats.node_count * 0.001

    def test_branching_histogram(self, small_corpus: Corpus) -> None:
        histogram = branching_factor_histogram(small_corpus)
        assert all(degree >= 1 for degree in histogram)
        assert sum(histogram.values()) == corpus_stats(small_corpus).internal_node_count
