"""Unit tests for the tree data model."""

from __future__ import annotations

import pytest

from repro.trees.node import Node, ParseTree, build_tree


@pytest.fixture()
def sample() -> Node:
    return build_tree(("S", [("NP", [("DT", []), ("NN", [])]), ("VP", [("VBZ", [])])]))


class TestNodeBasics:
    def test_build_tree_from_spec(self, sample: Node) -> None:
        assert sample.label == "S"
        assert [child.label for child in sample.children] == ["NP", "VP"]

    def test_build_tree_accepts_string_leaves(self) -> None:
        tree = build_tree(("NP", ["DT", "NN"]))
        assert [child.label for child in tree.children] == ["DT", "NN"]
        assert all(child.is_leaf for child in tree.children)

    def test_size_and_height(self, sample: Node) -> None:
        assert sample.size() == 6
        assert sample.height() == 3

    def test_leaf_properties(self, sample: Node) -> None:
        leaves = list(sample.leaves())
        assert [leaf.label for leaf in leaves] == ["DT", "NN", "VBZ"]
        assert all(leaf.is_leaf for leaf in leaves)
        assert all(leaf.degree == 0 for leaf in leaves)

    def test_parent_links_set_on_construction(self, sample: Node) -> None:
        np = sample.children[0]
        assert np.parent is sample
        assert np.children[0].parent is np
        assert sample.parent is None

    def test_add_child_sets_parent(self) -> None:
        root = Node("A")
        child = root.add_child(Node("B"))
        assert child.parent is root
        assert root.children == [child]

    def test_depth(self, sample: Node) -> None:
        assert sample.depth() == 0
        assert sample.children[0].depth() == 1
        assert sample.children[0].children[1].depth() == 2


class TestTraversals:
    def test_preorder_sequence(self, sample: Node) -> None:
        assert [node.label for node in sample.preorder()] == [
            "S", "NP", "DT", "NN", "VP", "VBZ",
        ]

    def test_postorder_sequence(self, sample: Node) -> None:
        assert [node.label for node in sample.postorder()] == [
            "DT", "NN", "NP", "VBZ", "VP", "S",
        ]

    def test_descendants_excludes_self(self, sample: Node) -> None:
        labels = [node.label for node in sample.descendants()]
        assert "S" not in labels
        assert len(labels) == sample.size() - 1

    def test_ancestors_nearest_first(self, sample: Node) -> None:
        dt = sample.children[0].children[0]
        assert [node.label for node in dt.ancestors()] == ["NP", "S"]

    def test_find_label(self, sample: Node) -> None:
        assert len(list(sample.find_label("NN"))) == 1
        assert len(list(sample.find_label("XX"))) == 0


class TestEqualityAndCopy:
    def test_copy_is_deep(self, sample: Node) -> None:
        clone = sample.copy()
        assert clone is not sample
        assert clone.structurally_equal(sample)
        clone.children[0].label = "XP"
        assert sample.children[0].label == "NP"

    def test_ordered_equality_respects_order(self) -> None:
        a = build_tree(("A", ["B", "C"]))
        b = build_tree(("A", ["C", "B"]))
        assert not a.structurally_equal(b, ordered=True)

    def test_unordered_equality_ignores_order(self) -> None:
        a = build_tree(("A", ["B", "C"]))
        b = build_tree(("A", ["C", "B"]))
        assert a.structurally_equal(b, ordered=False)

    def test_unordered_equality_is_multiset_sensitive(self) -> None:
        a = build_tree(("A", ["B", "B", "C"]))
        b = build_tree(("A", ["B", "C", "C"]))
        assert not a.structurally_equal(b, ordered=False)

    def test_compact_string(self) -> None:
        tree = build_tree(("A", [("B", []), ("C", [("D", [])])]))
        assert tree.to_compact_string() == "A(B)(C(D))"


class TestParseTree:
    def test_parse_tree_wraps_root(self, sample: Node) -> None:
        tree = ParseTree(sample, tid=42)
        assert tree.tid == 42
        assert tree.size() == 6
        assert len(tree) == 6
        assert tree.tokens() == ["DT", "NN", "VBZ"]

    def test_copy_preserves_tid(self, sample: Node) -> None:
        tree = ParseTree(sample, tid=9)
        assert tree.copy().tid == 9
