"""Unit tests for the query model and the query parser."""

from __future__ import annotations

import pytest

from repro.query.model import QueryNode, has_duplicate_siblings, query_from_tree
from repro.query.parser import QuerySyntaxError, parse_query
from repro.trees.node import build_tree


class TestQueryModel:
    def test_add_child_and_axes(self) -> None:
        root = QueryNode("S")
        np = root.add_child(QueryNode("NP"))
        vp = root.add_child(QueryNode("VP"), axis="//")
        assert root.child_axes == ["/", "//"]
        assert root.axis_to(np) == "/"
        assert root.axis_to(vp) == "//"
        assert np.parent is root and np.parent_axis == "/"

    def test_invalid_axis_rejected(self) -> None:
        with pytest.raises(ValueError):
            QueryNode("S").add_child(QueryNode("NP"), axis="///")

    def test_axis_to_non_child_rejected(self) -> None:
        with pytest.raises(ValueError):
            QueryNode("S").axis_to(QueryNode("NP"))

    def test_query_tree_assigns_preorder_ids(self) -> None:
        query = parse_query("S(NP(DT)(NN))(VP)")
        labels_by_id = [query.node(i).label for i in range(query.size())]
        assert labels_by_id == ["S", "NP", "DT", "NN", "VP"]

    def test_edges(self) -> None:
        query = parse_query("S(NP)(//VP(VBZ))")
        edges = [(p.label, c.label, axis) for p, c, axis in query.edges()]
        assert ("S", "NP", "/") in edges
        assert ("S", "VP", "//") in edges
        assert ("VP", "VBZ", "/") in edges
        assert query.has_descendant_axis()

    def test_path_between(self) -> None:
        query = parse_query("S(NP(//NN(x)))")
        s, np, nn, x = query.nodes()
        assert query.path_between(s, x) == ["/", "//", "/"]
        with pytest.raises(ValueError):
            query.path_between(x, s)

    def test_depth_of(self) -> None:
        query = parse_query("S(NP(DT))")
        assert query.depth_of(query.root) == 0
        assert query.depth_of(query.node(2)) == 2

    def test_copy_is_independent(self) -> None:
        query = parse_query("S(NP)(VP)")
        clone = query.copy()
        clone.root.label = "X"
        assert query.root.label == "S"
        assert clone.size() == query.size()

    def test_query_from_node(self) -> None:
        data = build_tree(("NP", [("DT", ["the"]), ("NN", ["dog"])]))
        query = query_from_tree(data)
        assert query.size() == 5
        assert all(axis == "/" for _, _, axis in query.edges())

    def test_has_duplicate_siblings(self) -> None:
        assert has_duplicate_siblings(parse_query("NP(NN)(NN)"))
        assert not has_duplicate_siblings(parse_query("NP(NN)(NNS)"))
        assert has_duplicate_siblings(parse_query("S(NP(DT)(NN))(NP(NN)(DT))"))
        assert not has_duplicate_siblings(parse_query("S(NP(DT))(NP(NN))"))


class TestParser:
    def test_bracket_form(self) -> None:
        query = parse_query("S(NP(NNS(agouti)))(VP)")
        assert query.labels() == ["S", "NP", "NNS", "agouti", "VP"]
        assert all(axis == "/" for _, _, axis in query.edges())

    def test_descendant_axis_in_brackets(self) -> None:
        query = parse_query("S(//NN)")
        (_, child, axis), = query.edges()
        assert child.label == "NN"
        assert axis == "//"

    def test_linear_path_form(self) -> None:
        query = parse_query("S/NP//NN")
        assert query.labels() == ["S", "NP", "NN"]
        assert [axis for _, _, axis in query.edges()] == ["/", "//"]

    def test_mixed_form(self) -> None:
        query = parse_query("VP(VBZ/is)(NP//NN)")
        assert query.labels() == ["VP", "VBZ", "is", "NP", "NN"]
        axes = {(p.label, c.label): axis for p, c, axis in query.edges()}
        assert axes[("VBZ", "is")] == "/"
        assert axes[("NP", "NN")] == "//"

    def test_whitespace_tolerated(self) -> None:
        query = parse_query("  S ( NP ( DT ) ) ( VP ) ")
        assert query.labels() == ["S", "NP", "DT", "VP"]

    def test_round_trip_via_to_string(self) -> None:
        text = "S(NP(DT)(NN))(//VP(VBZ))"
        query = parse_query(text)
        assert parse_query(query.to_string()).to_string() == query.to_string()

    @pytest.mark.parametrize("bad", ["", "(", "S(", "S(NP", "S(NP))", "S()", "/NP", "S(NP)x)"])
    def test_malformed_queries_rejected(self, bad: str) -> None:
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)
