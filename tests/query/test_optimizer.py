"""Tests for selectivity-aware cover selection (the future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.index import SubtreeIndex
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus
from repro.exec.executor import QueryExecutor
from repro.query.covers import is_root_split_cover, is_valid_cover
from repro.query.optimizer import (
    OptimizingExecutor,
    SelectivityCatalog,
    candidate_covers,
    choose_cover,
    estimate_cover_cost,
)
from repro.query.parser import parse_query

QUERIES = [
    "NP(DT)(NN)",
    "S(NP(DT))(VP(VBZ))",
    "VP(VBZ)(NP(DT)(JJ)(NN))",
    "S(NP)(VP(VBD(//NN)))",
    "PP(IN)(NP)",
]


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return Corpus(CorpusGenerator(seed=77).generate(70))


@pytest.fixture(scope="module")
def indexes(corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("opt")
    return {
        coding: SubtreeIndex.build(corpus, mss=3, coding=coding, path=str(directory / f"{coding}.si"))
        for coding in ("root-split", "subtree-interval")
    }


class TestSelectivityCatalog:
    def test_lengths_match_index(self, indexes) -> None:
        index = indexes["root-split"]
        catalog = SelectivityCatalog(index)
        assert catalog.posting_list_length(b"NP") == len(index.lookup(b"NP"))
        assert catalog.posting_list_length(b"ZZTOP") == 0

    def test_memoisation(self, indexes) -> None:
        catalog = SelectivityCatalog(indexes["root-split"])
        catalog.posting_list_length(b"NP")
        catalog.preload([b"VP", b"NN"])
        assert set(catalog.cached_keys()) >= {b"NP", b"VP", b"NN"}


class TestCoverSelection:
    def test_candidate_covers_respect_coding(self) -> None:
        query = parse_query("S(NP(DT))(VP)")
        root_split_candidates = candidate_covers(query, 3, root_split_only=True)
        general_candidates = candidate_covers(query, 3, root_split_only=False)
        assert {name for name, _ in root_split_candidates} == {"min-rc", "min-rc/no-pad"}
        assert len(general_candidates) == 4
        for _, cover in root_split_candidates:
            assert is_root_split_cover(cover)

    def test_all_candidates_valid(self, indexes) -> None:
        for text in QUERIES:
            query = parse_query(text)
            for _, cover in candidate_covers(query, 3, root_split_only=False):
                assert is_valid_cover(cover, 3)

    def test_cost_estimate_sums_posting_lists(self, indexes) -> None:
        index = indexes["root-split"]
        catalog = SelectivityCatalog(index)
        query = parse_query("NP(DT)(NN)")
        _, cover, cost = choose_cover(catalog, query, 3, root_split_only=True)
        assert cost == estimate_cover_cost(catalog, cover)
        assert cost == sum(
            catalog.posting_list_length(subtree.key_bytes()) for subtree in cover.subtrees
        )

    def test_chosen_cover_is_cheapest_candidate(self, indexes) -> None:
        catalog = SelectivityCatalog(indexes["root-split"])
        for text in QUERIES:
            query = parse_query(text)
            name, cover, cost = choose_cover(catalog, query, 3, root_split_only=True)
            all_costs = [
                estimate_cover_cost(catalog, candidate)
                for _, candidate in candidate_covers(query, 3, root_split_only=True)
            ]
            assert cost == min(all_costs)


class TestOptimizingExecutor:
    @pytest.mark.parametrize("coding", ["root-split", "subtree-interval"])
    def test_results_match_plain_executor(self, corpus, indexes, coding) -> None:
        plain = QueryExecutor(indexes[coding], store=corpus)
        optimizing = OptimizingExecutor(indexes[coding], store=corpus)
        for text in QUERIES:
            query = parse_query(text)
            assert (
                optimizing.execute(query).matches_per_tree
                == plain.execute(query).matches_per_tree
            ), text

    def test_records_chosen_strategy(self, corpus, indexes) -> None:
        executor = OptimizingExecutor(indexes["root-split"], store=corpus)
        executor.execute(parse_query("S(NP(DT))(VP(VBZ))"))
        assert executor.last_strategy in {"min-rc", "min-rc/no-pad"}
        assert executor.last_estimated_cost is not None and executor.last_estimated_cost >= 0

    def test_optimizer_never_costs_more_than_default_cover(self, indexes) -> None:
        index = indexes["root-split"]
        catalog = SelectivityCatalog(index)
        executor = OptimizingExecutor(index)
        for text in QUERIES:
            query = parse_query(text)
            chosen = executor.decompose(query)
            default = QueryExecutor(index).decompose(query)
            assert estimate_cover_cost(catalog, chosen) <= estimate_cover_cost(catalog, default)
