"""Unit tests for cover data structures and predicates."""

from __future__ import annotations

import pytest

from repro.query.covers import (
    Cover,
    has_deep_branching_anomaly,
    is_node_cover,
    is_root_split_cover,
    is_valid_cover,
    make_subtree,
)
from repro.query.parser import parse_query


class TestCoverSubtree:
    def test_key_of_simple_subtree(self) -> None:
        query = parse_query("NP(NN)(DT)")
        subtree = make_subtree(query.root, query.nodes())
        key, positions = subtree.key()
        assert key == b"NP(DT)(NN)"
        # Canonical order: NP, DT, NN -> positions follow the sorted children.
        assert positions[query.root.node_id] == 0
        assert positions[query.node(2).node_id] == 1  # DT
        assert positions[query.node(1).node_id] == 2  # NN

    def test_size_and_contains(self) -> None:
        query = parse_query("S(NP(DT))(VP)")
        subtree = make_subtree(query.root, [query.root, query.node(1)])
        assert subtree.size == 2
        assert subtree.contains(query.node(1))
        assert not subtree.contains(query.node(3))

    def test_disconnected_subtree_rejected(self) -> None:
        query = parse_query("S(NP(DT))(VP)")
        # S and DT without NP in between is not connected.
        subtree = make_subtree(query.root, [query.root, query.node(2)])
        with pytest.raises(ValueError):
            subtree.validate()

    def test_descendant_edge_not_part_of_key(self) -> None:
        query = parse_query("S(//NN)")
        subtree = make_subtree(query.root, query.nodes())
        with pytest.raises(ValueError):
            subtree.validate()

    def test_query_nodes_listing(self) -> None:
        query = parse_query("NP(DT)(NN)")
        subtree = make_subtree(query.root, query.nodes())
        assert {node.label for node in subtree.query_nodes()} == {"NP", "DT", "NN"}


class TestCoverPredicates:
    def test_node_cover_detection(self) -> None:
        query = parse_query("S(NP)(VP)")
        full = Cover(query, [make_subtree(query.root, query.nodes())])
        partial = Cover(query, [make_subtree(query.root, [query.root, query.node(1)])])
        assert is_node_cover(full)
        assert not is_node_cover(partial)

    def test_valid_cover_respects_mss(self) -> None:
        query = parse_query("S(NP)(VP)")
        cover = Cover(query, [make_subtree(query.root, query.nodes())])
        assert is_valid_cover(cover, mss=3)
        assert not is_valid_cover(cover, mss=2)

    def test_root_split_cover_same_root(self) -> None:
        query = parse_query("S(NP)(VP)")
        cover = Cover(
            query,
            [
                make_subtree(query.root, [query.root, query.node(1)]),
                make_subtree(query.root, [query.root, query.node(2)]),
            ],
        )
        assert is_root_split_cover(cover)

    def test_root_split_cover_parent_child_roots(self) -> None:
        query = parse_query("S(NP(DT)(NN))")
        cover = Cover(
            query,
            [
                make_subtree(query.root, [query.root, query.node(1)]),
                make_subtree(query.node(1), [query.node(1), query.node(2), query.node(3)]),
            ],
        )
        assert is_root_split_cover(cover)

    def test_non_root_split_cover(self) -> None:
        query = parse_query("S(NP(DT(the)))")
        # Roots S and DT are neither equal nor in a parent-child relation.
        cover = Cover(
            query,
            [
                make_subtree(query.root, [query.root, query.node(1)]),
                make_subtree(query.node(2), [query.node(2), query.node(3)]),
            ],
        )
        assert not is_root_split_cover(cover)

    def test_single_subtree_cover_is_root_split(self) -> None:
        query = parse_query("S(NP)(VP)")
        cover = Cover(query, [make_subtree(query.root, query.nodes())])
        assert is_root_split_cover(cover)

    def test_join_count(self) -> None:
        query = parse_query("S(NP)(VP)")
        cover = Cover(
            query,
            [
                make_subtree(query.root, [query.root, query.node(1)]),
                make_subtree(query.root, [query.root, query.node(2)]),
            ],
        )
        assert cover.join_count == 1
        assert Cover(query, []).join_count == 0


class TestDeepBranchingAnomaly:
    def test_figure5_anomaly(self) -> None:
        # Query A(B(C(D)(E)(F))), mss = 4, cover {A(B(C(D))), B(C(E)(F))}.
        query = parse_query("A(B(C(D)(E)(F)))")
        a, b, c, d, e, f = query.nodes()
        cover = Cover(
            query,
            [
                make_subtree(a, [a, b, c, d]),
                make_subtree(b, [b, c, e, f]),
            ],
        )
        assert has_deep_branching_anomaly(cover)

    def test_fixed_cover_has_no_anomaly(self) -> None:
        query = parse_query("A(B(C(D)(E)(F)))")
        a, b, c, d, e, f = query.nodes()
        cover = Cover(
            query,
            [
                make_subtree(a, [a, b, c, d]),
                make_subtree(b, [b, c, e, f]),
                make_subtree(c, [c, d, e, f]),
            ],
        )
        # The extra C(D)(E)(F) subtree does not remove the anomalous pair itself.
        assert has_deep_branching_anomaly(cover)
        safe = Cover(
            query,
            [
                make_subtree(a, [a, b]),
                make_subtree(b, [b, c]),
                make_subtree(c, [c, d, e, f]),
            ],
        )
        assert not has_deep_branching_anomaly(safe)

    def test_shared_root_is_not_anomalous(self) -> None:
        query = parse_query("NP(DT)(NN)(JJ)")
        np, dt, nn, jj = query.nodes()
        cover = Cover(query, [make_subtree(np, [np, dt]), make_subtree(np, [np, nn, jj])])
        assert not has_deep_branching_anomaly(cover)
