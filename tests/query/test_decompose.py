"""Unit and property tests for the decomposition algorithms."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.query.covers import (
    has_deep_branching_anomaly,
    is_root_split_cover,
    is_valid_cover,
)
from repro.query.decompose import (
    component_roots,
    component_size,
    decompose,
    min_rc,
    optimal_cover,
)
from repro.query.model import QueryNode, QueryTree
from repro.query.parser import parse_query

#: The query of Figure 1(a): S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN))).
FIGURE1_QUERY = "S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))"


class TestComponents:
    def test_single_component(self) -> None:
        query = parse_query("S(NP)(VP)")
        assert [node.label for node in component_roots(query)] == ["S"]
        assert component_size(query.root) == 3

    def test_descendant_edges_split_components(self) -> None:
        query = parse_query("S(NP(//NN))(VP)")
        roots = component_roots(query)
        assert [node.label for node in roots] == ["S", "NN"]
        assert component_size(query.root) == 3  # S, NP, VP


class TestOptimalCover:
    @pytest.mark.parametrize("mss", [1, 2, 3, 4, 5])
    def test_valid_for_all_mss(self, mss: int) -> None:
        query = parse_query(FIGURE1_QUERY)
        cover = optimal_cover(query, mss)
        assert is_valid_cover(cover, mss)

    def test_whole_query_fits_one_subtree(self) -> None:
        query = parse_query("NP(DT)(NN)")
        cover = optimal_cover(query, mss=3)
        assert len(cover) == 1
        assert cover.subtrees[0].key_bytes() == b"NP(DT)(NN)"

    def test_single_node_query(self) -> None:
        cover = optimal_cover(parse_query("NP"), mss=3)
        assert len(cover) == 1
        assert cover.subtrees[0].key_bytes() == b"NP"

    def test_mss_one_gives_one_subtree_per_node(self) -> None:
        query = parse_query(FIGURE1_QUERY)
        cover = optimal_cover(query, mss=1, pad=False)
        assert len(cover) == query.size()
        assert all(subtree.size == 1 for subtree in cover)

    def test_join_count_close_to_lower_bound(self) -> None:
        query = parse_query(FIGURE1_QUERY)  # 10 nodes
        for mss in (2, 3, 4, 5):
            cover = optimal_cover(query, mss, pad=False)
            lower_bound = math.ceil(query.size() / mss)
            assert lower_bound <= len(cover) <= lower_bound + 2

    def test_paper_example2_number_of_subtrees(self) -> None:
        """Example 2 finds a cover of 5 subtrees for the Figure 1 query at mss=3."""
        query = parse_query(FIGURE1_QUERY)
        cover = optimal_cover(query, mss=3)
        assert len(cover) <= 5

    def test_chain_query(self) -> None:
        query = parse_query("A(B(C(D(E(F)))))")
        cover = optimal_cover(query, mss=3, pad=False)
        assert is_valid_cover(cover, 3)
        assert len(cover) == 2

    def test_invalid_mss_rejected(self) -> None:
        with pytest.raises(ValueError):
            optimal_cover(parse_query("NP"), mss=0)


class TestMinRC:
    @pytest.mark.parametrize("mss", [1, 2, 3, 4, 5])
    def test_valid_root_split_for_all_mss(self, mss: int) -> None:
        query = parse_query(FIGURE1_QUERY)
        cover = min_rc(query, mss)
        assert is_valid_cover(cover, mss)
        assert is_root_split_cover(cover)
        assert not has_deep_branching_anomaly(cover)

    def test_paper_example3_cover_size(self) -> None:
        """Example 3: minRC also needs 5 subtrees for the Figure 1 query at mss=3."""
        query = parse_query(FIGURE1_QUERY)
        cover = min_rc(query, mss=3)
        assert 5 <= len(cover) <= 6

    def test_min_rc_never_smaller_than_optimal(self) -> None:
        query = parse_query(FIGURE1_QUERY)
        for mss in (2, 3, 4, 5):
            assert len(min_rc(query, mss)) >= len(optimal_cover(query, mss))

    def test_every_subtree_root_parent_is_a_root(self) -> None:
        """The structural property root-split joins rely on."""
        for text in [FIGURE1_QUERY, "A(B(C(D)(E)(F)))", "S(NP(DT)(NN))(VP(VBZ)(NP(NN)))"]:
            query = parse_query(text)
            for mss in (2, 3, 4):
                cover = min_rc(query, mss)
                root_ids = {subtree.root.node_id for subtree in cover}
                for subtree in cover:
                    parent = subtree.root.parent
                    assert parent is None or parent.node_id in root_ids

    def test_descendant_axis_parents_become_roots(self) -> None:
        query = parse_query("S(NP(NN(//JJ)))")
        cover = min_rc(query, mss=4)
        root_ids = {subtree.root.node_id for subtree in cover}
        nn = next(node for node in query.nodes() if node.label == "NN")
        jj = next(node for node in query.nodes() if node.label == "JJ")
        assert nn.node_id in root_ids
        assert jj.node_id in root_ids

    def test_figure5_query_avoids_anomaly(self) -> None:
        query = parse_query("A(B(C(D)(E)(F)))")
        cover = min_rc(query, mss=4)
        assert is_valid_cover(cover, 4)
        assert not has_deep_branching_anomaly(cover)
        assert is_root_split_cover(cover)


class TestDecomposeDispatch:
    def test_strategies(self) -> None:
        query = parse_query(FIGURE1_QUERY)
        assert len(decompose(query, 3, "optimal")) == len(optimal_cover(query, 3))
        assert len(decompose(query, 3, "min-rc")) == len(min_rc(query, 3))

    def test_unknown_strategy_rejected(self) -> None:
        with pytest.raises(ValueError):
            decompose(parse_query("NP"), 3, "magic")


# ----------------------------------------------------------------------
# Property tests over random queries.
# ----------------------------------------------------------------------
_LABELS = ["S", "NP", "VP", "PP", "DT", "NN", "VBZ", "JJ", "IN"]


@st.composite
def random_queries(draw, max_depth: int = 3) -> QueryTree:
    def build(depth: int) -> QueryNode:
        node = QueryNode(draw(st.sampled_from(_LABELS)))
        if depth >= max_depth:
            return node
        for _ in range(draw(st.integers(min_value=0, max_value=3 - depth))):
            axis = draw(st.sampled_from(["/", "/", "/", "//"]))
            node.add_child(build(depth + 1), axis)
        return node

    return QueryTree(build(0))


@settings(max_examples=60, deadline=None)
@given(query=random_queries(), mss=st.integers(min_value=1, max_value=5))
def test_optimal_cover_always_valid(query: QueryTree, mss: int) -> None:
    assert is_valid_cover(optimal_cover(query, mss), mss)


@settings(max_examples=60, deadline=None)
@given(query=random_queries(), mss=st.integers(min_value=1, max_value=5))
def test_min_rc_always_valid_root_split_and_anomaly_free(query: QueryTree, mss: int) -> None:
    cover = min_rc(query, mss)
    assert is_valid_cover(cover, mss)
    assert is_root_split_cover(cover)
    assert not has_deep_branching_anomaly(cover)


@settings(max_examples=60, deadline=None)
@given(query=random_queries(), mss=st.integers(min_value=2, max_value=5))
def test_optimal_cover_not_larger_than_min_rc(query: QueryTree, mss: int) -> None:
    assert len(optimal_cover(query, mss)) <= len(min_rc(query, mss))
