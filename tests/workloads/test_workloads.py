"""Tests for the WH and FB query workloads and the result binning helpers."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusGenerator
from repro.query.model import has_duplicate_siblings
from repro.workloads.binning import (
    MATCH_BINS,
    average,
    bin_for_match_count,
    group_by_match_bin,
    group_by_query_size,
)
from repro.workloads.fb import FREQUENCY_CLASSES, generate_fb_queries
from repro.workloads.wh import WH_GROUPS, generate_wh_queries, wh_queries_by_group


class TestWHQueries:
    def test_exactly_48_queries(self) -> None:
        queries = generate_wh_queries()
        assert len(queries) == 48

    def test_twelve_per_group(self) -> None:
        grouped = wh_queries_by_group()
        assert set(grouped) == set(WH_GROUPS)
        assert all(len(items) == 12 for items in grouped.values())

    def test_queries_parse_and_have_reasonable_sizes(self) -> None:
        for item in generate_wh_queries():
            assert 4 <= item.size <= 16
            assert item.query.root.label == "S"

    def test_templates_are_unique(self) -> None:
        texts = [item.text for item in generate_wh_queries()]
        assert len(texts) == len(set(texts))

    def test_no_lexical_leaves(self) -> None:
        """Lexical material is removed: every label is an upper-case tag."""
        for item in generate_wh_queries():
            for label in item.query.labels():
                assert label.upper() == label


class TestFBQueries:
    @pytest.fixture(scope="class")
    def query_set(self):
        indexed = CorpusGenerator(seed=5).generate_list(150)
        held_out = CorpusGenerator(seed=99).generate_list(60)
        return generate_fb_queries(indexed, held_out, max_size=8, per_class=8, seed=3)

    def test_classes_are_known(self, query_set) -> None:
        assert set(query_set.classes()) <= set(FREQUENCY_CLASSES)
        # The broad classes always have candidates in a generated corpus.
        assert {"H", "HM", "HML"} & set(query_set.classes())

    def test_by_class_and_size_accessors(self, query_set) -> None:
        for frequency_class in query_set.classes():
            assert query_set.by_class(frequency_class)
        sizes = {query.size for query in query_set}
        assert len(sizes) >= 3
        for size in sizes:
            assert all(item.size == size for item in query_set.by_size(size))

    def test_queries_have_no_duplicate_siblings(self, query_set) -> None:
        for item in query_set:
            assert not has_duplicate_siblings(item.query), item.text

    def test_queries_only_use_child_axis(self, query_set) -> None:
        for item in query_set:
            assert all(axis == "/" for _, _, axis in item.query.edges())

    def test_deterministic_for_seed(self) -> None:
        indexed = CorpusGenerator(seed=5).generate_list(60)
        held_out = CorpusGenerator(seed=99).generate_list(30)
        first = generate_fb_queries(indexed, held_out, seed=3)
        second = generate_fb_queries(indexed, held_out, seed=3)
        assert [item.text for item in first] == [item.text for item in second]


class TestBinning:
    @pytest.mark.parametrize(
        "count, expected",
        [(0, "<10"), (9, "<10"), (10, "10-100"), (99, "10-100"), (100, "100-1k"),
         (999, "100-1k"), (1_000, "1k-10k"), (9_999, "1k-10k"), (10_000, ">10k"), (10**7, ">10k")],
    )
    def test_bin_for_match_count(self, count: int, expected: str) -> None:
        assert bin_for_match_count(count) == expected

    def test_negative_count_rejected(self) -> None:
        with pytest.raises(ValueError):
            bin_for_match_count(-1)

    def test_bins_cover_all_counts(self) -> None:
        labels = [label for label, _, _ in MATCH_BINS]
        assert len(labels) == 5
        assert labels[0] == "<10" and labels[-1] == ">10k"

    def test_group_by_match_bin(self) -> None:
        grouped = group_by_match_bin([(5, 0.1), (50, 0.2), (55, 0.3), (20_000, 0.4)])
        assert grouped["<10"] == [0.1]
        assert grouped["10-100"] == [0.2, 0.3]
        assert grouped[">10k"] == [0.4]

    def test_group_by_query_size_filters_low_match_queries(self) -> None:
        entries = [(3, 500, 0.1), (3, 5, 0.9), (7, 200, 0.3)]
        grouped = group_by_query_size(entries, min_matches=100)
        assert grouped == {3: [0.1], 7: [0.3]}

    def test_average(self) -> None:
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0
