"""Unit tests for the tid -> shard partitioning policies."""

from __future__ import annotations

import pytest

from repro.shard.partitioner import (
    HashPartitioner,
    RoundRobinPartitioner,
    get_partitioner,
    partitioner_names,
)


class TestRoundRobin:
    def test_deals_in_arrival_order(self) -> None:
        partitioner = RoundRobinPartitioner(3)
        assigned = [partitioner.assign(tid) for tid in (10, 99, 5, 7, 0, 42)]
        assert assigned == [0, 1, 2, 0, 1, 2]

    def test_balances_any_tid_distribution(self) -> None:
        partitioner = RoundRobinPartitioner(4)
        counts = [0, 0, 0, 0]
        for tid in range(0, 1000, 7):  # deliberately gappy tids
            counts[partitioner.assign(tid)] += 1
        assert max(counts) - min(counts) <= 1

    def test_locate_is_unknown(self) -> None:
        partitioner = RoundRobinPartitioner(3)
        partitioner.assign(5)
        assert partitioner.locate(5) is None


class TestHash:
    def test_assign_is_deterministic_and_in_range(self) -> None:
        first = HashPartitioner(4)
        second = HashPartitioner(4)
        for tid in range(200):
            shard = first.assign(tid)
            assert 0 <= shard < 4
            assert second.assign(tid) == shard

    def test_locate_matches_assign(self) -> None:
        partitioner = HashPartitioner(8)
        assert all(partitioner.locate(tid) == partitioner.assign(tid) for tid in range(100))

    def test_spreads_sequential_tids(self) -> None:
        partitioner = HashPartitioner(4)
        counts = [0, 0, 0, 0]
        for tid in range(400):
            counts[partitioner.assign(tid)] += 1
        assert min(counts) > 0  # no empty shard on a sequential corpus


class TestRegistry:
    def test_names(self) -> None:
        assert partitioner_names() == ["hash", "round-robin"]

    @pytest.mark.parametrize("name", ["hash", "round-robin"])
    def test_get(self, name) -> None:
        partitioner = get_partitioner(name, 5)
        assert partitioner.name == name
        assert partitioner.shard_count == 5

    def test_unknown_name(self) -> None:
        with pytest.raises(ValueError, match="unknown partitioner"):
            get_partitioner("alphabetical", 2)

    def test_bad_shard_count(self) -> None:
        with pytest.raises(ValueError, match="shard count"):
            get_partitioner("hash", 0)
