"""Integration tests for the sharded index, fan-out execution and service.

The heart of this module is the merge-correctness property: for every
workload query (the full WH set plus a generated FB set) and every coding
scheme, a 4-shard index must return *byte-identical, tid-ordered* results
to a single monolithic index over the same corpus -- through the fan-out
executor, the merged-lookup compatibility path, and the sharded service.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.index import SubtreeIndex
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import TreeStore, data_file_path
from repro.exec.executor import QueryExecutor, QueryResult
from repro.exec.fanout import FanoutExecutor, merge_shard_results
from repro.query.parser import parse_query
from repro.service.cache import LRUCache
from repro.service.service import QueryService
from repro.service.sharded import ShardedQueryService
from repro.shard import ShardedIndex, ShardError
from repro.workloads.fb import generate_fb_queries
from repro.workloads.wh import generate_wh_queries

CODINGS = ("filter", "root-split", "subtree-interval")
MSS = 3
SHARDS = 4


# ----------------------------------------------------------------------
# Shared fixtures: one single + one sharded index per coding
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("sharded")


@pytest.fixture(scope="module")
def indexes(workdir, small_corpus):
    """``coding -> (single index, single store, sharded index)`` triples."""
    built = {}
    for coding in CODINGS:
        single_path = str(workdir / f"single-{coding}.si")
        single = SubtreeIndex.build(small_corpus, mss=MSS, coding=coding, path=single_path)
        store = TreeStore.build(data_file_path(single_path), small_corpus)
        sharded = ShardedIndex.build(
            small_corpus,
            mss=MSS,
            coding=coding,
            path=str(workdir / f"sharded-{coding}.si"),
            shards=SHARDS,
            workers=1,
        )
        built[coding] = (single, store, sharded)
    yield built
    for single, store, sharded in built.values():
        single.close()
        store.close()
        sharded.close()


@pytest.fixture(scope="module")
def workload(small_corpus):
    """Every workload query: the 48 WH queries plus a generated FB set."""
    queries = [item.query for item in generate_wh_queries()]
    held_out = CorpusGenerator(seed=101).generate_list(30)
    fb = generate_fb_queries(
        indexed_trees=list(small_corpus),
        held_out_trees=held_out,
        max_size=6,
        seed=7,
    )
    queries.extend(item.query for item in fb)
    assert len(queries) > 60
    return queries


def assert_identical_and_tid_ordered(sharded_result, single_result) -> None:
    """Byte-identical matches, with the sharded dict in ascending tid order."""
    assert json.dumps(sharded_result.matches_per_tree, sort_keys=True) == json.dumps(
        single_result.matches_per_tree, sort_keys=True
    )
    tids = list(sharded_result.matches_per_tree)
    assert tids == sorted(tids)
    assert sharded_result.matched_tids == single_result.matched_tids


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
class TestBuild:
    def test_manifest_and_shard_files_exist(self, indexes, workdir) -> None:
        sharded = indexes["root-split"][2]
        assert os.path.isfile(sharded.manifest_path)
        for shard in sharded.shards:
            assert os.path.isfile(os.path.join(str(workdir), shard.entry.index_path))
            assert shard.store is not None

    def test_every_tree_lands_in_exactly_one_shard(self, indexes, small_corpus) -> None:
        sharded = indexes["root-split"][2]
        per_shard = [set(shard.store.tids()) for shard in sharded.shards]
        union = set().union(*per_shard)
        assert union == set(small_corpus.tids())
        assert sum(len(tids) for tids in per_shard) == len(small_corpus)

    def test_counters_sum_over_shards(self, indexes) -> None:
        sharded = indexes["root-split"][2]
        manifest = sharded.manifest
        assert manifest.tree_count == sum(e.tree_count for e in manifest.shards)
        assert sharded.posting_count == sum(e.posting_count for e in manifest.shards)
        assert sharded.mss == MSS

    def test_round_robin_partitioner(self, tmp_path, tiny_corpus) -> None:
        sharded = ShardedIndex.build(
            tiny_corpus,
            mss=2,
            coding="root-split",
            path=str(tmp_path / "rr.si"),
            shards=3,
            workers=1,
            partitioner="round-robin",
        )
        sizes = [len(shard.store) for shard in sharded.shards]
        assert max(sizes) - min(sizes) <= 1  # perfectly balanced
        assert sharded.locate(0) is None  # positional policy: not derivable
        assert 0 in sharded.store  # membership probing still routes
        sharded.close()

    def test_process_pool_build_matches_inline(self, tmp_path, tiny_corpus) -> None:
        inline = ShardedIndex.build(
            tiny_corpus, mss=2, coding="root-split",
            path=str(tmp_path / "inline.si"), shards=2, workers=1,
        )
        pooled = ShardedIndex.build(
            tiny_corpus, mss=2, coding="root-split",
            path=str(tmp_path / "pooled.si"), shards=2, workers=2,
        )
        for one, two in zip(inline.manifest.shards, pooled.manifest.shards):
            assert (one.tree_count, one.key_count, one.posting_count) == (
                two.tree_count, two.key_count, two.posting_count
            )
        query = parse_query("NP(DT)(NN)")
        with FanoutExecutor(inline) as a, FanoutExecutor(pooled) as b:
            assert a.execute(query).matches_per_tree == b.execute(query).matches_per_tree
        inline.close()
        pooled.close()


# ----------------------------------------------------------------------
# The merged SubtreeIndex-compatible surface
# ----------------------------------------------------------------------
class TestMergedLookup:
    def test_lookup_equals_single_index(self, indexes) -> None:
        single, _, sharded = indexes["root-split"]
        for key, postings in list(single.items())[:50]:
            merged = sharded.lookup(key)
            assert [p.tid for p in merged] == [p.tid for p in postings]

    def test_lookup_is_tid_sorted_and_absent_key_is_empty(self, indexes) -> None:
        _, _, sharded = indexes["root-split"]
        tids = [p.tid for p in sharded.lookup("NP(DT)")]
        assert tids == sorted(tids)
        assert sharded.lookup("ZZZTOP") == []
        assert not sharded.has_key("ZZZTOP")
        assert sharded.has_key("NP(DT)")

    def test_items_and_keys_match_single_index(self, indexes) -> None:
        single, _, sharded = indexes["root-split"]
        single_items = [(key, [p.tid for p in postings]) for key, postings in single.items()]
        sharded_items = [(key, [p.tid for p in postings]) for key, postings in sharded.items()]
        assert sharded_items == single_items
        assert [k.encode() for k in sharded.keys()] == [key for key, _ in single_items]

    def test_postings_cache_read_through(self, indexes) -> None:
        _, _, sharded = indexes["subtree-interval"]
        sharded.reset_probe_stats()
        cache = LRUCache(16)
        sharded.attach_postings_cache(cache)
        try:
            first = sharded.lookup("NP(DT)")
            second = sharded.lookup("NP(DT)")
            assert first is second  # served from the merged-posting cache
            assert sharded.probe_stats.gets == 2
            assert sharded.probe_stats.cache_hits == 1
            assert sharded.probe_stats.tree_descents == 1
        finally:
            sharded.attach_postings_cache(None)

    def test_open_dispatches_from_subtree_index(self, indexes) -> None:
        sharded = indexes["root-split"][2]
        reopened = SubtreeIndex.open(sharded.manifest_path)
        try:
            assert isinstance(reopened, ShardedIndex)
            assert reopened.shard_count == SHARDS
        finally:
            reopened.close()


# ----------------------------------------------------------------------
# Merge correctness over the full workload (the acceptance property)
# ----------------------------------------------------------------------
class TestMergeCorrectness:
    @pytest.mark.parametrize("coding", CODINGS)
    def test_fanout_matches_single_index_on_every_workload_query(
        self, indexes, workload, coding
    ) -> None:
        single, store, sharded = indexes[coding]
        reference = QueryExecutor(single, store=store)
        with FanoutExecutor(sharded) as fanout:
            for query in workload:
                assert_identical_and_tid_ordered(
                    fanout.execute(query), reference.execute(query)
                )

    @pytest.mark.parametrize("coding", CODINGS)
    def test_merged_lookup_path_matches_single_index(self, indexes, workload, coding) -> None:
        single, store, sharded = indexes[coding]
        reference = QueryExecutor(single, store=store)
        transparent = QueryExecutor(sharded, store=sharded.store)
        for query in workload[::5]:  # the cheaper invariant: sample the workload
            assert_identical_and_tid_ordered(
                transparent.execute(query), reference.execute(query)
            )

    def test_merge_shard_results_orders_by_tid(self) -> None:
        merged = merge_shard_results(
            [
                QueryResult(matches_per_tree={7: 1, 19: 2}),
                QueryResult(matches_per_tree={2: 3}),
                QueryResult(matches_per_tree={}),
                QueryResult(matches_per_tree={11: 1}),
            ]
        )
        assert list(merged.matches_per_tree.items()) == [(2, 3), (7, 1), (11, 1), (19, 2)]


# ----------------------------------------------------------------------
# The sharded service
# ----------------------------------------------------------------------
class TestShardedService:
    def test_run_matches_unsharded_service(self, indexes, workload) -> None:
        single, store, sharded = indexes["root-split"]
        plain = QueryService(single, store=store)
        service = ShardedQueryService(sharded)
        try:
            for query in workload[:20]:
                assert_identical_and_tid_ordered(service.run(query), plain.run(query))
        finally:
            # Neither service owns its index (constructed, not opened), so
            # close() only detaches caches and shuts the fan-out pool down.
            service.close()
            plain.close()

    def test_result_cache_and_per_shard_probe_counters(self, indexes) -> None:
        sharded = indexes["root-split"][2]
        sharded.reset_probe_stats()
        service = ShardedQueryService(sharded)
        try:
            first = service.run("NP(DT)(NN)")
            again = service.run("NP ( DT ) ( NN )")  # normalises to the same plan
            assert again is first  # served whole from the result cache
            stats = service.stats()
            assert len(stats.per_shard) == SHARDS
            # One cover key fetched once per shard; the repeat hit the
            # result cache, so no extra probes anywhere.
            assert stats.probes.gets == SHARDS
            assert stats.results.hits == 1
        finally:
            service.close()

    def test_run_many_fetches_each_key_once_per_shard(self, indexes) -> None:
        sharded = indexes["subtree-interval"][2]
        sharded.reset_probe_stats()
        service = ShardedQueryService(sharded, result_cache_size=0)
        try:
            queries = ["NP(DT)(NN)", "NP(DT)(NN)", "NP(DT)"]
            results = service.run_many(queries)
            assert results[0].matches_per_tree == results[1].matches_per_tree
            distinct_keys = {
                key
                for text in queries
                for key in service.prepare(text).key_bytes
            }
            stats = service.stats()
            assert stats.probes.gets == len(distinct_keys) * SHARDS
            assert stats.batch_keys_deduped > 0
        finally:
            service.close()

    def test_concurrent_filter_coding_run_is_safe(self, indexes, workload) -> None:
        """Threaded run() with filter coding: the filtering phase hits each
        shard's on-disk TreeStore from many threads at once, which must not
        interleave reads on the shared file handle (regression test)."""
        from concurrent.futures import ThreadPoolExecutor

        single, store, sharded = indexes["filter"]
        reference = QueryExecutor(single, store=store)
        queries = workload[:12]
        expected = [reference.execute(query).matches_per_tree for query in queries]
        service = ShardedQueryService(sharded, result_cache_size=0)
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                for _ in range(3):  # repeat so threads genuinely overlap
                    observed = list(pool.map(service.run, queries))
                    assert [r.matches_per_tree for r in observed] == expected
        finally:
            service.close()

    def test_query_service_open_dispatches(self, indexes) -> None:
        manifest_path = indexes["root-split"][2].manifest_path
        service = QueryService.open(manifest_path)
        try:
            assert isinstance(service, ShardedQueryService)
            result = service.run("NP(DT)(NN)")
            assert result.total_matches > 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# Failure modes: every error names the offending shard
# ----------------------------------------------------------------------
class TestShardErrors:
    @pytest.fixture()
    def built(self, tmp_path, tiny_corpus):
        manifest_path = ShardedIndex.build(
            tiny_corpus, mss=2, coding="root-split",
            path=str(tmp_path / "err.si"), shards=3, workers=1,
        ).manifest_path
        return tmp_path, manifest_path

    def test_missing_shard_file(self, built) -> None:
        tmp_path, manifest_path = built
        os.remove(tmp_path / "err.si.shard01")
        with pytest.raises(ShardError, match=r"shard 1 of 3 is missing"):
            ShardedIndex.open(manifest_path)

    def test_corrupted_shard_file(self, built) -> None:
        tmp_path, manifest_path = built
        (tmp_path / "err.si.shard02").write_bytes(b"this is not a B+Tree")
        with pytest.raises(ShardError, match=r"shard 2 of 3 is unreadable"):
            ShardedIndex.open(manifest_path)

    def test_shard_with_mismatched_parameters(self, built, tiny_corpus) -> None:
        tmp_path, manifest_path = built
        shard_path = str(tmp_path / "err.si.shard00")
        os.remove(shard_path)
        rebuilt = SubtreeIndex.build(tiny_corpus, mss=1, coding="root-split", path=shard_path)
        rebuilt.close()
        with pytest.raises(ShardError, match=r"shard 0 .* mss=1"):
            ShardedIndex.open(manifest_path)
