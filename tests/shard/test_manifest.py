"""Unit tests for the sharded-index manifest format and sniffing."""

from __future__ import annotations

import json

import pytest

from repro.shard.manifest import (
    MANIFEST_SUFFIX,
    ShardEntry,
    ShardError,
    ShardManifest,
    is_manifest,
    shard_file_paths,
)


def sample_manifest() -> ShardManifest:
    return ShardManifest(
        mss=3,
        coding="root-split",
        partitioner="hash",
        shard_count=2,
        tree_count=10,
        build_wall_seconds=0.5,
        shards=[
            ShardEntry(0, "c.si.shard00", "c.si.shard00.data", 6, 100, 500, 0.2),
            ShardEntry(1, "c.si.shard01", "c.si.shard01.data", 4, 80, 400, 0.3),
        ],
    )


class TestRoundTrip:
    def test_save_and_load(self, tmp_path) -> None:
        path = str(tmp_path / ("c.si" + MANIFEST_SUFFIX))
        sample_manifest().save(path)
        loaded = ShardManifest.load(path)
        assert loaded == sample_manifest()

    def test_paths_resolve_against_manifest_directory(self, tmp_path) -> None:
        nested = tmp_path / "deep" / "dir"
        nested.mkdir(parents=True)
        path = str(nested / "c.si.manifest.json")
        manifest = sample_manifest()
        manifest.save(path)
        resolved = manifest.resolve(path, manifest.shards[0].index_path)
        assert resolved == str(nested / "c.si.shard00")


class TestValidation:
    def test_load_missing_file(self, tmp_path) -> None:
        with pytest.raises(ShardError, match="cannot read"):
            ShardManifest.load(str(tmp_path / "nope.manifest.json"))

    def test_load_non_manifest_json(self, tmp_path) -> None:
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ShardError, match="not a sharded-index manifest"):
            ShardManifest.load(str(path))

    def test_load_wrong_version(self, tmp_path) -> None:
        path = tmp_path / "c.manifest.json"
        payload = json.loads(sample_manifest().to_json())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="version"):
            ShardManifest.load(str(path))

    def test_load_shard_count_mismatch(self, tmp_path) -> None:
        path = tmp_path / "c.manifest.json"
        payload = json.loads(sample_manifest().to_json())
        payload["shards"] = payload["shards"][:1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="declares 2 shards"):
            ShardManifest.load(str(path))


class TestSniffing:
    def test_detects_by_content_not_name(self, tmp_path) -> None:
        oddly_named = str(tmp_path / "corpus.si")
        sample_manifest().save(oddly_named)
        assert is_manifest(oddly_named)

    def test_rejects_other_files(self, tmp_path) -> None:
        impostor = tmp_path / "x.manifest.json"
        impostor.write_text(json.dumps({"format": "not-an-index"}))
        assert not is_manifest(str(impostor))
        binary = tmp_path / "tree.bpt"
        binary.write_bytes(b"\x00" * 64)
        assert not is_manifest(str(binary))
        assert not is_manifest(str(tmp_path / "missing"))
        assert not is_manifest(str(tmp_path))  # a directory


class TestNaming:
    def test_shard_file_paths(self) -> None:
        index_name, data_name = shard_file_paths("/some/dir/c.si.manifest.json", 3)
        assert index_name == "c.si.shard03"
        assert data_name == "c.si.shard03.data"

    def test_shard_file_paths_without_suffix(self) -> None:
        index_name, _ = shard_file_paths("c.si", 0)
        assert index_name == "c.si.shard00"
