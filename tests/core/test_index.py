"""Unit and integration tests for the SubtreeIndex."""

from __future__ import annotations

import pytest

from repro.coding import RootPosting
from repro.core.index import IndexMetadata, SubtreeIndex
from repro.core.stats import IndexStats, count_postings, count_unique_keys
from repro.corpus.store import Corpus
from repro.trees.node import ParseTree, build_tree


@pytest.fixture()
def mini_corpus() -> Corpus:
    trees = [
        ParseTree(build_tree(("S", [("NP", ["DT", "NN"]), ("VP", ["VBZ"])])), tid=0),
        ParseTree(build_tree(("S", [("NP", ["NN"]), ("VP", ["VBZ", ("NP", ["DT", "NN"])])])), tid=1),
        ParseTree(build_tree(("NP", ["DT", "JJ", "NN"])), tid=2),
    ]
    return Corpus(trees)


class TestBuildAndOpen:
    @pytest.mark.parametrize("coding", ["filter", "root-split", "subtree-interval"])
    def test_build_and_reopen(self, tmp_path, mini_corpus: Corpus, coding: str) -> None:
        path = str(tmp_path / f"{coding}.si")
        index = SubtreeIndex.build(mini_corpus, mss=3, coding=coding, path=path)
        assert index.metadata.tree_count == 3
        assert index.key_count > 0
        index.close()

        reopened = SubtreeIndex.open(path)
        assert reopened.metadata.mss == 3
        assert reopened.metadata.coding == coding
        assert reopened.key_count == index.key_count
        reopened.close()

    def test_open_non_index_rejected(self, tmp_path) -> None:
        from repro.storage.bptree import BPlusTree

        path = str(tmp_path / "plain.bpt")
        tree = BPlusTree(path)
        tree.insert(b"key", b"value")
        tree.close()
        with pytest.raises(ValueError):
            SubtreeIndex.open(path)

    def test_metadata_round_trip(self) -> None:
        metadata = IndexMetadata(3, "root-split", 10, 100, 500, 1.5)
        assert IndexMetadata.from_json(metadata.to_json()) == metadata


class TestLookup:
    def test_single_node_key(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=2, coding="root-split", path=str(tmp_path / "i.si"))
        postings = index.lookup(b"NP")
        assert {posting.tid for posting in postings} == {0, 1, 2}
        assert all(isinstance(posting, RootPosting) for posting in postings)

    def test_structured_key(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=3, coding="filter", path=str(tmp_path / "i.si"))
        postings = index.lookup(b"NP(DT)(NN)")
        assert [posting.tid for posting in postings] == [0, 1, 2]

    def test_lookup_accepts_node_and_string(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=3, coding="filter", path=str(tmp_path / "i.si"))
        node_key = build_tree(("NP", ["NN", "DT"]))  # unordered: canonicalises to NP(DT)(NN)
        assert index.lookup(node_key) == index.lookup("NP(DT)(NN)") == index.lookup(b"NP(DT)(NN)")

    def test_missing_key_gives_empty_list(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=2, coding="root-split", path=str(tmp_path / "i.si"))
        assert index.lookup(b"QP(CD)") == []
        assert not index.has_key(b"QP(CD)")

    def test_posting_lists_sorted_by_tid(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=3, coding="subtree-interval", path=str(tmp_path / "i.si"))
        for _, postings in index.items():
            tids = [posting.tid for posting in postings]
            assert tids == sorted(tids)

    def test_keys_larger_than_mss_not_indexed(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=2, coding="filter", path=str(tmp_path / "i.si"))
        for key in index.keys():
            assert key.size <= 2


class TestCounts:
    def test_posting_count_matches_metadata(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=3, coding="root-split", path=str(tmp_path / "i.si"))
        actual = sum(len(postings) for _, postings in index.items())
        assert actual == index.posting_count

    def test_key_count_matches_iteration(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=3, coding="filter", path=str(tmp_path / "i.si"))
        assert sum(1 for _ in index.keys()) == index.key_count

    def test_stats_of(self, tmp_path, mini_corpus: Corpus) -> None:
        index = SubtreeIndex.build(mini_corpus, mss=2, coding="filter", path=str(tmp_path / "i.si"))
        stats = IndexStats.of(index)
        assert stats.size_bytes == index.size_bytes()
        assert stats.key_count == index.key_count
        assert stats.coding == "filter"

    def test_count_unique_keys_monotone_in_mss(self, mini_corpus: Corpus) -> None:
        counts = count_unique_keys(mini_corpus, [1, 2, 3, 4])
        assert counts[1] <= counts[2] <= counts[3] <= counts[4]

    def test_count_postings_ordering(self, mini_corpus: Corpus) -> None:
        totals = count_postings(mini_corpus, mss=3, coding_names=["filter", "root-split", "subtree-interval"])
        # Filter-based has the fewest postings, subtree interval the most.
        assert totals["filter"] <= totals["root-split"] <= totals["subtree-interval"]


class TestCrossCodingInvariants:
    def test_same_keys_for_all_codings(self, tmp_path, mini_corpus: Corpus) -> None:
        paths = {name: str(tmp_path / f"{name}.si") for name in ["filter", "root-split", "subtree-interval"]}
        indexes = {
            name: SubtreeIndex.build(mini_corpus, mss=3, coding=name, path=path)
            for name, path in paths.items()
        }
        key_sets = {name: {str(key) for key in index.keys()} for name, index in indexes.items()}
        assert key_sets["filter"] == key_sets["root-split"] == key_sets["subtree-interval"]

    def test_index_size_ordering(self, tmp_path, small_corpus) -> None:
        """Figure 8's qualitative claim: filter < root-split < subtree interval."""
        trees = list(small_corpus)[:60]
        sizes = {}
        for name in ["filter", "root-split", "subtree-interval"]:
            index = SubtreeIndex.build(trees, mss=3, coding=name, path=str(tmp_path / f"{name}.si"))
            sizes[name] = index.size_bytes()
            index.close()
        assert sizes["filter"] <= sizes["root-split"] <= sizes["subtree-interval"]
