"""Unit tests for subtree enumeration (index key extraction)."""

from __future__ import annotations

from collections import Counter
from math import comb

import pytest

from repro.core.enumeration import (
    count_subtrees_per_node,
    enumerate_key_occurrences,
    enumerate_subtrees,
    subtree_count_by_root_branching,
)
from repro.trees.node import ParseTree, build_tree


def _keys(tree: ParseTree, mss: int) -> Counter:
    return Counter(key for key, _ in enumerate_key_occurrences(tree, mss))


class TestEnumerateSubtrees:
    def test_mss_one_yields_every_node(self, figure4_tree: ParseTree) -> None:
        subtrees = list(enumerate_subtrees(figure4_tree, 1))
        assert len(subtrees) == figure4_tree.size()
        assert all(subtree.size == 1 for subtree in subtrees)

    def test_size_two_subtrees_are_edges(self, figure4_tree: ParseTree) -> None:
        subtrees = [s for s in enumerate_subtrees(figure4_tree, 2) if s.size == 2]
        # One subtree of size 2 per edge of the tree.
        assert len(subtrees) == figure4_tree.size() - 1

    def test_invalid_mss_rejected(self, figure4_tree: ParseTree) -> None:
        with pytest.raises(ValueError):
            list(enumerate_subtrees(figure4_tree, 0))

    def test_unique_keys_of_size_two(self, figure4_tree: ParseTree) -> None:
        # Tree A(B)(C(A(C)(D))): edges A-B, A-C, C-A, A-C (inner), A-D.
        size_two = {key for key, occ in enumerate_key_occurrences(figure4_tree, 2) if occ.size == 2}
        assert size_two == {b"A(B)", b"A(C)", b"C(A)", b"A(D)"}

    def test_star_tree_counts_match_binomial(self) -> None:
        # Root with n-1 leaf children has C(n-1, m-1) subtrees of size m.
        tree = ParseTree(build_tree(("R", [f"L{i}" for i in range(6)])), tid=0)
        for size in range(2, 5):
            count = sum(1 for s in enumerate_subtrees(tree, size) if s.size == size)
            assert count == comb(6, size - 1)

    def test_chain_tree_counts(self) -> None:
        # A unary chain of height n has n - m + 1 subtrees of size m.
        tree = ParseTree(build_tree(("A", [("B", [("C", [("D", [("E", [])])])])])), tid=0)
        for size in range(1, 6):
            count = sum(1 for s in enumerate_subtrees(tree, 5) if s.size == size)
            assert count == 5 - size + 1

    def test_all_subtrees_are_connected_and_rooted(self, paper_tree: ParseTree) -> None:
        for subtree in enumerate_subtrees(paper_tree, 3):
            # Every child of an occurrence node is a child of the data node.
            stack = [subtree]
            while stack:
                item = stack.pop()
                for child in item.children:
                    assert child.node in item.node.children
                    stack.append(child)


class TestKeyOccurrences:
    def test_occurrence_codes_are_canonically_ordered(self, paper_tree: ParseTree) -> None:
        from repro.core.keys import decode_key

        for key, occurrence in enumerate_key_occurrences(paper_tree, 3):
            assert occurrence.size == decode_key(key).size
            # The root is canonical position 0 and is the shallowest node.
            assert occurrence.root.level == min(code.level for code in occurrence.codes)
            # The root contains every other node of the occurrence.
            for code in occurrence.codes[1:]:
                assert occurrence.root.is_ancestor_of(code)

    def test_occurrences_carry_tid(self, paper_tree: ParseTree) -> None:
        for _, occurrence in enumerate_key_occurrences(paper_tree, 2):
            assert occurrence.tid == paper_tree.tid

    def test_symmetric_instances_share_key(self) -> None:
        tree = ParseTree(build_tree(("A", [("B", []), ("C", []), ("B", [])])), tid=0)
        keys = _keys(tree, 2)
        assert keys[b"A(B)"] == 2
        assert keys[b"A(C)"] == 1


class TestFigure3Statistics:
    def test_branching_factor_drives_subtree_count(self, small_corpus) -> None:
        averages = subtree_count_by_root_branching(list(small_corpus)[:40], sizes=(2, 3))
        # Nodes with larger branching factors root more subtrees on average.
        if 1 in averages and 3 in averages:
            assert averages[3][3] >= averages[1][3]

    def test_count_subtrees_per_node_star(self) -> None:
        tree = ParseTree(build_tree(("R", [f"L{i}" for i in range(5)])), tid=0)
        counts = count_subtrees_per_node(tree, sizes=(2, 3))
        assert counts[5][2] == comb(5, 1)
        assert counts[5][3] == comb(5, 2)
