"""Unit and property tests for canonical key encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.keys import (
    KeyFormatError,
    canonical_key,
    decode_key,
    key_from_node,
)
from repro.trees.node import Node, build_tree


class TestCanonicalKey:
    def test_leaf(self) -> None:
        key, ordered = canonical_key(Node("NN"))
        assert key == b"NN"
        assert len(ordered) == 1

    def test_children_sorted(self) -> None:
        key_ab, _ = canonical_key(build_tree(("A", ["C", "B"])))
        key_ba, _ = canonical_key(build_tree(("A", ["B", "C"])))
        assert key_ab == key_ba == b"A(B)(C)"

    def test_symmetric_subtrees_share_key(self) -> None:
        # The paper: postings of A(B)(C) and A(C)(B) live under the same key.
        left = build_tree(("A", [("C", ["D"]), ("B", [])]))
        right = build_tree(("A", [("B", []), ("C", ["D"])]))
        assert canonical_key(left)[0] == canonical_key(right)[0]

    def test_deep_sorting(self) -> None:
        tree = build_tree(("A", [("B", ["Z"]), ("B", ["A"])]))
        key, _ = canonical_key(tree)
        assert key == b"A(B(A))(B(Z))"

    def test_canonical_order_starts_at_root(self) -> None:
        tree = build_tree(("A", ["C", "B"]))
        _, ordered = canonical_key(tree)
        assert ordered[0] is tree
        assert [node.label for node in ordered] == ["A", "B", "C"]


class TestSubtreeKey:
    def test_decode_simple(self) -> None:
        key = decode_key(b"NP(DT)(NN)")
        assert key.label == "NP"
        assert [child.label for child in key.children] == ["DT", "NN"]
        assert key.size == 3

    def test_decode_nested(self) -> None:
        key = decode_key("S(NP(NNS))(VP)")
        assert key.size == 4
        assert key.labels() == ["S", "NP", "NNS", "VP"]

    def test_encode_round_trip(self) -> None:
        original = b"S(NP(DT)(NN))(VP(VBZ))"
        assert decode_key(original).encode() == original

    def test_to_node(self) -> None:
        node = decode_key(b"NP(DT)(NN)").to_node()
        assert node.label == "NP"
        assert node.size() == 3

    @pytest.mark.parametrize("bad", [b"", b"(", b"A(", b"A(B", b"A()", b"A(B))", b"A)B"])
    def test_malformed_keys_rejected(self, bad: bytes) -> None:
        with pytest.raises(KeyFormatError):
            decode_key(bad)

    def test_key_from_node_matches_canonical_key(self) -> None:
        tree = build_tree(("S", [("VP", ["VBZ"]), ("NP", ["DT", "NN"])]))
        assert key_from_node(tree).encode() == canonical_key(tree)[0]


# ----------------------------------------------------------------------
# Property tests over random small trees.
# ----------------------------------------------------------------------
_LABELS = ["NP", "VP", "DT", "NN", "S", "PP", "JJ"]


def _random_tree(draw, depth: int = 0) -> Node:
    label = draw(st.sampled_from(_LABELS))
    if depth >= 3:
        return Node(label)
    child_count = draw(st.integers(min_value=0, max_value=3 if depth < 2 else 1))
    return Node(label, [_random_tree(draw, depth + 1) for _ in range(child_count)])


random_trees = st.composite(_random_tree)


@given(tree=random_trees())
def test_canonical_key_round_trips_through_decode(tree: Node) -> None:
    key, ordered = canonical_key(tree)
    parsed = decode_key(key)
    assert parsed.encode() == key
    assert parsed.size == tree.size() == len(ordered)


@given(tree=random_trees(), seed=st.integers(min_value=0, max_value=1000))
def test_canonical_key_invariant_under_child_permutation(tree: Node, seed: int) -> None:
    """Permuting children anywhere in the tree never changes the canonical key."""
    import random as _random

    def shuffled(node: Node, rng: _random.Random) -> Node:
        children = [shuffled(child, rng) for child in node.children]
        rng.shuffle(children)
        return Node(node.label, children)

    permuted = shuffled(tree, _random.Random(seed))
    assert canonical_key(tree)[0] == canonical_key(permuted)[0]


@given(tree=random_trees())
def test_canonical_order_is_consistent_with_key_labels(tree: Node) -> None:
    key, ordered = canonical_key(tree)
    assert [node.label for node in ordered] == decode_key(key).labels()
