"""Unit and property tests for the binary codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.storage.codec import (
    decode_delta_list,
    decode_length_prefixed,
    decode_uint32_list,
    decode_varint,
    decode_varint_list,
    encode_delta_list,
    encode_length_prefixed,
    encode_uint32_list,
    encode_varint,
    encode_varint_list,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 300, 2**20, 2**40])
    def test_round_trip(self, value: int) -> None:
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_negative_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_rejected(self) -> None:
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_small_values_are_one_byte(self) -> None:
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    @given(st.integers(min_value=0, max_value=2**62))
    def test_round_trip_property(self, value: int) -> None:
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value

    @given(st.lists(st.integers(min_value=0, max_value=2**32), max_size=50))
    def test_list_round_trip_property(self, values: list[int]) -> None:
        data = encode_varint_list(values)
        decoded, _ = decode_varint_list(data, len(values))
        assert decoded == values


class TestDeltaList:
    def test_round_trip(self) -> None:
        values = [1, 1, 4, 9, 9, 120]
        decoded, _ = decode_delta_list(encode_delta_list(values))
        assert decoded == values

    def test_empty(self) -> None:
        decoded, _ = decode_delta_list(encode_delta_list([]))
        assert decoded == []

    def test_decreasing_rejected(self) -> None:
        with pytest.raises(ValueError):
            encode_delta_list([5, 3])

    @given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=100).map(sorted))
    def test_round_trip_property(self, values: list[int]) -> None:
        decoded, _ = decode_delta_list(encode_delta_list(values))
        assert decoded == values

    def test_compression_beats_fixed_width(self) -> None:
        values = list(range(0, 4000, 3))
        assert len(encode_delta_list(values)) < 4 * len(values)


class TestOtherCodecs:
    def test_uint32_round_trip(self) -> None:
        values = [0, 1, 2**31, 2**32 - 1]
        assert decode_uint32_list(encode_uint32_list(values)) == values

    def test_uint32_bad_length(self) -> None:
        with pytest.raises(ValueError):
            decode_uint32_list(b"\x01\x02\x03")

    def test_length_prefixed_round_trip(self) -> None:
        payload = b"hello world"
        decoded, offset = decode_length_prefixed(encode_length_prefixed(payload))
        assert decoded == payload

    def test_length_prefixed_truncated(self) -> None:
        encoded = encode_length_prefixed(b"hello")
        with pytest.raises(ValueError):
            decode_length_prefixed(encoded[:-2])

    @given(st.binary(max_size=200))
    def test_length_prefixed_property(self, payload: bytes) -> None:
        decoded, _ = decode_length_prefixed(encode_length_prefixed(payload))
        assert decoded == payload
