"""Unit tests for the page manager."""

from __future__ import annotations

import pytest

from repro.storage.pager import PAGE_SIZE, PageError, Pager


class TestPager:
    def test_new_file_reserves_meta_page(self, tmp_path) -> None:
        pager = Pager(tmp_path / "pages.bin")
        assert pager.page_count == 1
        assert pager.size_bytes() == PAGE_SIZE

    def test_allocate_and_round_trip(self, tmp_path) -> None:
        pager = Pager(tmp_path / "pages.bin")
        page = pager.allocate()
        pager.write(page, b"hello")
        data = pager.read(page)
        assert data.startswith(b"hello")
        assert len(data) == PAGE_SIZE

    def test_write_pads_short_payloads(self, tmp_path) -> None:
        pager = Pager(tmp_path / "pages.bin")
        page = pager.allocate()
        pager.write(page, b"x")
        assert pager.read(page)[1:] == b"\x00" * (PAGE_SIZE - 1)

    def test_oversized_write_rejected(self, tmp_path) -> None:
        pager = Pager(tmp_path / "pages.bin")
        page = pager.allocate()
        with pytest.raises(PageError):
            pager.write(page, b"x" * (PAGE_SIZE + 1))

    def test_out_of_range_access_rejected(self, tmp_path) -> None:
        pager = Pager(tmp_path / "pages.bin")
        with pytest.raises(PageError):
            pager.read(5)
        with pytest.raises(PageError):
            pager.write(5, b"data")

    def test_persistence_across_reopen(self, tmp_path) -> None:
        path = tmp_path / "pages.bin"
        pager = Pager(path)
        page = pager.allocate()
        pager.write(page, b"persist me")
        pager.close()
        reopened = Pager(path)
        assert reopened.page_count == 2
        assert reopened.read(page).startswith(b"persist me")

    def test_custom_page_size(self, tmp_path) -> None:
        pager = Pager(tmp_path / "pages.bin", page_size=512)
        page = pager.allocate()
        pager.write(page, b"y" * 512)
        assert len(pager.read(page)) == 512

    def test_corrupt_size_detected(self, tmp_path) -> None:
        path = tmp_path / "pages.bin"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(PageError):
            Pager(path)

    def test_context_manager_closes(self, tmp_path) -> None:
        with Pager(tmp_path / "pages.bin") as pager:
            pager.allocate()
        # File can be reopened after the context exits.
        assert Pager(tmp_path / "pages.bin").page_count == 2
