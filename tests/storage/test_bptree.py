"""Unit and property tests for the disk B+Tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.bptree import BPlusTree, BPlusTreeError


def _make(tmp_path, name: str = "tree.bpt", page_size: int = 4096) -> BPlusTree:
    return BPlusTree(str(tmp_path / name), page_size=page_size)


class TestBasicOperations:
    def test_empty_tree(self, tmp_path) -> None:
        tree = _make(tmp_path)
        assert len(tree) == 0
        assert tree.get(b"missing") is None
        assert list(tree.items()) == []

    def test_insert_and_get(self, tmp_path) -> None:
        tree = _make(tmp_path)
        tree.insert(b"alpha", b"1")
        tree.insert(b"beta", b"2")
        assert tree.get(b"alpha") == b"1"
        assert tree.get(b"beta") == b"2"
        assert len(tree) == 2

    def test_insert_replaces_existing(self, tmp_path) -> None:
        tree = _make(tmp_path)
        tree.insert(b"key", b"old")
        tree.insert(b"key", b"new")
        assert tree.get(b"key") == b"new"
        assert len(tree) == 1

    def test_contains(self, tmp_path) -> None:
        tree = _make(tmp_path)
        tree.insert(b"present", b"x")
        assert b"present" in tree
        assert b"absent" not in tree

    def test_non_bytes_key_rejected(self, tmp_path) -> None:
        tree = _make(tmp_path)
        with pytest.raises(TypeError):
            tree.insert("string", b"x")  # type: ignore[arg-type]


class TestSplitsAndOrdering:
    def test_many_inserts_cause_splits(self, tmp_path) -> None:
        tree = _make(tmp_path, page_size=512)
        items = {f"key{index:05d}".encode(): f"value{index}".encode() for index in range(500)}
        for key, value in items.items():
            tree.insert(key, value)
        assert tree.height > 1
        for key, value in items.items():
            assert tree.get(key) == value

    def test_items_are_sorted(self, tmp_path) -> None:
        tree = _make(tmp_path, page_size=512)
        keys = [f"k{index:04d}".encode() for index in range(300)]
        random.Random(0).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        listed = [key for key, _ in tree.items()]
        assert listed == sorted(keys)

    def test_random_insert_order(self, tmp_path) -> None:
        rng = random.Random(42)
        pairs = {f"{rng.random():.10f}".encode(): str(index).encode() for index in range(400)}
        tree = _make(tmp_path, page_size=512)
        for key, value in pairs.items():
            tree.insert(key, value)
        for key, value in pairs.items():
            assert tree.get(key) == value


class TestLargeValues:
    def test_overflow_values_round_trip(self, tmp_path) -> None:
        tree = _make(tmp_path)
        big = bytes(range(256)) * 200  # ~51 KB, far above a page
        tree.insert(b"big", big)
        tree.insert(b"small", b"tiny")
        assert tree.get(b"big") == big
        assert tree.get(b"small") == b"tiny"

    def test_multiple_overflow_values(self, tmp_path) -> None:
        tree = _make(tmp_path)
        values = {f"key{i}".encode(): bytes([i]) * (5000 + i * 1000) for i in range(8)}
        for key, value in values.items():
            tree.insert(key, value)
        for key, value in values.items():
            assert tree.get(key) == value

    def test_overflow_value_visible_in_items(self, tmp_path) -> None:
        tree = _make(tmp_path)
        big = b"z" * 20000
        tree.insert(b"big", big)
        assert dict(tree.items())[b"big"] == big


class TestPersistence:
    def test_reopen_preserves_content(self, tmp_path) -> None:
        path = str(tmp_path / "persist.bpt")
        tree = BPlusTree(path)
        for index in range(100):
            tree.insert(f"key{index:03d}".encode(), f"value{index}".encode())
        tree.close()
        reopened = BPlusTree(path)
        assert len(reopened) == 100
        assert reopened.get(b"key050") == b"value50"
        reopened.close()

    def test_bad_magic_rejected(self, tmp_path) -> None:
        path = tmp_path / "bogus.bpt"
        path.write_bytes(b"NOTATREE" + b"\x00" * 4088)
        with pytest.raises(BPlusTreeError):
            BPlusTree(str(path))


class TestScans:
    def test_prefix_scan(self, tmp_path) -> None:
        tree = _make(tmp_path)
        for key in [b"NP", b"NP(DT)", b"NP(DT)(NN)", b"NN", b"VP", b"VP(VBZ)"]:
            tree.insert(key, key)
        matches = [key for key, _ in tree.prefix_items(b"NP")]
        assert matches == [b"NP", b"NP(DT)", b"NP(DT)(NN)"]

    def test_prefix_scan_across_pages(self, tmp_path) -> None:
        tree = _make(tmp_path, page_size=512)
        for index in range(300):
            tree.insert(f"A{index:04d}".encode(), b"x")
            tree.insert(f"B{index:04d}".encode(), b"x")
        assert len(list(tree.prefix_items(b"A"))) == 300

    def test_range_scan(self, tmp_path) -> None:
        tree = _make(tmp_path)
        for index in range(50):
            tree.insert(f"{index:03d}".encode(), b"x")
        keys = [key for key, _ in tree.range_items(b"010", b"020")]
        assert keys == [f"{index:03d}".encode() for index in range(10, 20)]


class TestBulkLoad:
    def test_bulk_load_round_trip(self, tmp_path) -> None:
        items = [(f"key{index:05d}".encode(), f"value{index}".encode()) for index in range(1000)]
        tree = _make(tmp_path, page_size=512)
        tree.bulk_load(items)
        assert len(tree) == 1000
        for key, value in items:
            assert tree.get(key) == value
        assert [key for key, _ in tree.items()] == [key for key, _ in items]

    def test_bulk_load_requires_empty_tree(self, tmp_path) -> None:
        tree = _make(tmp_path)
        tree.insert(b"a", b"1")
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([(b"b", b"2")])

    def test_bulk_load_requires_sorted_unique_keys(self, tmp_path) -> None:
        tree = _make(tmp_path)
        with pytest.raises(BPlusTreeError):
            tree.bulk_load([(b"b", b"1"), (b"a", b"2")])
        tree2 = _make(tmp_path, "tree2.bpt")
        with pytest.raises(BPlusTreeError):
            tree2.bulk_load([(b"a", b"1"), (b"a", b"2")])

    def test_bulk_load_with_large_values(self, tmp_path) -> None:
        items = [(f"k{index:02d}".encode(), bytes([index]) * 9000) for index in range(20)]
        tree = _make(tmp_path)
        tree.bulk_load(items)
        for key, value in items:
            assert tree.get(key) == value

    def test_bulk_then_insert(self, tmp_path) -> None:
        tree = _make(tmp_path)
        tree.bulk_load([(f"k{index:03d}".encode(), b"v") for index in range(100)])
        tree.insert(b"zzz", b"new")
        assert tree.get(b"zzz") == b"new"
        assert len(tree) == 101


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    entries=st.dictionaries(
        st.binary(min_size=1, max_size=40), st.binary(max_size=200), max_size=200
    )
)
def test_bptree_behaves_like_a_dict(tmp_path_factory, entries: dict) -> None:
    """Property: after arbitrary inserts, the tree matches an in-memory dict."""
    directory = tmp_path_factory.mktemp("bpt")
    tree = BPlusTree(str(directory / "prop.bpt"), page_size=512)
    for key, value in entries.items():
        tree.insert(key, value)
    assert len(tree) == len(entries)
    for key, value in entries.items():
        assert tree.get(key) == value
    assert [key for key, _ in tree.items()] == sorted(entries)
    tree.close()


class TestReadThroughCache:
    """The value-cache hook: read-through gets, invalidation, probe counters."""

    def _loaded(self, tmp_path) -> BPlusTree:
        tree = _make(tmp_path)
        tree.bulk_load([(f"k{index:03d}".encode(), f"v{index}".encode()) for index in range(50)])
        return tree

    def test_get_populates_and_serves_from_cache(self, tmp_path) -> None:
        from repro.service.cache import LRUCache

        tree = self._loaded(tmp_path)
        tree.attach_cache(LRUCache(16))
        assert tree.get(b"k010") == b"v10"      # miss: descends and caches
        assert tree.get(b"k010") == b"v10"      # hit: no further descent
        stats = tree.probe_stats
        assert stats.gets == 2
        assert stats.cache_hits == 1
        assert stats.tree_descents == 1

    def test_missing_keys_are_cached_too(self, tmp_path) -> None:
        from repro.service.cache import LRUCache

        tree = self._loaded(tmp_path)
        tree.attach_cache(LRUCache(16))
        assert tree.get(b"absent") is None
        assert tree.get(b"absent") is None
        assert tree.probe_stats.tree_descents == 1

    def test_insert_invalidates_the_cached_entry(self, tmp_path) -> None:
        from repro.service.cache import LRUCache

        tree = self._loaded(tmp_path)
        tree.attach_cache(LRUCache(16))
        assert tree.get(b"k005") == b"v5"
        tree.insert(b"k005", b"updated")
        assert tree.get(b"k005") == b"updated"  # stale entry was dropped

    def test_detach_restores_plain_lookups(self, tmp_path) -> None:
        from repro.service.cache import LRUCache

        tree = self._loaded(tmp_path)
        tree.attach_cache(LRUCache(16))
        tree.get(b"k001")
        tree.attach_cache(None)
        tree.get(b"k001")
        assert tree.probe_stats.tree_descents == 2

    def test_probe_stats_without_cache(self, tmp_path) -> None:
        tree = self._loaded(tmp_path)
        tree.get(b"k001")
        tree.get(b"k001")
        stats = tree.probe_stats
        assert stats.gets == 2
        assert stats.cache_hits == 0
        assert stats.tree_descents == 2
        assert stats.cache_misses == 2
        snapshot = stats.snapshot()
        stats.reset()
        assert (stats.gets, snapshot.gets) == (0, 2)
