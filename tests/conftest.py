"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus
from repro.trees.node import ParseTree, build_tree
from repro.trees.penn import parse_penn


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """A deterministic 120-sentence synthetic corpus shared across tests."""
    generator = CorpusGenerator(seed=7)
    return Corpus(generator.generate(120))


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """A deterministic 25-sentence corpus for the more expensive integration tests."""
    generator = CorpusGenerator(seed=11)
    return Corpus(generator.generate(25))


@pytest.fixture()
def paper_tree() -> ParseTree:
    """The matching sentence of Figure 1(b) of the paper."""
    text = (
        "(ROOT (S (NP (DT The) (NNS agouti)) "
        "(VP (VBZ is) (NP (DT a) (JJ short-tailed) (, ,) (JJ plant-eating) (NN rodent)))))"
    )
    return ParseTree(parse_penn(text), tid=0)


@pytest.fixture()
def figure4_tree() -> ParseTree:
    """A small abstract tree in the spirit of Figure 4(a): A(B)(C(A(C)(D)))."""
    root = build_tree(("A", [("B", []), ("C", [("A", [("C", []), ("D", [])])])]))
    return ParseTree(root, tid=0)
