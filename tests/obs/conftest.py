"""Shared fixtures for the observability tests.

Tracing state is module-global (that IS the disabled fast path), so every
test runs against a guaranteed-off baseline and leaves it off behind
itself, whatever it enabled or however it failed.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def tracing_off_around_each_test():
    obs.disable()
    yield
    obs.disable()
