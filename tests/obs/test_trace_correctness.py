"""End-to-end trace correctness over real services.

The traces the tracer reports must be *internally consistent*: the stage
tree mirrors the pipeline, children nest inside their parents on the
timeline, and -- run sequentially -- per-shard child spans account for
their fan-out parent.  These tests run the actual query services over a
real index and assert on the recorded trees, plus the disabled-path
overhead guard.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.bench.guard import timing_bars_enabled
from repro.core.index import SubtreeIndex
from repro.obs.sinks import write_chrome_trace
from repro.obs.tracer import NOOP_SPAN, Tracer
from repro.service.service import QueryService
from repro.service.sharded import ShardedQueryService
from repro.shard import ShardedIndex

QUERY = "NP(DT)(NN)"


@pytest.fixture(scope="module")
def plain_service(tmp_path_factory, small_corpus):
    path = str(tmp_path_factory.mktemp("obs-plain") / "plain.si")
    SubtreeIndex.build(small_corpus, mss=3, coding="root-split", path=path).close()
    service = QueryService.open(path)
    yield service
    service.close()


@pytest.fixture(scope="module")
def sharded_service(tmp_path_factory, small_corpus):
    path = str(tmp_path_factory.mktemp("obs-sharded") / "sharded.si")
    ShardedIndex.build(
        small_corpus, mss=3, coding="root-split", path=path, shards=2, workers=1
    ).close()
    # One fan-out thread: shards execute sequentially, so their spans must
    # tile the parent fan-out span rather than overlap.
    service = ShardedQueryService.open(path + ".manifest.json", max_threads=1)
    yield service
    service.close()


def _find_span(span: dict, name: str):
    if span["name"] == name:
        return span
    for child in span["children"]:
        found = _find_span(child, name)
        if found is not None:
            return found
    return None


def _span_names(span: dict) -> set:
    names = {span["name"]}
    for child in span["children"]:
        names |= _span_names(child)
    return names


def _assert_contained(span: dict) -> None:
    """Children sit inside the parent window; sequential ones also sum to it."""
    start, end = span["start_us"], span["start_us"] + span["duration_us"]
    for child in span["children"]:
        assert child["start_us"] >= start - 2
        assert child["start_us"] + child["duration_us"] <= end + 2
        _assert_contained(child)


class TestPlainServiceTrace:
    def test_cold_query_records_the_full_pipeline(self, plain_service) -> None:
        plain_service.clear_caches()
        tracer = obs.enable(Tracer())
        try:
            result = plain_service.run(QUERY)
        finally:
            obs.disable()
        record = tracer.last(1)[0]
        assert record["name"] == "query"
        assert record["attrs"]["flavor"] == "plain"
        assert record["attrs"]["query"] == QUERY
        assert record["attrs"]["query_sha1"] == obs.query_hash(QUERY)
        assert record["attrs"]["result_cache"] == "miss"
        assert record["attrs"]["matches"] == result.total_matches
        assert {"prepare", "fetch_postings"} <= set(record["stages"])
        names = _span_names(record["spans"])
        assert {"query", "prepare", "fetch_postings", "fetch_key", "join"} <= names

    def test_children_nest_within_parents(self, plain_service) -> None:
        plain_service.clear_caches()
        tracer = obs.enable(Tracer())
        try:
            plain_service.run(QUERY)
        finally:
            obs.disable()
        spans = tracer.last(1)[0]["spans"]
        _assert_contained(spans)
        # Sequential pipeline: top-level stages must not exceed the root.
        child_sum = sum(child["duration_us"] for child in spans["children"])
        assert child_sum <= spans["duration_us"] + 2 * len(spans["children"])

    def test_fetch_key_spans_carry_posting_sizes(self, plain_service) -> None:
        plain_service.clear_caches()
        tracer = obs.enable(Tracer())
        try:
            plain_service.run(QUERY)
        finally:
            obs.disable()
        fetch = _find_span(tracer.last(1)[0]["spans"], "fetch_postings")
        assert fetch is not None
        keys = [child for child in fetch["children"] if child["name"] == "fetch_key"]
        assert len(keys) == fetch["attrs"]["keys"] >= 1
        assert all(isinstance(child["attrs"]["postings"], int) for child in keys)
        assert fetch["attrs"]["postings"] == sum(
            child["attrs"]["postings"] for child in keys
        )

    def test_warm_query_skips_execution_stages(self, plain_service) -> None:
        plain_service.clear_caches()
        tracer = obs.enable(Tracer())
        try:
            plain_service.run(QUERY)
            plain_service.run(QUERY)
        finally:
            obs.disable()
        warm = tracer.last(1)[0]
        assert warm["attrs"]["result_cache"] == "hit"
        assert "fetch_postings" not in warm["stages"]
        assert set(warm["stages"]) == {"prepare"}

    def test_batch_records_one_root_span(self, plain_service) -> None:
        plain_service.clear_caches()
        tracer = obs.enable(Tracer())
        try:
            plain_service.run_many([QUERY, "VP(VBZ)"])
        finally:
            obs.disable()
        assert tracer.traces_finished == 1
        record = tracer.last(1)[0]
        assert record["name"] == "batch"
        assert record["attrs"]["queries"] == 2
        assert record["attrs"]["result_cache_hits"] == 0


class TestShardedServiceTrace:
    def test_shard_spans_account_for_the_fanout(self, sharded_service) -> None:
        sharded_service.clear_caches()
        tracer = obs.enable(Tracer())
        try:
            sharded_service.run(QUERY)
        finally:
            obs.disable()
        record = tracer.last(1)[0]
        assert record["attrs"]["flavor"] == "sharded"
        fanout = _find_span(record["spans"], "fanout")
        assert fanout is not None
        assert fanout["attrs"]["shards"] == 2
        shards = [child for child in fanout["children"] if child["name"] == "shard"]
        assert len(shards) == 2
        assert {child["attrs"]["shard"] for child in shards} == {0, 1}
        child_sum = sum(child["duration_us"] for child in shards)
        # Sequential fan-out (max_threads=1): shard spans cannot exceed the
        # parent...
        assert child_sum <= fanout["duration_us"] + 2 * len(shards)
        # ...and on an unloaded box they account for most of it (the rest is
        # the merge and pool dispatch).  Ratio asserts are timing-sensitive,
        # so they follow the shared bench guard.
        if timing_bars_enabled():
            assert child_sum >= 0.3 * fanout["duration_us"]

    def test_chrome_export_of_a_sharded_trace_loads(self, sharded_service, tmp_path) -> None:
        sharded_service.clear_caches()
        tracer = obs.enable(Tracer())
        try:
            sharded_service.run(QUERY)
        finally:
            obs.disable()
        records = tracer.last(10)
        path = write_chrome_trace(str(tmp_path / "trace.json"), records)
        document = json.load(open(path, encoding="utf-8"))
        events = document["traceEvents"]
        assert {"query", "fanout", "shard", "merge_results"} <= {
            event["name"] for event in events
        }
        for event in events:
            if event["ph"] == "X":
                assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
        for record in records:
            _assert_contained(record["spans"])


class TestDisabledOverhead:
    def test_disabled_trace_is_structurally_free(self, plain_service) -> None:
        # Unconditional: the disabled path allocates nothing and leaves no
        # trace state behind, whatever the service does underneath.
        assert obs.trace("query", flavor="plain") is NOOP_SPAN
        result = plain_service.run(QUERY)
        assert result.total_matches >= 0
        assert obs.current_span() is None
        tracer = Tracer()
        before = tracer.traces_finished
        plain_service.run(QUERY)
        assert tracer.traces_finished == before

    def test_disabled_overhead_is_under_two_percent_warm(self, plain_service) -> None:
        # The instrumentation budget: (spans one warm query would create) x
        # (cost of one disabled trace() call) must be under 2% of the warm
        # query itself.  The span count comes from an actual traced run, the
        # noop cost and query time from measurement, so the bound tracks the
        # real call sites as they evolve.
        plain_service.run(QUERY)  # populate the result cache

        tracer = obs.enable(Tracer())
        try:
            plain_service.run(QUERY)
        finally:
            obs.disable()

        def count_spans(span: dict) -> int:
            return 1 + sum(count_spans(child) for child in span["children"])

        spans_per_query = count_spans(tracer.last(1)[0]["spans"])
        assert spans_per_query >= 2  # query + prepare at minimum

        rounds = 20_000
        started = time.perf_counter()
        for _ in range(rounds):
            obs.trace("query", flavor="plain")
        noop_seconds = (time.perf_counter() - started) / rounds

        rounds = 200
        started = time.perf_counter()
        for _ in range(rounds):
            plain_service.run(QUERY)
        warm_seconds = (time.perf_counter() - started) / rounds

        budget = spans_per_query * noop_seconds
        if timing_bars_enabled():
            assert budget < 0.02 * warm_seconds, (
                f"{spans_per_query} disabled spans cost {budget * 1e6:.2f} us "
                f"against a {warm_seconds * 1e6:.2f} us warm query"
            )
