"""Unit tests of the span tracer: fast path, nesting, ring, slow log, sinks."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.tracer import NOOP_SPAN, Tracer


class ListSink:
    """Collects written records in memory."""

    def __init__(self) -> None:
        self.records = []

    def write(self, record: dict) -> None:
        self.records.append(record)


class BrokenSink:
    """Always fails -- the tracer must swallow and count, never raise."""

    def write(self, record: dict) -> None:
        raise OSError("disk full")


class TestDisabledFastPath:
    def test_trace_returns_the_shared_noop_span(self) -> None:
        # Identity, not equality: the disabled path must not allocate.
        assert obs.trace("query") is NOOP_SPAN
        assert obs.trace("query", parent=None, attr=1) is NOOP_SPAN

    def test_noop_span_is_inert(self) -> None:
        with obs.trace("query", flavor="plain") as span:
            assert span is NOOP_SPAN
            assert span.set(matches=3) is NOOP_SPAN

    def test_no_current_span_and_annotate_is_a_no_op(self) -> None:
        with obs.trace("query"):
            assert obs.current_span() is None
            obs.annotate(matches=1)  # must not raise

    def test_noop_span_does_not_swallow_exceptions(self) -> None:
        with pytest.raises(RuntimeError, match="boom"):
            with obs.trace("query"):
                raise RuntimeError("boom")


class TestEnableDisable:
    def test_enable_installs_and_returns_the_tracer(self) -> None:
        tracer = Tracer()
        assert obs.enable(tracer) is tracer
        assert obs.enabled()
        assert obs.get_tracer() is tracer

    def test_enable_without_argument_makes_a_fresh_tracer(self) -> None:
        tracer = obs.enable()
        assert isinstance(tracer, Tracer)
        assert obs.get_tracer() is tracer

    def test_disable_restores_the_noop_path(self) -> None:
        obs.enable(Tracer())
        obs.disable()
        assert not obs.enabled()
        assert obs.trace("query") is NOOP_SPAN

    def test_capacity_must_be_positive(self) -> None:
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)


class TestSpanTree:
    def test_nested_spans_build_one_record(self) -> None:
        tracer = obs.enable(Tracer())
        with obs.trace("query", flavor="plain") as root:
            with obs.trace("prepare"):
                pass
            with obs.trace("fetch_postings"):
                with obs.trace("fetch_key", key="NP"):
                    pass
            root.set(matches=7)
        assert tracer.traces_finished == 1
        record = tracer.last(1)[0]
        assert record["kind"] == "trace"
        assert record["name"] == "query"
        assert record["attrs"] == {"flavor": "plain", "matches": 7}
        assert set(record["stages"]) == {"prepare", "fetch_postings"}
        spans = record["spans"]
        assert [child["name"] for child in spans["children"]] == ["prepare", "fetch_postings"]
        fetch = spans["children"][1]
        assert fetch["children"][0]["attrs"] == {"key": "NP"}

    def test_only_root_spans_produce_records(self) -> None:
        tracer = obs.enable(Tracer())
        with obs.trace("query"):
            with obs.trace("prepare"):
                pass
        assert tracer.traces_finished == 1
        assert tracer.last(10)[0]["name"] == "query"

    def test_current_span_tracks_the_context(self) -> None:
        obs.enable(Tracer())
        assert obs.current_span() is None
        with obs.trace("query") as root:
            assert obs.current_span() is root
            with obs.trace("prepare") as child:
                assert obs.current_span() is child
            assert obs.current_span() is root
        assert obs.current_span() is None

    def test_annotate_merges_into_the_current_span(self) -> None:
        tracer = obs.enable(Tracer())
        with obs.trace("query"):
            obs.annotate(result_cache="hit")
        assert tracer.last(1)[0]["attrs"] == {"result_cache": "hit"}

    def test_explicit_parent_crosses_threads(self) -> None:
        # Worker pools do not propagate context variables; passing the
        # captured parent span attaches the child to the right tree anyway.
        tracer = obs.enable(Tracer())
        with obs.trace("fanout") as fanout:
            def work() -> None:
                with obs.trace("shard", parent=fanout, shard=0):
                    pass
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        spans = tracer.last(1)[0]["spans"]
        assert [child["name"] for child in spans["children"]] == ["shard"]

    def test_exception_is_recorded_and_propagates(self) -> None:
        tracer = obs.enable(Tracer())
        with pytest.raises(ValueError, match="bad"):
            with obs.trace("query"):
                raise ValueError("bad")
        record = tracer.last(1)[0]
        assert "ValueError" in record["attrs"]["error"]

    def test_durations_nest_consistently(self) -> None:
        tracer = obs.enable(Tracer())
        with obs.trace("query"):
            with obs.trace("prepare"):
                pass
            with obs.trace("join"):
                pass
        spans = tracer.last(1)[0]["spans"]
        child_sum = sum(child["duration_us"] for child in spans["children"])
        assert child_sum <= spans["duration_us"] + 2  # int truncation slack


class TestRequestIds:
    def test_new_request_id_is_32_hex_chars(self) -> None:
        rid = obs.new_request_id()
        assert len(rid) == 32
        int(rid, 16)  # parses as hex
        assert rid != obs.new_request_id()

    def test_root_spans_stamp_the_context_request_id(self) -> None:
        tracer = obs.enable(Tracer())
        token = obs.set_request_id("rid-1")
        try:
            assert obs.get_request_id() == "rid-1"
            with obs.trace("query"):
                with obs.trace("prepare"):
                    pass
        finally:
            obs.reset_request_id(token)
        assert obs.get_request_id() is None
        assert tracer.last(1)[0]["request_id"] == "rid-1"

    def test_children_inherit_the_root_request_id(self) -> None:
        obs.enable(Tracer())
        token = obs.set_request_id("rid-2")
        try:
            with obs.trace("query"):
                with obs.trace("prepare") as child:
                    assert child.request_id == "rid-2"
        finally:
            obs.reset_request_id(token)

    def test_query_hash_is_short_and_stable(self) -> None:
        assert obs.query_hash("NP(DT)(NN)") == obs.query_hash("NP(DT)(NN)")
        assert len(obs.query_hash("NP(DT)(NN)")) == 12
        assert obs.query_hash("NP(DT)(NN)") != obs.query_hash("VP(VBZ)")


class TestRingAndSlowLog:
    def test_ring_keeps_the_newest_records(self) -> None:
        tracer = obs.enable(Tracer(capacity=2))
        for index in range(3):
            with obs.trace(f"q{index}"):
                pass
        assert tracer.traces_finished == 3
        assert [record["name"] for record in tracer.last(10)] == ["q1", "q2"]

    def test_last_returns_oldest_first(self) -> None:
        tracer = obs.enable(Tracer())
        for index in range(4):
            with obs.trace(f"q{index}"):
                pass
        assert [record["name"] for record in tracer.last(2)] == ["q2", "q3"]
        assert tracer.last(0) == []

    def test_slow_threshold_marks_and_logs(self) -> None:
        tracer = obs.enable(Tracer(slow_ms=0.0))  # everything is slow
        with obs.trace("query", query="NP(DT)(NN)"):
            pass
        record = tracer.last(1)[0]
        assert record["slow"] is True
        assert len(tracer.slow_queries) == 1
        entry = tracer.slow_queries[0]
        assert entry["name"] == "query"
        assert entry["query"] == "NP(DT)(NN)"

    def test_slow_log_finds_the_query_text_in_children(self) -> None:
        tracer = obs.enable(Tracer(slow_ms=0.0))
        with obs.trace("http_request", path="/query"):
            with obs.trace("query", query="VP(VBZ)"):
                pass
        assert tracer.slow_queries[0]["query"] == "VP(VBZ)"

    def test_no_threshold_means_nothing_is_slow(self) -> None:
        tracer = obs.enable(Tracer())
        with obs.trace("query"):
            pass
        assert tracer.last(1)[0]["slow"] is False
        assert len(tracer.slow_queries) == 0


class TestSinks:
    def test_records_reach_every_sink(self) -> None:
        first, second = ListSink(), ListSink()
        obs.enable(Tracer(sinks=[first, second]))
        with obs.trace("query"):
            pass
        assert len(first.records) == len(second.records) == 1
        assert first.records[0]["kind"] == "trace"

    def test_broken_sink_is_counted_not_raised(self) -> None:
        good = ListSink()
        tracer = obs.enable(Tracer(sinks=[BrokenSink(), good]))
        with obs.trace("query"):
            pass
        assert tracer.sink_errors == 1
        assert len(good.records) == 1  # later sinks still run

    def test_emit_writes_to_sinks_but_not_the_ring(self) -> None:
        sink = ListSink()
        tracer = obs.enable(Tracer(sinks=[sink]))
        tracer.emit({"kind": "error", "request_id": "rid-3", "path": "/query"})
        assert sink.records[0]["kind"] == "error"
        assert tracer.last(10) == []
        assert tracer.traces_finished == 0

    def test_emit_counts_broken_sinks(self) -> None:
        tracer = obs.enable(Tracer(sinks=[BrokenSink()]))
        tracer.emit({"kind": "error"})
        assert tracer.sink_errors == 1


class TestRendering:
    def test_format_trace_shows_the_tree(self) -> None:
        tracer = obs.enable(Tracer(slow_ms=0.0))
        token = obs.set_request_id("rid-4")
        try:
            with obs.trace("query", flavor="plain"):
                with obs.trace("prepare", cover=2):
                    pass
        finally:
            obs.reset_request_id(token)
        text = obs.format_trace(tracer.last(1)[0])
        lines = text.splitlines()
        assert lines[0].startswith("trace query ")
        assert "request_id=rid-4" in lines[0]
        assert "[SLOW]" in lines[0]
        assert lines[1].startswith("  query ")
        assert lines[2].startswith("    prepare ")
        assert "cover=2" in lines[2]

    def test_stage_totals_sums_across_records(self) -> None:
        tracer = obs.enable(Tracer())
        for _ in range(2):
            with obs.trace("query"):
                with obs.trace("prepare"):
                    pass
                with obs.trace("join"):
                    pass
        totals = obs.stage_totals(tracer.last(10))
        assert set(totals) == {"prepare", "join"}
        assert all(value >= 0.0 for value in totals.values())
