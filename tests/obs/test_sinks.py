"""Tests of the JSONL sink, the log validator, and the Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.sinks import (
    JsonlSink,
    chrome_trace_document,
    chrome_trace_events,
    validate_trace_log,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer


def _run_sample_traces(tracer: Tracer) -> list:
    """Two finished root spans with nesting and request ids."""
    for index, rid in enumerate(("rid-a", "rid-b")):
        token = obs.set_request_id(rid)
        try:
            with obs.trace("query", flavor="plain", n=index):
                with obs.trace("prepare"):
                    pass
                with obs.trace("fetch_postings"):
                    with obs.trace("fetch_key", key="NP"):
                        pass
        finally:
            obs.reset_request_id(token)
    return tracer.last(10)


class TestJsonlSink:
    def test_one_json_object_per_line(self, tmp_path) -> None:
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.write({"kind": "trace", "name": "query"})
            sink.write({"kind": "error", "path": "/query"})
            assert sink.lines_written == 2
        lines = [line for line in open(path, encoding="utf-8").read().splitlines() if line]
        assert [json.loads(line)["kind"] for line in lines] == ["trace", "error"]

    def test_appends_to_an_existing_file(self, tmp_path) -> None:
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.write({"kind": "trace"})
        with JsonlSink(path) as sink:
            sink.write({"kind": "trace"})
        assert len(open(path, encoding="utf-8").read().splitlines()) == 2

    def test_wired_as_a_tracer_sink(self, tmp_path) -> None:
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            tracer = obs.enable(Tracer(sinks=[sink]))
            _run_sample_traces(tracer)
            obs.disable()
        counts = validate_trace_log(path)
        assert counts == {"trace": 2}
        record = json.loads(open(path, encoding="utf-8").read().splitlines()[0])
        assert record["request_id"] == "rid-a"
        assert record["stages"].keys() == {"prepare", "fetch_postings"}


class TestValidateTraceLog:
    def test_counts_lines_per_kind(self, tmp_path) -> None:
        path = tmp_path / "log.jsonl"
        lines = [
            {"kind": "trace", "name": "q", "ts": 1.0, "duration_ms": 0.5,
             "stages": {}, "spans": {}},
            {"kind": "error", "request_id": "r", "path": "/query", "error": "x",
             "traceback": "tb", "ts": 2.0},
            {"kind": "note", "ts": 3.0},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n\n")
        assert validate_trace_log(str(path)) == {"trace": 1, "error": 1, "note": 1}

    def test_rejects_invalid_json_with_line_number(self, tmp_path) -> None:
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "trace"\n')
        with pytest.raises(ValueError, match=r":1: not valid JSON"):
            validate_trace_log(str(path))

    def test_rejects_non_object_lines(self, tmp_path) -> None:
        path = tmp_path / "log.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            validate_trace_log(str(path))

    def test_rejects_trace_lines_missing_required_keys(self, tmp_path) -> None:
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"kind": "trace", "name": "q"}) + "\n")
        with pytest.raises(ValueError, match="missing keys"):
            validate_trace_log(str(path))

    def test_rejects_error_lines_missing_the_traceback(self, tmp_path) -> None:
        path = tmp_path / "log.jsonl"
        line = {"kind": "error", "request_id": "r", "path": "/q", "error": "x", "ts": 1.0}
        path.write_text(json.dumps(line) + "\n")
        with pytest.raises(ValueError, match=r"missing keys \['traceback'\]"):
            validate_trace_log(str(path))


class TestChromeTrace:
    def test_events_flatten_the_span_tree(self) -> None:
        span = {
            "name": "query", "start_us": 100, "duration_us": 50,
            "attrs": {"flavor": "plain"},
            "children": [
                {"name": "prepare", "start_us": 105, "duration_us": 10,
                 "attrs": {}, "children": []},
            ],
        }
        events = chrome_trace_events(span, pid=0, tid=3)
        assert [event["name"] for event in events] == ["query", "prepare"]
        assert all(event["ph"] == "X" and event["tid"] == 3 for event in events)
        assert events[0]["args"] == {"flavor": "plain"}

    def test_document_schema_is_perfetto_loadable(self) -> None:
        tracer = obs.enable(Tracer())
        records = _run_sample_traces(tracer)
        obs.disable()
        document = chrome_trace_document(records, metadata={"reproTraceCount": 2})
        assert document["displayTimeUnit"] == "ms"
        assert document["reproTraceCount"] == 2
        events = document["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["ts"], int) and event["ts"] >= 0
                assert isinstance(event["dur"], int) and event["dur"] >= 0
                assert isinstance(event["name"], str) and event["name"]
        # One thread-name metadata event and one tid row per request.
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert [e["args"]["name"] for e in names] == ["request rid-a", "request rid-b"]
        assert {e["tid"] for e in events} == {0, 1}

    def test_document_nesting_is_well_formed(self) -> None:
        # Every child event must sit inside its parent's [ts, ts+dur] window
        # (2 us slack for integer truncation) -- the flame view property.
        tracer = obs.enable(Tracer())
        records = _run_sample_traces(tracer)
        obs.disable()

        def check(span: dict) -> None:
            start, end = span["start_us"], span["start_us"] + span["duration_us"]
            for child in span["children"]:
                assert child["start_us"] >= start - 2
                assert child["start_us"] + child["duration_us"] <= end + 2
                check(child)

        for record in records:
            check(record["spans"])

    def test_records_without_spans_are_skipped(self) -> None:
        document = chrome_trace_document([{"kind": "error", "request_id": "r"}])
        assert document["traceEvents"] == []

    def test_write_round_trips_through_json(self, tmp_path) -> None:
        tracer = obs.enable(Tracer())
        records = _run_sample_traces(tracer)
        obs.disable()
        path = write_chrome_trace(
            str(tmp_path / "trace.json"), records,
            metadata={"reproStageTotals": obs.stage_totals(records)},
        )
        document = json.load(open(path, encoding="utf-8"))
        assert isinstance(document["traceEvents"], list)
        assert set(document["reproStageTotals"]) == {"prepare", "fetch_postings"}
