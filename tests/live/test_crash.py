"""Simulated-crash tests: acknowledged writes survive, no op is replayed twice.

The writer child process adds trees through the real ``LiveIndex`` API,
prints each tid *after* the add returned (the acknowledgement), and then
dies with ``os._exit`` -- no ``close()``, no flushing, exactly like a kill
-9 or a power cut after the WAL fsync.  The parent reopens the index and
checks that every acknowledged op is present exactly once.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus
from repro.live import LiveIndex, wal_file_path

REPO_SRC = str(Path(__file__).resolve().parent.parent.parent / "src")

#: The crashing writer: adds every tree of a Penn file, acks tids to stdout,
#: deletes one seed tree, then dies without closing anything.
_WRITER = """
import os, sys
from repro.corpus.store import Corpus
from repro.live import LiveIndex

live = LiveIndex.open(sys.argv[1])
for tree in Corpus.load(sys.argv[2]):
    tid = live.add_tree(tree.root)
    print(tid, flush=True)
live.delete_tree(0)
print("deleted 0", flush=True)
os._exit(1)  # simulated crash: no close(), no manifest touch
"""


def _run_writer(manifest_path: str, penn_path: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _WRITER, manifest_path, penn_path],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_acknowledged_writes_survive_a_crash(tmp_path, tiny_corpus) -> None:
    live = LiveIndex.create(
        str(tmp_path / "crash"), mss=2, coding="root-split", trees=list(tiny_corpus)[:10]
    )
    manifest_path = live.manifest_path
    live.close()

    extra = CorpusGenerator(seed=55).generate_list(8)
    penn_path = str(tmp_path / "extra.penn")
    Corpus(extra).save(penn_path)

    result = _run_writer(manifest_path, penn_path)
    assert result.returncode == 1, result.stderr  # the simulated crash
    lines = result.stdout.split()
    assert lines[-2:] == ["deleted", "0"]
    acked = [int(token) for token in lines[:-2]]
    assert len(acked) == 8

    reopened = LiveIndex.open(manifest_path)
    try:
        tids = reopened.store.tids()
        # Zero lost ops: every acknowledged add is present exactly once, and
        # the acknowledged delete took effect.
        for tid in acked:
            assert tids.count(tid) == 1
        assert 0 not in tids
        assert reopened.tree_count == 10 + 8 - 1
        assert reopened.delta.tree_count == 8
        assert reopened.tombstones == frozenset({0})
        # Zero duplicated ops: replaying again (close + reopen) is stable.
        reopened.close()
        again = LiveIndex.open(manifest_path)
        try:
            assert again.store.tids() == tids
            assert again.wal.op_count == 9
        finally:
            again.close()
    finally:
        pass


def test_crash_between_manifest_swap_and_wal_truncate(tmp_path, tiny_corpus) -> None:
    """A stale-epoch WAL (compaction died before truncating it) is discarded,
    never replayed -- replaying would duplicate every compacted op."""
    live = LiveIndex.create(
        str(tmp_path / "stale"), mss=2, coding="root-split", trees=list(tiny_corpus)[:6]
    )
    manifest_path = live.manifest_path
    for tree in list(tiny_corpus)[6:10]:
        live.add_tree(tree.root)
    live.delete_tree(1)
    wal_path = wal_file_path(manifest_path)
    pre_compact_wal = str(tmp_path / "wal.backup")
    shutil.copyfile(wal_path, pre_compact_wal)
    live.compact()
    expected_tids = live.store.tids()
    expected_count = live.tree_count
    live.close()

    # Simulate the torn compaction: new manifest on disk, old WAL back.
    shutil.copyfile(pre_compact_wal, wal_path)

    reopened = LiveIndex.open(manifest_path)
    try:
        assert reopened.store.tids() == expected_tids
        assert reopened.tree_count == expected_count
        assert reopened.delta.tree_count == 0  # nothing was replayed
        assert reopened.tombstones == frozenset()
        assert reopened.wal.epoch == reopened.epoch  # fresh log, current epoch
        assert reopened.wal.op_count == 0
    finally:
        reopened.close()


def test_crash_leaves_wal_side_file(tmp_path, tiny_corpus) -> None:
    """A leftover ``.wal.next`` from an aborted compaction is cleaned up."""
    live = LiveIndex.create(
        str(tmp_path / "side"), mss=2, coding="root-split", trees=list(tiny_corpus)[:4]
    )
    manifest_path = live.manifest_path
    live.add_tree(tiny_corpus[4].root)
    live.close()
    side = wal_file_path(manifest_path) + ".next"
    with open(side, "wb") as handle:
        handle.write(b"leftover")

    reopened = LiveIndex.open(manifest_path)
    try:
        assert not os.path.exists(side)
        assert reopened.delta.tree_count == 1  # the real WAL still replays
    finally:
        reopened.close()
