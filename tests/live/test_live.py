"""Integration tests for the live index: mutation equivalence.

The heart of this module is the acceptance property: after *any*
interleaving of ``add_tree`` / ``delete_tree`` / ``compact``, a live index
must return byte-identical, tid-ordered results to a **fresh full rebuild**
over the surviving corpus -- for every workload query (the full WH set plus
a generated FB set) and every coding scheme, and again after closing and
reopening (WAL replay).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.index import SubtreeIndex
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus
from repro.exec.executor import QueryExecutor
from repro.live import LiveIndex, LiveIndexError
from repro.workloads.fb import generate_fb_queries
from repro.workloads.wh import generate_wh_queries

CODINGS = ("filter", "root-split", "subtree-interval")
MSS = 3


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("live")


@pytest.fixture(scope="module")
def workload(small_corpus):
    """Every workload query: the 48 WH queries plus a generated FB set."""
    queries = [item.query for item in generate_wh_queries()]
    held_out = CorpusGenerator(seed=101).generate_list(30)
    fb = generate_fb_queries(
        indexed_trees=list(small_corpus),
        held_out_trees=held_out,
        max_size=6,
        seed=7,
    )
    queries.extend(item.query for item in fb)
    assert len(queries) > 60
    return queries


def assert_identical_and_tid_ordered(live_result, fresh_result) -> None:
    """Byte-identical matches, with the live dict in ascending tid order."""
    assert json.dumps(live_result.matches_per_tree, sort_keys=True) == json.dumps(
        fresh_result.matches_per_tree, sort_keys=True
    )
    tids = list(live_result.matches_per_tree)
    assert tids == sorted(tids)
    assert live_result.matched_tids == fresh_result.matched_tids


def fresh_rebuild_executor(workdir, coding, trees, tag):
    """A QueryExecutor over a from-scratch index of *trees* (tids kept)."""
    path = str(workdir / f"fresh-{coding}-{tag}.si")
    index = SubtreeIndex.build(trees, mss=MSS, coding=coding, path=path)
    return QueryExecutor(index, store=Corpus(trees))


def run_interleaving(live: LiveIndex, pending, rng) -> None:
    """Apply a random interleaving of adds, deletes and compactions."""
    while pending:
        roll = rng.random()
        if roll < 0.55:
            live.add_tree(pending.pop(0).root)
        elif roll < 0.85:
            tids = live.store.tids()
            if tids:
                live.delete_tree(rng.choice(tids))
        else:
            live.compact()


class TestMutationEquivalence:
    """The acceptance property, per coding, over the full workload."""

    @pytest.mark.parametrize("coding", CODINGS)
    def test_interleaving_matches_fresh_rebuild(
        self, workdir, small_corpus, workload, coding
    ) -> None:
        rng = random.Random(sum(coding.encode()))  # deterministic per coding
        seed_trees = list(small_corpus)[:80]
        pending = list(small_corpus)[80:]
        live = LiveIndex.create(
            str(workdir / f"eq-{coding}"), mss=MSS, coding=coding, trees=seed_trees
        )
        try:
            run_interleaving(live, pending, rng)
            # Leave the index mid-lifecycle: some delta, some tombstones.
            extra = CorpusGenerator(seed=303).generate_list(10)
            for tree in extra[:5]:
                live.add_tree(tree.root)
            live.delete_tree(live.store.tids()[0])

            survivors = list(live.store)
            reference = fresh_rebuild_executor(workdir, coding, survivors, "mid")
            transparent = QueryExecutor(live, store=live.store)
            for query in workload:
                assert_identical_and_tid_ordered(
                    transparent.execute(query), reference.execute(query)
                )

            # Compact everything down and compare again on a sample.
            live.compact()
            assert not live.tombstones
            assert live.delta.tree_count == 0
            assert live.wal.op_count == 0
            compacted = QueryExecutor(live, store=live.store)
            for query in workload[::7]:
                assert_identical_and_tid_ordered(
                    compacted.execute(query), reference.execute(query)
                )
        finally:
            live.close()

    def test_reopen_replays_wal_identically(self, workdir, small_corpus, workload) -> None:
        seed_trees = list(small_corpus)[:60]
        live = LiveIndex.create(
            str(workdir / "reopen"), mss=MSS, coding="root-split", trees=seed_trees
        )
        extra = CorpusGenerator(seed=404).generate_list(12)
        for tree in extra:
            live.add_tree(tree.root)
        live.delete_tree(7)
        live.delete_tree(62)
        expected_tids = live.store.tids()
        live.close()

        reopened = LiveIndex.open(str(workdir / "reopen") + ".live.json")
        try:
            assert reopened.store.tids() == expected_tids
            assert reopened.tombstones == frozenset({7, 62})
            assert reopened.delta.tree_count == 12
            survivors = list(reopened.store)
            reference = fresh_rebuild_executor(workdir, "root-split", survivors, "reopen")
            transparent = QueryExecutor(reopened, store=reopened.store)
            for query in workload[::5]:
                assert_identical_and_tid_ordered(
                    transparent.execute(query), reference.execute(query)
                )
        finally:
            reopened.close()


class TestLifecycle:
    def test_create_open_roundtrip_and_dispatch(self, workdir, tiny_corpus) -> None:
        live = LiveIndex.create(
            str(workdir / "dispatch"), mss=2, coding="root-split", trees=list(tiny_corpus)
        )
        manifest_path = live.manifest_path
        live.close()
        via_open = SubtreeIndex.open(manifest_path)
        try:
            assert isinstance(via_open, LiveIndex)
            assert via_open.tree_count == len(tiny_corpus)
            assert via_open.epoch == 0
        finally:
            via_open.close()

    def test_empty_index_grows_from_nothing(self, workdir) -> None:
        live = LiveIndex.create(str(workdir / "empty"), mss=2, coding="root-split")
        try:
            assert live.tree_count == 0
            assert live.segment_count == 0
            assert live.lookup("NP(DT)") == []
            tid = live.add_tree("(ROOT (S (NP (DT the) (NN dog)) (VP (VBZ runs))))")
            assert tid == 0
            assert live.posting_list_length("NP(DT)") == 1
            live.compact()
            assert live.segment_count == 1
            assert live.posting_list_length("NP(DT)") == 1
        finally:
            live.close()

    def test_tids_are_monotonic_and_never_reused(self, workdir, tiny_corpus) -> None:
        live = LiveIndex.create(
            str(workdir / "monotonic"), mss=2, coding="root-split",
            trees=list(tiny_corpus)[:5],
        )
        try:
            first = live.add_tree(tiny_corpus[5].root)
            assert first == 5
            live.delete_tree(first)
            second = live.add_tree(tiny_corpus[6].root)
            assert second == 6  # the deleted tid is not recycled
            live.compact()
            third = live.add_tree(tiny_corpus[7].root)
            assert third == 7
        finally:
            live.close()

    def test_delete_validation(self, workdir, tiny_corpus) -> None:
        live = LiveIndex.create(
            str(workdir / "delete"), mss=2, coding="root-split",
            trees=list(tiny_corpus)[:5],
        )
        try:
            with pytest.raises(KeyError):
                live.delete_tree(99)
            live.delete_tree(2)
            with pytest.raises(KeyError):  # double delete
                live.delete_tree(2)
            with pytest.raises(KeyError):
                live.store.get(2)
            assert 2 not in live.store
        finally:
            live.close()

    def test_compact_drops_fully_deleted_segments(self, workdir, tiny_corpus) -> None:
        live = LiveIndex.create(
            str(workdir / "drop"), mss=2, coding="root-split",
            trees=list(tiny_corpus)[:4],
        )
        try:
            for tree in list(tiny_corpus)[4:8]:
                live.add_tree(tree.root)
            live.compact()  # two segments now
            assert live.segment_count == 2
            for tid in live.segments[0].store.tids():
                live.delete_tree(tid)
            stats = live.compact()
            assert stats.segments_dropped == 1
            assert live.segment_count == 1
            assert live.tree_count == 4
        finally:
            live.close()

    def test_compact_noop(self, workdir, tiny_corpus) -> None:
        live = LiveIndex.create(
            str(workdir / "noop"), mss=2, coding="root-split", trees=list(tiny_corpus)[:3]
        )
        try:
            stats = live.compact()
            assert stats.noop
            assert live.epoch == 0
        finally:
            live.close()

    def test_items_match_fresh_rebuild(self, workdir, tiny_corpus) -> None:
        live = LiveIndex.create(
            str(workdir / "items"), mss=2, coding="root-split",
            trees=list(tiny_corpus)[:10],
        )
        try:
            for tree in list(tiny_corpus)[10:15]:
                live.add_tree(tree.root)
            live.delete_tree(3)
            live.delete_tree(12)
            survivors = list(live.store)
            fresh = SubtreeIndex.build(
                survivors, mss=2, coding="root-split", path=str(workdir / "items-fresh.si")
            )
            live_items = [
                (key, [p.tid for p in postings]) for key, postings in live.items()
            ]
            fresh_items = [
                (key, [p.tid for p in postings]) for key, postings in fresh.items()
            ]
            assert live_items == fresh_items
            assert [k.encode() for k in live.keys()] == [key for key, _ in fresh_items]
            fresh.close()
        finally:
            live.close()

    def test_compaction_retires_replaced_segments_for_inflight_readers(
        self, workdir, tiny_corpus
    ) -> None:
        """A reader's segment_handles() snapshot stays usable across a
        compaction that replaces (and unlinks) those segments' files."""
        live = LiveIndex.create(
            str(workdir / "retire"), mss=2, coding="root-split",
            trees=list(tiny_corpus)[:8],
        )
        try:
            snapshot = live.segment_handles()
            before = snapshot[0].index.lookup(b"NP(DT)")
            live.delete_tree(0)  # forces the segment rewrite on compact
            live.compact()
            # The old handle still reads the old (pre-delete) epoch's files.
            assert snapshot[0].index.lookup(b"NP(DT)") == before
            assert snapshot[0].store.get(0).tid == 0
            # The live index itself serves the new epoch.
            assert all(p.tid != 0 for p in live.lookup(b"NP(DT)"))
        finally:
            live.close()

    def test_posting_lists_are_published_copy_on_write(self, workdir, tiny_corpus) -> None:
        """A posting list a reader fetched is a stable snapshot: a later add
        rebinds, never extends, the delta's shared lists."""
        live = LiveIndex.create(str(workdir / "cow"), mss=2, coding="root-split")
        try:
            live.add_tree(tiny_corpus[0].root)
            held = live.delta.lookup(b"NP(DT)")
            length = len(held)
            for tree in list(tiny_corpus)[1:6]:
                live.add_tree(tree.root)
            assert len(held) == length  # the held list never mutated
            assert len(live.delta.lookup(b"NP(DT)")) > length
        finally:
            live.close()

    def test_open_errors_name_the_segment(self, workdir, tiny_corpus) -> None:
        live = LiveIndex.create(
            str(workdir / "err"), mss=2, coding="root-split", trees=list(tiny_corpus)[:4]
        )
        manifest_path = live.manifest_path
        segment_file = live.manifest.resolve(
            manifest_path, live.manifest.segments[0].index_path
        )
        live.close()
        import os

        os.remove(segment_file)
        with pytest.raises(LiveIndexError, match=r"segment 0 is missing"):
            LiveIndex.open(manifest_path)
