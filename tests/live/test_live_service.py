"""Tests for the live serving layer: fan-out results + cache invalidation."""

from __future__ import annotations

import pytest

from repro.core.index import SubtreeIndex
from repro.corpus.store import Corpus
from repro.live import LiveIndex
from repro.service.live import LiveQueryService
from repro.service.service import QueryService


@pytest.fixture()
def live(tmp_path, small_corpus):
    index = LiveIndex.create(
        str(tmp_path / "svc"), mss=3, coding="root-split", trees=list(small_corpus)[:60]
    )
    yield index
    index.close()


def plain_service_over(tmp_path, live: LiveIndex, tag: str) -> QueryService:
    trees = list(live.store)
    index = SubtreeIndex.build(
        trees, mss=live.mss, coding=live.coding.name, path=str(tmp_path / f"{tag}.si")
    )
    return QueryService(index, store=Corpus(trees))


QUERIES = ["NP(DT)(NN)", "S(NP)(VP(VBZ))", "VP(VBZ)", "NP(DT)"]


def test_run_matches_plain_service(tmp_path, live, small_corpus) -> None:
    for tree in list(small_corpus)[60:75]:
        live.add_tree(tree.root)
    live.delete_tree(5)
    service = LiveQueryService(live)
    reference = plain_service_over(tmp_path, live, "ref")
    try:
        for text in QUERIES:
            mine = service.run(text)
            theirs = reference.run(text)
            assert mine.matches_per_tree == theirs.matches_per_tree
            assert list(mine.matches_per_tree) == sorted(mine.matches_per_tree)
    finally:
        service.close()
        reference.close()


def test_mutations_invalidate_results(tmp_path, live) -> None:
    service = LiveQueryService(live)
    try:
        text = "NP(DT)(NN)"
        before = service.run(text)
        repeat = service.run(text)
        assert repeat is before  # served whole from the result cache

        tid = live.add_tree("(ROOT (S (NP (DT the) (NN fish)) (VP (VBZ swims))))")
        after_add = service.run(text)
        assert after_add is not before  # stale result was dropped
        assert after_add.matches_per_tree.get(tid) == 1
        assert after_add.total_matches == before.total_matches + 1

        live.delete_tree(tid)
        after_delete = service.run(text)
        assert after_delete.matches_per_tree == before.matches_per_tree
        assert service.stats().invalidations == 2
    finally:
        service.close()


def test_epoch_bump_clears_plans(live) -> None:
    service = LiveQueryService(live)
    try:
        service.run("NP(DT)(NN)")
        service.run("NP(DT)(NN)")
        assert service.stats().plans.hits > 0
        live.add_tree("(ROOT (NP (DT a) (NN b)))")
        live.compact()
        assert live.epoch == 1
        stats_before = service.stats().plans
        service.run("NP(DT)(NN)")  # re-prepared: the epoch bump dropped plans
        stats_after = service.stats().plans
        assert stats_after.misses > stats_before.misses
        assert service.stats().epoch == 1
    finally:
        service.close()


def test_segment_posting_caches_serve_repeats(live) -> None:
    """The fan-out path reads through per-segment posting caches, and adds
    do not invalidate them (segments are immutable within an epoch)."""
    service = LiveQueryService(live, result_cache_size=0)
    try:
        service.run("NP(DT)(NN)")
        cold = service.stats().postings
        assert cold.misses > 0
        service.run("NP(DT)(NN)")
        assert service.stats().postings.hits > cold.hits
        live.add_tree("(ROOT (NP (DT a) (NN b)))")  # delta-only mutation
        service.run("NP(DT)(NN)")
        warm = service.stats().postings
        assert warm.hits > cold.hits + 1  # segment cache survived the add
        live.compact()  # epoch bump: caches rebuilt for the new segment set
        service.run("NP(DT)(NN)")
        assert service.stats().postings.misses > warm.misses
    finally:
        service.close()


def test_stale_result_is_never_served_after_racing_a_mutation(live) -> None:
    """A result tagged with an old index version is not served even if it
    lands in the cache after the invalidation sweep (write-side race)."""
    service = LiveQueryService(live)
    try:
        text = "NP(DT)(NN)"
        stale_version = live.version
        stale = service.run(text)
        tid = live.add_tree("(ROOT (S (NP (DT the) (NN crab)) (VP (VBZ digs))))")
        # Simulate the race: a slow reader finishes now and stores the result
        # it computed against the pre-mutation state.
        service._remember_result(service.prepare(text), stale, stale_version)
        served = service.run(text)
        assert served is not stale
        assert served.matches_per_tree.get(tid) == 1
    finally:
        service.close()


def test_run_many_batches_and_dedups(tmp_path, live) -> None:
    service = LiveQueryService(live, result_cache_size=0)
    reference = plain_service_over(tmp_path, live, "batch-ref")
    try:
        results = service.run_many(QUERIES + QUERIES)
        expected = [reference.run(text) for text in QUERIES] * 2
        for mine, theirs in zip(results, expected):
            assert mine.matches_per_tree == theirs.matches_per_tree
        assert service.stats().batch_keys_deduped > 0
    finally:
        service.close()
        reference.close()


def test_filter_coding_service(tmp_path, small_corpus) -> None:
    live = LiveIndex.create(
        str(tmp_path / "filter"), mss=3, coding="filter", trees=list(small_corpus)[:40]
    )
    try:
        for tree in list(small_corpus)[40:50]:
            live.add_tree(tree.root)
        live.delete_tree(2)
        service = LiveQueryService(live)
        reference = plain_service_over(tmp_path, live, "filter-ref")
        try:
            for text in QUERIES:
                assert service.run(text).matches_per_tree == reference.run(text).matches_per_tree
        finally:
            service.close()
            reference.close()
    finally:
        live.close()


def test_open_dispatches_to_live_service(tmp_path, tiny_corpus) -> None:
    live = LiveIndex.create(
        str(tmp_path / "dispatch"), mss=2, coding="root-split", trees=list(tiny_corpus)
    )
    manifest_path = live.manifest_path
    live.close()
    service = QueryService.open(manifest_path)
    try:
        assert isinstance(service, LiveQueryService)
        result = service.run("NP(DT)")
        assert result.total_matches > 0
        stats = service.stats()
        assert stats.epoch == 0
        assert stats.wal_ops == 0
    finally:
        service.close()
