"""Unit tests for the write-ahead log: durability, replay, torn tails."""

from __future__ import annotations

import os

import pytest

from repro.live.wal import WalError, WriteAheadLog


def test_append_and_replay_roundtrip(tmp_path) -> None:
    path = str(tmp_path / "log.wal")
    wal = WriteAheadLog.create(path, epoch=3)
    wal.append_add(10, "(ROOT (S (NP (DT a)) (VP (VBZ b))))")
    wal.append_delete(4)
    wal.append_add(11, "(ROOT (NP (NN c)))")
    assert wal.op_count == 3
    wal.close()

    reopened, ops = WriteAheadLog.open(path)
    assert reopened.epoch == 3
    assert reopened.op_count == 3
    assert [(op.op, op.tid) for op in ops] == [("add", 10), ("delete", 4), ("add", 11)]
    assert ops[0].tree == "(ROOT (S (NP (DT a)) (VP (VBZ b))))"
    assert ops[1].tree is None
    # The reopened log keeps appending from where it left off.
    reopened.append_delete(10)
    reopened.close()
    _, ops = WriteAheadLog.open(path)
    assert len(ops) == 4


def test_torn_final_record_is_truncated(tmp_path) -> None:
    path = str(tmp_path / "torn.wal")
    wal = WriteAheadLog.create(path, epoch=0)
    wal.append_add(0, "(ROOT (NN x))")
    wal.append_delete(0)
    wal.close()
    good_size = os.path.getsize(path)
    with open(path, "ab") as handle:  # a crash mid-append: half a record
        handle.write(b"0abc4f2 {\"op\": \"add\", \"tid\": 9")

    reopened, ops = WriteAheadLog.open(path)
    reopened.close()
    assert len(ops) == 2  # the torn tail is dropped, earlier ops survive
    assert os.path.getsize(path) == good_size  # and physically truncated


def test_corruption_mid_file_raises(tmp_path) -> None:
    path = str(tmp_path / "corrupt.wal")
    wal = WriteAheadLog.create(path, epoch=0)
    wal.append_add(0, "(ROOT (NN x))")
    wal.append_add(1, "(ROOT (NN y))")
    wal.close()
    with open(path, "r+b") as handle:  # flip a byte inside the *first* op
        handle.seek(70)
        byte = handle.read(1)
        handle.seek(70)
        handle.write(b"X" if byte != b"X" else b"Y")
    with pytest.raises(WalError, match="corrupt mid-file"):
        WriteAheadLog.open(path)


def test_non_wal_file_is_rejected(tmp_path) -> None:
    path = str(tmp_path / "not-a.wal")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("hello\n")
    with pytest.raises(WalError, match="not a live-index write-ahead log"):
        WriteAheadLog.open(path)


def test_create_truncates_existing_log(tmp_path) -> None:
    path = str(tmp_path / "fresh.wal")
    old = WriteAheadLog.create(path, epoch=0)
    old.append_delete(1)
    old.close()
    fresh = WriteAheadLog.create(path, epoch=1)
    fresh.close()
    reopened, ops = WriteAheadLog.open(path)
    reopened.close()
    assert reopened.epoch == 1
    assert ops == []
