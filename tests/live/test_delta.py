"""Unit tests for the in-memory delta segment."""

from __future__ import annotations

import pytest

from repro.coding.base import get_coding
from repro.core.index import SubtreeIndex
from repro.live.delta import DeltaSegment

CODINGS = ("filter", "root-split", "subtree-interval")


@pytest.mark.parametrize("coding", CODINGS)
def test_delta_stores_what_a_fresh_build_would(tmp_path, tiny_corpus, coding) -> None:
    """Per-key postings in the delta are exactly a built index's postings."""
    trees = list(tiny_corpus)[:10]
    delta = DeltaSegment(mss=3, coding=get_coding(coding))
    for tree in trees:
        delta.add_tree(tree)
    built = SubtreeIndex.build(
        trees, mss=3, coding=coding, path=str(tmp_path / f"ref-{coding}.si")
    )
    try:
        delta_items = list(delta.items())
        built_items = list(built.items())
        assert [key for key, _ in delta_items] == [key for key, _ in built_items]
        for (key, delta_postings), (_, built_postings) in zip(delta_items, built_items):
            assert delta_postings == built_postings, key
        assert delta.key_count == built.key_count
        assert delta.posting_count == built.posting_count
        assert delta.tree_count == built.metadata.tree_count
    finally:
        built.close()


def test_lookup_and_has_key(tiny_corpus) -> None:
    delta = DeltaSegment(mss=2, coding=get_coding("root-split"))
    assert delta.lookup(b"NP(DT)") == []
    assert not delta.has_key(b"NP(DT)")
    for tree in list(tiny_corpus)[:5]:
        delta.add_tree(tree)
    postings = delta.lookup(b"NP(DT)")
    assert postings
    assert [p.tid for p in postings] == sorted(p.tid for p in postings)
    assert delta.has_key(b"NP(DT)")


def test_tids_must_ascend(tiny_corpus) -> None:
    delta = DeltaSegment(mss=2, coding=get_coding("root-split"))
    trees = list(tiny_corpus)
    delta.add_tree(trees[3])
    with pytest.raises(ValueError, match="ascending"):
        delta.add_tree(trees[1])
    with pytest.raises(ValueError, match="ascending"):
        delta.add_tree(trees[3])  # equal tid is just as illegal


def test_clear_resets_everything(tiny_corpus) -> None:
    delta = DeltaSegment(mss=2, coding=get_coding("root-split"))
    for tree in list(tiny_corpus)[:4]:
        delta.add_tree(tree)
    assert delta.tree_count == 4
    delta.clear()
    assert delta.tree_count == 0
    assert delta.key_count == 0
    assert delta.posting_count == 0
    assert list(delta.items()) == []
    delta.add_tree(tiny_corpus[0])  # tid ordering restarts after a clear
    assert delta.tree_count == 1
