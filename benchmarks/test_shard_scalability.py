"""Sharding benchmark: parallel build speedup and fan-out query latency.

Records build time and WH-workload latency at 1/2/4/8 shards.  The merge-
correctness invariant (identical match totals at every shard count) is
asserted unconditionally; the parallel build-speedup bar is asserted only
on machines with enough cores to make it physically possible -- process
workers cannot beat a sequential build on a single-core box.
"""

from __future__ import annotations

import os

from benchmarks.conftest import BASE_SIZES, save_result, scaled
from repro.bench.experiments import shard_scalability

#: The speedup the 4-shard/4-worker build must reach over the 1-shard
#: baseline -- when at least this many physical cores are available.
SPEEDUP_BAR = 1.5
CORES_FOR_BAR = 4


def test_shard_scalability(benchmark, context, results_dir) -> None:
    corpus_size = scaled(BASE_SIZES["query_corpus"])  # >= 1,200 sentences

    result = benchmark.pedantic(
        lambda: shard_scalability(context, sentence_count=corpus_size),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, result, "shard_scalability.txt")
    rows = {row["shards"]: row for row in result.as_dicts()}
    assert set(rows) == {1, 2, 4, 8}

    # Merge correctness across every shard count: the WH workload must see
    # exactly the same matches no matter how the corpus is partitioned.
    totals = {row["total_matches"] for row in rows.values()}
    assert len(totals) == 1, rows

    # Every configuration must serve warm repeats faster than cold ones
    # (result cache answers identical queries outright).
    for row in rows.values():
        assert row["warm_ms_per_query"] < row["cold_ms_per_query"], row

    # The parallel-build bar: only meaningful with free cores to run the
    # worker processes on.  A single-core machine still records the numbers
    # (see benchmarks/results/shard_scalability.txt) but cannot pass it, and
    # shared CI runners (GitHub sets CI=true) are too noisy/throttled to
    # gate a hardware-sensitive wall-clock ratio on.
    if (os.cpu_count() or 1) >= CORES_FOR_BAR and not os.environ.get("CI"):
        speedup = rows[4]["build_speedup"]
        assert speedup >= SPEEDUP_BAR, (
            f"4-shard parallel build reached only {speedup:.2f}x over the "
            f"1-shard baseline (bar: {SPEEDUP_BAR}x)"
        )
