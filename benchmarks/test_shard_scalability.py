"""Sharding benchmark: parallel build speedup and fan-out query latency.

Records build time and WH-workload latency at 1/2/4/8 shards.  The merge-
correctness invariant (identical match totals at every shard count) is
asserted unconditionally; the parallel build-speedup bar goes through the
shared CI/low-core guard -- process workers cannot beat a sequential build
on a single-core box.
"""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.bench.guard import timing_bars_enabled

#: The speedup the 4-shard/4-worker build must reach over the 1-shard
#: baseline -- when at least this many physical cores are available.
SPEEDUP_BAR = 1.5
CORES_FOR_BAR = 4


def test_shard_scalability(runner) -> None:
    report = run_experiment(runner, "shard_scalability")
    result = report.result
    rows = {row["shards"]: row for row in result.as_dicts()}
    assert set(rows) == set(report.params["shard_counts"])

    # Merge correctness across every shard count: the WH workload must see
    # exactly the same matches no matter how the corpus is partitioned.
    totals = {row["total_matches"] for row in rows.values()}
    assert len(totals) == 1, rows

    # Every configuration must serve warm repeats faster than cold ones
    # (result cache answers identical queries outright).
    for row in rows.values():
        assert row["warm_ms_per_query"] < row["cold_ms_per_query"], row

    # The parallel-build bar: only meaningful with free cores to run the
    # worker processes on.  A single-core machine or shared CI runner still
    # records the numbers (see benchmarks/results/shard_scalability.txt)
    # but cannot fairly be gated on a hardware-sensitive wall-clock ratio.
    if timing_bars_enabled(min_cores=CORES_FOR_BAR):
        speedup = rows[4]["build_speedup"]
        assert speedup >= SPEEDUP_BAR, (
            f"4-shard parallel build reached only {speedup:.2f}x over the "
            f"1-shard baseline (bar: {SPEEDUP_BAR}x)"
        )
