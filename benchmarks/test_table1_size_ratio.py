"""Table 1: ratio of index size at mss=5 to the size at mss=1."""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_table1_size_ratio(runner) -> None:
    report = run_experiment(runner, "table1_size_ratio")
    result = report.result
    sizes = tuple(report.params["sentence_counts"])

    def ratio(count: int, coding: str) -> float:
        return result.filtered(sentences=count, coding=coding)[0][2]

    for count in sizes:
        # Paper shape: root-split shows the smallest growth when mss goes from 1
        # to 5; subtree interval the largest (paper: ~12-15x vs ~48-59x).
        assert ratio(count, "root-split") <= ratio(count, "filter") * 1.1
        assert ratio(count, "root-split") < ratio(count, "subtree-interval")
        assert ratio(count, "subtree-interval") / ratio(count, "root-split") >= 1.5
