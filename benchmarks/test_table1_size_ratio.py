"""Table 1: ratio of index size at mss=5 to the size at mss=1."""

from __future__ import annotations

from benchmarks.conftest import BASE_SIZES, save_result, scaled_tuple
from repro.bench.experiments import figure8_index_size, table1_size_ratio


def test_table1_size_ratio(benchmark, context, results_dir) -> None:
    sizes = scaled_tuple(BASE_SIZES["index_sizes"])

    def run():
        figure8 = figure8_index_size(context, sentence_counts=sizes)
        return table1_size_ratio(figure8)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, result, "table1_size_ratio.txt")

    def ratio(count: int, coding: str) -> float:
        return result.filtered(sentences=count, coding=coding)[0][2]

    for count in sizes:
        # Paper shape: root-split shows the smallest growth when mss goes from 1
        # to 5; subtree interval the largest (paper: ~12-15x vs ~48-59x).
        assert ratio(count, "root-split") <= ratio(count, "filter") * 1.1
        assert ratio(count, "root-split") < ratio(count, "subtree-interval")
        assert ratio(count, "subtree-interval") / ratio(count, "root-split") >= 1.5
