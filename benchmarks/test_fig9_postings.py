"""Figure 9: total number of postings for the three coding schemes."""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_figure9_posting_counts(runner) -> None:
    report = run_experiment(runner, "figure9_postings")
    result = report.result
    sizes = tuple(report.params["sentence_counts"])

    def postings(count: int, coding: str, mss: int) -> int:
        return result.filtered(sentences=count, coding=coding, mss=mss)[0][3]

    for count in sizes:
        # Paper shape 1: at mss=1 root-split and subtree interval store the same
        # number of postings (one per node).
        assert postings(count, "root-split", 1) == postings(count, "subtree-interval", 1)

        # Paper shape 2: filter-based has the fewest postings everywhere.
        for mss in (1, 2, 3, 4, 5):
            assert postings(count, "filter", mss) <= postings(count, "root-split", mss)
            assert postings(count, "root-split", mss) <= postings(count, "subtree-interval", mss)

        # Paper shape 3: the root-split vs subtree-interval gap widens with mss.
        gap2 = postings(count, "subtree-interval", 2) - postings(count, "root-split", 2)
        gap5 = postings(count, "subtree-interval", 5) - postings(count, "root-split", 5)
        assert gap5 >= gap2
