"""Figure 2: number of index keys (unique subtrees) vs corpus size."""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_figure2_index_keys(runner) -> None:
    report = run_experiment(runner, "figure2_index_keys")
    result = report.result
    counts = tuple(report.params["sentence_counts"])

    # Paper shape 1: the number of keys grows monotonically with the corpus size.
    for mss in (1, 2, 3, 4, 5):
        series = [row[2] for row in result.rows if row[1] == mss]
        assert series == sorted(series)

    # Paper shape 2: growth is sub-quadratic ("almost linear") -- going from the
    # second-largest to the largest corpus multiplies keys by far less than the
    # corpus-size ratio squared.
    largest, previous = counts[-1], counts[-2]
    for mss in (3, 5):
        big = result.filtered(sentences=largest, mss=mss)[0][2]
        small = result.filtered(sentences=previous, mss=mss)[0][2]
        assert big / max(1, small) <= (largest / previous) ** 1.5

    # Paper shape 3: larger mss always yields at least as many keys.
    for count in counts:
        per_mss = [result.filtered(sentences=count, mss=mss)[0][2] for mss in (1, 2, 3, 4, 5)]
        assert per_mss == sorted(per_mss)
