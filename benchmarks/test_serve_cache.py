"""Serving-layer benchmark: cold vs warm vs hot cache latency through QueryService."""

from __future__ import annotations

from benchmarks.conftest import BASE_SIZES, save_result, scaled
from repro.bench.experiments import serve_cold_warm


def test_serve_cold_vs_warm(benchmark, context, results_dir) -> None:
    corpus_size = scaled(BASE_SIZES["query_corpus"])

    result = benchmark.pedantic(
        lambda: serve_cold_warm(context, sentence_count=corpus_size, mss=3),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, result, "serve_cold_warm.txt")

    for row in result.as_dicts():
        # Warm passes skip parse + decomposition + B+Tree descents + posting
        # decoding, so they should beat the cold pass on every coding.  The
        # margin is ~1.15-1.2x on a quiet machine and the measurement is a
        # single round, so allow 10% scheduling noise rather than flaking.
        assert row["warm_ms_per_query"] < row["cold_ms_per_query"] * 1.10, row
        # Hot passes answer identical repeats from the result cache without
        # re-running joins; that layer dominates by orders of magnitude, so
        # these bounds stay strict.
        assert row["hot_ms_per_query"] < row["warm_ms_per_query"], row
        assert row["hot_speedup"] > 5.0, row
        # With caches larger than the workload's key set, the warm passes are
        # served almost entirely from memory.
        assert row["postings_hit_rate"] > 0.5, row
