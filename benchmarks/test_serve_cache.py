"""Serving-layer benchmark: cold vs warm vs hot cache latency through QueryService."""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.bench.guard import timing_bars_enabled


def test_serve_cold_vs_warm(runner) -> None:
    report = run_experiment(runner, "serve_cold_warm")
    result = report.result

    for row in result.as_dicts():
        # Warm passes skip parse + decomposition + B+Tree descents + posting
        # decoding, so they should beat the cold pass on every coding.  The
        # margin is ~1.15-1.2x on a quiet machine and the measurement is a
        # single round, so the bar goes through the shared CI/low-core guard
        # (with 10% scheduling-noise slack) rather than flaking.
        if timing_bars_enabled():
            assert row["warm_ms_per_query"] < row["cold_ms_per_query"] * 1.10, row
        # Hot passes answer identical repeats from the result cache without
        # re-running joins; that layer dominates by orders of magnitude, so
        # these bounds stay strict on any machine.
        assert row["hot_ms_per_query"] < row["warm_ms_per_query"], row
        assert row["hot_speedup"] > 5.0, row
        # With caches larger than the workload's key set, the warm passes are
        # served almost entirely from memory.
        assert row["postings_hit_rate"] > 0.5, row
