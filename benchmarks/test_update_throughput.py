"""Live-index benchmark: add throughput, delta-fraction latency, compaction.

Correctness is asserted unconditionally: the workload must see identical
match totals with the delta in memory, after compaction, and against a
fresh monolithic rebuild of the final corpus.  Timing columns are recorded
(``benchmarks/results/update_throughput.txt``) but never gated -- mutation
wall-clock on a shared 1-CPU runner is noise.
"""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.core.index import SubtreeIndex
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus
from repro.exec.executor import QueryExecutor


def test_update_throughput(runner, context) -> None:
    report = run_experiment(runner, "update_throughput")
    result = report.result
    corpus_size = report.params["sentence_count"]
    fractions = tuple(report.params["delta_fractions"])

    rows = {row["delta_fraction"]: row for row in result.as_dicts()}
    assert set(rows) == set(fractions)

    # Equivalence invariant: the delta-resident and compacted states answer
    # the workload identically, at every fraction.
    for row in rows.values():
        assert row["total_matches"] == row["total_matches_compacted"], row
        assert row["delta_trees"] == int(round(row["delta_fraction"] * corpus_size))

    # And against a from-scratch monolithic rebuild of the final corpus: the
    # 50%-delta configuration (base + extra trees) must see the same totals.
    extra_count = int(round(0.50 * corpus_size))
    trees = list(context.corpus(corpus_size))
    extra = CorpusGenerator(seed=context.seed + 104729).generate_list(extra_count)
    for position, tree in enumerate(extra):
        tree.tid = len(trees) + position
    trees = trees + extra
    index = SubtreeIndex.build(
        trees, mss=3, coding="root-split",
        path=context.index_path(corpus_size, "root-split-rebuilt", 3),
    )
    try:
        executor = QueryExecutor(index, store=Corpus(trees))
        rebuilt_total = sum(
            executor.execute(item.query).total_matches for item in context.wh_queries()
        )
    finally:
        index.close()
    assert rows[0.50]["total_matches"] == rebuilt_total

    # Adds must actually have gone through the WAL'd path.
    assert rows[0.50]["adds_per_sec"] > 0
    assert rows[0.50]["compact_seconds"] > 0
