"""Ablation: storage-layer choices (bulk load vs incremental inserts).

The subtree index bulk-loads its B+Tree from key-sorted posting lists
(Section 6.1 builds the index once over a static corpus).  This ablation
quantifies what that choice buys over naive per-key inserts; the experiment
itself checks both strategies produce identical lookup results.
"""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_ablation_bulk_load_vs_inserts(runner) -> None:
    report = run_experiment(runner, "ablation_storage")
    result = report.result

    times = {row[0]: row[1] for row in result.rows}
    sizes = {row[0]: row[2] for row in result.rows}
    assert set(times) == {"bulk load (sorted)", "per-key inserts"}
    # Bulk loading is faster and packs pages at least as tightly.
    assert times["bulk load (sorted)"] <= times["per-key inserts"]
    assert sizes["bulk load (sorted)"] <= sizes["per-key inserts"] * 1.05
