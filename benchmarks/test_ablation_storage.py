"""Ablation: storage-layer choices (bulk load vs incremental inserts).

The subtree index bulk-loads its B+Tree from key-sorted posting lists
(Section 6.1 builds the index once over a static corpus).  This ablation
quantifies what that choice buys over naive per-key inserts, and checks that
both strategies produce byte-identical lookup results.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import save_result, scaled
from repro.bench.results import ExperimentResult
from repro.coding import get_coding
from repro.core.enumeration import enumerate_key_occurrences
from repro.storage.bptree import BPlusTree

SENTENCES = 300
MSS = 3


def _posting_items(context, corpus_size: int):
    coding = get_coding("root-split")
    posting_lists = {}
    for tree in context.corpus(corpus_size):
        per_key = {}
        for key, occurrence in enumerate_key_occurrences(tree, MSS):
            per_key.setdefault(key, []).append(occurrence)
        for key, occurrences in per_key.items():
            posting_lists.setdefault(key, []).extend(coding.postings_from_occurrences(occurrences))
    return [(key, coding.encode_postings(posting_lists[key])) for key in sorted(posting_lists)]


def test_ablation_bulk_load_vs_inserts(benchmark, context, results_dir, tmp_path_factory) -> None:
    corpus_size = scaled(SENTENCES)
    items = _posting_items(context, corpus_size)
    directory = tmp_path_factory.mktemp("storage-ablation")

    def run() -> ExperimentResult:
        result = ExperimentResult(
            name="Ablation: B+Tree loading strategy",
            description="Building the index B+Tree by sorted bulk load vs one insert per key",
            columns=["strategy", "seconds", "file_bytes", "height"],
        )

        bulk_path = str(directory / "bulk.bpt")
        if os.path.exists(bulk_path):
            os.remove(bulk_path)
        started = time.perf_counter()
        bulk = BPlusTree(bulk_path)
        bulk.bulk_load(items)
        bulk_seconds = time.perf_counter() - started
        result.add_row("bulk load (sorted)", bulk_seconds, bulk.size_bytes(), bulk.height)

        insert_path = str(directory / "insert.bpt")
        if os.path.exists(insert_path):
            os.remove(insert_path)
        started = time.perf_counter()
        inserted = BPlusTree(insert_path)
        for key, value in items:
            inserted.insert(key, value)
        insert_seconds = time.perf_counter() - started
        result.add_row("per-key inserts", insert_seconds, inserted.size_bytes(), inserted.height)

        # Both trees must answer lookups identically.
        for key, value in items[:: max(1, len(items) // 200)]:
            assert bulk.get(key) == value == inserted.get(key)
        bulk.close()
        inserted.close()
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, result, "ablation_storage.txt")

    times = {row[0]: row[1] for row in result.rows}
    sizes = {row[0]: row[2] for row in result.rows}
    # Bulk loading is faster and packs pages at least as tightly.
    assert times["bulk load (sorted)"] <= times["per-key inserts"]
    assert sizes["bulk load (sorted)"] <= sizes["per-key inserts"] * 1.05
