"""Figure 11: average query runtime by number of matches, per coding and mss."""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.workloads.binning import average


def test_figure11_runtime_by_matches(runner) -> None:
    report = run_experiment(runner, "figure11_runtime_by_matches")
    result = report.result

    def mean_runtime(coding: str, mss: int) -> float:
        rows = result.filtered(coding=coding, mss=mss)
        return average([row[4] for row in rows])

    # Paper shape 1: root-split beats subtree interval in all cases.
    for mss in (1, 2, 3):
        assert mean_runtime("root-split", mss) <= mean_runtime("subtree-interval", mss) * 1.15

    # Paper shape 2: runtimes decrease as mss grows, for every coding.
    for coding in ("filter", "root-split", "subtree-interval"):
        assert mean_runtime(coding, 3) <= mean_runtime(coding, 1) * 1.15

    # Paper shape 3: on the bins with many matches the filtering phase dominates
    # filter-based coding, so root-split wins there at larger mss.
    bins_present = [row[2] for row in result.filtered(coding="filter", mss=3)]
    largest_bin = bins_present[-1]
    filter_rows = result.filtered(coding="filter", mss=3, match_bin=largest_bin)
    rs_rows = result.filtered(coding="root-split", mss=3, match_bin=largest_bin)
    if filter_rows and rs_rows:
        assert rs_rows[0][4] <= filter_rows[0][4] * 1.25
