"""Figure 3: average number of extracted subtrees vs root branching factor."""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_figure3_branching(runner) -> None:
    report = run_experiment(runner, "figure3_branching")
    result = report.result

    def avg(branching: int, size: int) -> float:
        rows = result.filtered(branching_factor=branching, subtree_size=size)
        return rows[0][2] if rows else 0.0

    # Paper shape: nodes with higher branching factors root more subtrees on
    # average, and the effect is stronger for larger subtree sizes.
    present = sorted({row[0] for row in result.rows if row[0] >= 1})
    low, high = present[0], present[-1]
    assert high > low
    for size in (3, 4, 5):
        assert avg(high, size) >= avg(low, size)
    assert avg(high, 5) >= avg(high, 2)
