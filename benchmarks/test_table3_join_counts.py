"""Table 3: average number of joins per WH query group, minRC vs optimalCover."""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.workloads.wh import WH_GROUPS


def test_table3_join_counts(runner) -> None:
    report = run_experiment(runner, "table3_join_counts")
    result = report.result

    def joins(group: str, mss: int) -> tuple[float, float]:
        row = result.filtered(group=group, mss=mss)[0]
        return row[2], row[3]  # (root-split, subtree-interval)

    for group in WH_GROUPS:
        # Paper shape 1: optimalCover (subtree interval) never needs more joins
        # than minRC (root-split).
        for mss in (2, 3, 4, 5):
            rs, si = joins(group, mss)
            assert si <= rs + 1e-9

        # Paper shape 2: the number of joins decreases as mss grows.
        rs_series = [joins(group, mss)[0] for mss in (2, 3, 4, 5)]
        si_series = [joins(group, mss)[1] for mss in (2, 3, 4, 5)]
        assert rs_series[0] >= rs_series[-1]
        assert si_series[0] >= si_series[-1]
        assert all(value >= 0 for value in rs_series + si_series)
