"""Table 2: SI with root-split coding vs ATreeGrep and the frequency-based approach."""

from __future__ import annotations

import os

from benchmarks.conftest import BASE_SIZES, save_result, scaled
from repro.bench.experiments import table2_system_comparison
from repro.workloads.binning import average

#: Minimum cores for the timing-ratio bars: on a 1-CPU box any concurrent
#: load (the rest of the suite, the host) lands on the measured core.
CORES_FOR_BARS = 2


def test_table2_system_comparison(benchmark, context, results_dir) -> None:
    # Use the largest scalability corpus: the Table 2 gap is driven by
    # validation costs that grow with the corpus size.
    corpus_size = scaled(BASE_SIZES["scalability"][-1])

    result = benchmark.pedantic(
        lambda: table2_system_comparison(context, sentence_count=corpus_size),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, result, "table2_system_comparison.txt")

    def avg_for(system: str) -> float:
        return average([row[2] for row in result.rows if row[1] == system])

    # Correctness of the experiment itself is asserted unconditionally:
    # every system must have been measured on every frequency class.
    classes = {row[0] for row in result.rows}
    systems = {row[1] for row in result.rows}
    assert {"RS", "ATG", "FB(0.001)", "FB(0.01)", "FB(0.1)"} <= systems
    for system in systems:
        measured = {row[0] for row in result.rows if row[1] == system}
        assert measured == classes, f"{system} missing classes {classes - measured}"
    assert all(row[2] >= 0 for row in result.rows)

    # The timing-ratio bars are hardware-sensitive: shared CI runners
    # (GitHub sets CI=true) and 1-CPU boxes are too noisy/throttled to gate
    # a wall-clock ordering on (mirrors the shard_scalability guard).  The
    # measured factors are still recorded in benchmarks/results/.
    if os.environ.get("CI") or (os.cpu_count() or 1) < CORES_FOR_BARS:
        return

    rs = avg_for("RS")
    atreegrep = avg_for("ATG")
    frequency = min(avg_for("FB(0.001)"), avg_for("FB(0.01)"), avg_for("FB(0.1)"))

    # Paper shape: the subtree index with root-split coding beats both
    # validation-based baselines on average.  The paper reports >= 10x per class
    # at 100k-1M sentences with a compiled implementation; at this scale (and
    # with per-posting costs inflated by pure Python) we assert the ordering and
    # record the measured factors in EXPERIMENTS.md.
    assert rs < atreegrep, f"RS {rs:.4f}s vs ATreeGrep {atreegrep:.4f}s"
    assert rs < frequency, f"RS {rs:.4f}s vs frequency-based {frequency:.4f}s"

    # Per-class: on the all-high-frequency class (the expensive one for
    # validation-based engines, whose candidate sets approach the whole corpus)
    # root-split clearly wins.
    rs_h = [row[2] for row in result.filtered(**{"class": "H", "system": "RS"})]
    atg_h = [row[2] for row in result.filtered(**{"class": "H", "system": "ATG"})]
    if rs_h and atg_h:
        assert rs_h[0] <= atg_h[0]
