"""Table 2: SI with root-split coding vs ATreeGrep and the frequency-based approach."""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.bench.guard import timing_bars_enabled
from repro.workloads.binning import average


def test_table2_system_comparison(runner) -> None:
    report = run_experiment(runner, "table2_system_comparison")
    result = report.result

    def avg_for(system: str) -> float:
        return average([row[2] for row in result.rows if row[1] == system])

    # Correctness of the experiment itself is asserted unconditionally:
    # every system must have been measured on every frequency class.
    classes = {row[0] for row in result.rows}
    systems = {row[1] for row in result.rows}
    assert {"RS", "ATG", "FB(0.001)", "FB(0.01)", "FB(0.1)"} <= systems
    for system in systems:
        measured = {row[0] for row in result.rows if row[1] == system}
        assert measured == classes, f"{system} missing classes {classes - measured}"
    assert all(row[2] >= 0 for row in result.rows)

    # The timing-ratio bars are hardware-sensitive: shared CI runners and
    # 1-CPU boxes are too noisy/throttled to gate a wall-clock ordering on
    # (the shared guard in repro.bench.guard).  The measured factors are
    # still recorded in benchmarks/results/ either way.
    if not timing_bars_enabled():
        return

    rs = avg_for("RS")
    atreegrep = avg_for("ATG")
    frequency = min(avg_for("FB(0.001)"), avg_for("FB(0.01)"), avg_for("FB(0.1)"))

    # Paper shape: the subtree index with root-split coding beats both
    # validation-based baselines on average.  The paper reports >= 10x per class
    # at 100k-1M sentences with a compiled implementation; at this scale (and
    # with per-posting costs inflated by pure Python) we assert the ordering and
    # record the measured factors in EXPERIMENTS.md.
    assert rs < atreegrep, f"RS {rs:.4f}s vs ATreeGrep {atreegrep:.4f}s"
    assert rs < frequency, f"RS {rs:.4f}s vs frequency-based {frequency:.4f}s"

    # Per-class: on the all-high-frequency class (the expensive one for
    # validation-based engines, whose candidate sets approach the whole corpus)
    # root-split clearly wins.
    rs_h = [row[2] for row in result.filtered(**{"class": "H", "system": "RS"})]
    atg_h = [row[2] for row in result.filtered(**{"class": "H", "system": "ATG"})]
    if rs_h and atg_h:
        assert rs_h[0] <= atg_h[0]
