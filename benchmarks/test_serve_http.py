"""Serving-layer benchmark: closed-loop throughput through the HTTP server."""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.bench.guard import timing_bars_enabled


def test_serve_http_throughput(runner) -> None:
    report = run_experiment(runner, "serve_http_throughput")
    rows = report.result.as_dicts()
    assert rows, "the experiment produced no rows"

    for row in rows:
        # Correctness invariants, valid on any machine: the HTTP hop may
        # add latency but never errors or different answers.
        assert row["errors"] == 0, row
        assert row["mismatches"] == 0, row
        assert row["requests"] > 0, row
        assert row["qps"] > 0, row
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"], row
        # The traced pass answers the same load with request tracing on;
        # it must still complete (its errors/mismatches are summed into
        # the exact columns above) and the overhead column must agree.
        assert row["qps_traced"] > 0, row
        assert row["trace_overhead_pct"] < 100.0, row

        if timing_bars_enabled():
            # Little's law sanity check of the closed loop: with N clients
            # each waiting for its response, mean in-flight latency is
            # N / qps.  The median should sit within a generous band of it
            # (heavy tails push the mean above the median, scheduling noise
            # in either direction).
            littles_ms = row["concurrency"] / row["qps"] * 1000.0
            assert 0.1 * littles_ms < row["p50_ms"] < 10.0 * littles_ms, row
