"""Figure 12: average query runtime by query size (queries with enough matches)."""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.workloads.binning import average


def test_figure12_runtime_by_query_size(runner) -> None:
    report = run_experiment(runner, "figure12_runtime_by_size")
    result = report.result

    # The workload contains small and larger queries with enough matches.
    sizes_present = sorted({row[2] for row in result.rows})
    assert sizes_present, "no query sizes survived the match threshold"
    assert len(sizes_present) >= 3

    # Paper shape: root-split stays at least competitive with subtree interval
    # on the larger query sizes at mss >= 2.
    large_sizes = [size for size in sizes_present if size >= max(sizes_present) - 2]
    for mss in (2, 3):
        rs = average(
            [row[4] for row in result.filtered(coding="root-split", mss=mss) if row[2] in large_sizes]
        )
        si = average(
            [row[4] for row in result.filtered(coding="subtree-interval", mss=mss) if row[2] in large_sizes]
        )
        if rs and si:
            assert rs <= si * 1.5
