"""Figure 10: index construction time for the three coding schemes."""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_figure10_build_time(runner) -> None:
    report = run_experiment(runner, "figure10_build_time")
    result = report.result
    sizes = tuple(report.params["sentence_counts"])

    def build_time(count: int, coding: str, mss: int) -> float:
        return result.filtered(sentences=count, coding=coding, mss=mss)[0][3]

    largest = sizes[-1]
    # Paper shape 1: subtree interval takes the longest to build at large mss.
    assert build_time(largest, "subtree-interval", 5) >= build_time(largest, "root-split", 5)
    assert build_time(largest, "subtree-interval", 5) >= build_time(largest, "filter", 5)

    # Paper shape 2: construction time grows with mss for every coding.
    for coding in ("filter", "root-split", "subtree-interval"):
        assert build_time(largest, coding, 5) >= build_time(largest, coding, 1)

    # Paper shape 3: construction time grows with the corpus size.
    for coding in ("filter", "root-split", "subtree-interval"):
        assert build_time(sizes[-1], coding, 3) >= build_time(sizes[0], coding, 3)
