"""Shared fixtures for the benchmark harness.

Every ``benchmarks/test_*`` file is a thin wrapper over a registered
:class:`~repro.bench.config.ExperimentConfig`: the session-scoped
:class:`~repro.bench.runner.ExperimentRunner` resolves the config, runs it
over one shared :class:`~repro.bench.context.ExperimentContext` (corpora and
indexes are built once across files) and writes both the human-readable
``<name>.txt`` table and the machine-readable ``BENCH_<name>.json`` document
into ``benchmarks/results/`` -- the directory ``repro bench --gate`` diffs
across commits.

Corpus sizes live in the registry (``repro.bench.registry``); raise or
shrink all of them with the ``REPRO_BENCH_SCALE`` environment variable
(a float multiplier, default 1.0), which the runner picks up itself.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench.runner import ExperimentRunner, RunReport
from repro.bench.schema import validate_document

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner(tmp_path_factory) -> ExperimentRunner:
    """The shared experiment runner (one context, artefacts in results/)."""
    workdir = tmp_path_factory.mktemp("repro-bench")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with ExperimentRunner(workdir=str(workdir), out_dir=str(RESULTS_DIR), seed=17) as bench:
        yield bench


@pytest.fixture(scope="session")
def context(runner):
    """The runner's experiment laboratory, for tests needing raw corpora."""
    return runner.context


def run_experiment(runner: ExperimentRunner, name: str, **overrides) -> RunReport:
    """Run a registered experiment and check both artefacts landed.

    The JSON document is re-read from disk and schema-validated so every
    benchmark run doubles as a check that its ``BENCH_<name>.json`` is
    well-formed for the regression gate.
    """
    report = runner.run(name, overrides=overrides or None)
    assert report.text_path is not None and os.path.exists(report.text_path)
    assert report.json_path is not None and os.path.exists(report.json_path)
    with open(report.json_path, encoding="utf-8") as handle:
        assert validate_document(json.load(handle)) == []
    return report
