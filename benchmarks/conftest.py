"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at laptop
scale.  A single :class:`~repro.bench.context.ExperimentContext` is shared by
all benchmark files so corpora and indexes are built once; rendered result
tables are written to ``benchmarks/results/`` so they can be pasted into
EXPERIMENTS.md.

Scales can be raised with the ``REPRO_BENCH_SCALE`` environment variable
(a float multiplier applied to corpus sizes; default 1.0).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.context import ExperimentContext
from repro.bench.results import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Baseline corpus sizes; multiplied by REPRO_BENCH_SCALE.
BASE_SIZES = {
    "fig2_counts": (1, 10, 100, 1_000),
    "fig3_sentences": 1_000,
    "index_sizes": (100, 400, 1_200),
    "query_corpus": 1_200,
    "scalability": (300, 600, 1_200, 2_400),
}


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int) -> int:
    """Scale a corpus size by the REPRO_BENCH_SCALE multiplier."""
    return max(1, int(value * _scale()))


def scaled_tuple(values) -> tuple:
    """Scale a tuple of corpus sizes."""
    return tuple(scaled(value) for value in values)


@pytest.fixture(scope="session")
def context(tmp_path_factory) -> ExperimentContext:
    """The shared experiment laboratory."""
    workdir = tmp_path_factory.mktemp("repro-bench")
    with ExperimentContext(workdir=str(workdir), seed=17) as ctx:
        yield ctx


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, result: ExperimentResult, filename: str) -> None:
    """Write a rendered experiment table under benchmarks/results/."""
    (results_dir / filename).write_text(result.to_text() + "\n", encoding="utf-8")
