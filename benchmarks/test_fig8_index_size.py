"""Figure 8: index size for the three coding schemes."""

from __future__ import annotations

from benchmarks.conftest import BASE_SIZES, save_result, scaled_tuple
from repro.bench.experiments import figure8_index_size


def test_figure8_index_size(benchmark, context, results_dir) -> None:
    sizes = scaled_tuple(BASE_SIZES["index_sizes"])

    result = benchmark.pedantic(
        lambda: figure8_index_size(context, sentence_counts=sizes),
        rounds=1,
        iterations=1,
    )
    save_result(results_dir, result, "figure8_index_size.txt")

    def size_of(count: int, coding: str, mss: int) -> int:
        return result.filtered(sentences=count, coding=coding, mss=mss)[0][3]

    for count in sizes:
        # Paper shape 1: filter-based is the smallest index, subtree interval the largest.
        for mss in (2, 3, 4, 5):
            assert size_of(count, "filter", mss) <= size_of(count, "root-split", mss)
            assert size_of(count, "root-split", mss) <= size_of(count, "subtree-interval", mss)

        # Paper shape 2: the gap between root-split and subtree interval widens with mss.
        gap_small = size_of(count, "subtree-interval", 2) / size_of(count, "root-split", 2)
        gap_large = size_of(count, "subtree-interval", 5) / size_of(count, "root-split", 5)
        assert gap_large >= gap_small * 0.9

    # Paper shape 3 (headline claim): root-split reduces the size of the interval
    # coding index by 50-80% for larger subtree sizes.
    largest = sizes[-1]
    reduction = 1 - size_of(largest, "root-split", 5) / size_of(largest, "subtree-interval", 5)
    assert reduction >= 0.4, f"root-split reduction was only {reduction:.0%}"
