"""Figure 8: index size for the three coding schemes."""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_figure8_index_size(runner) -> None:
    report = run_experiment(runner, "figure8_index_size")
    result = report.result
    sizes = tuple(report.params["sentence_counts"])

    def size_of(count: int, coding: str, mss: int) -> int:
        return result.filtered(sentences=count, coding=coding, mss=mss)[0][3]

    for count in sizes:
        # Paper shape 1: filter-based is the smallest index, subtree interval the largest.
        for mss in (2, 3, 4, 5):
            assert size_of(count, "filter", mss) <= size_of(count, "root-split", mss)
            assert size_of(count, "root-split", mss) <= size_of(count, "subtree-interval", mss)

        # Paper shape 2: the gap between root-split and subtree interval widens with mss.
        gap_small = size_of(count, "subtree-interval", 2) / size_of(count, "root-split", 2)
        gap_large = size_of(count, "subtree-interval", 5) / size_of(count, "root-split", 5)
        assert gap_large >= gap_small * 0.9

    # Paper shape 3 (headline claim): root-split reduces the size of the interval
    # coding index by 50-80% for larger subtree sizes.
    largest = sizes[-1]
    reduction = 1 - size_of(largest, "root-split", 5) / size_of(largest, "subtree-interval", 5)
    assert reduction >= 0.4, f"root-split reduction was only {reduction:.0%}"
