"""Serving-layer hardening benchmarks: open-loop overload and mixed read/write.

``serve_overload`` drives the HTTP server open-loop (arrivals on a fixed
schedule, independent of responses) below and far above its calibrated
capacity: above capacity the server must *shed* load with clean 503s, and
every request it does accept must still return the exact offline answer.

``serve_mixed_rw`` queries a live (mutable) index while a writer thread
adds and deletes trees, then re-verifies every query against a settled
snapshot: concurrent writes may change answers mid-flight but must never
produce errors, and once the writes are balanced out the served answers
must match a fresh offline service exactly.
"""

from __future__ import annotations

from benchmarks.conftest import run_experiment
from repro.bench.guard import timing_bars_enabled


def test_serve_overload(runner) -> None:
    report = run_experiment(runner, "serve_overload")
    rows = report.result.as_dicts()
    assert rows, "the experiment produced no rows"
    by_load = {row["load"]: row for row in rows}
    assert set(by_load) == {"below", "above"}, sorted(by_load)

    for row in rows:
        # Correctness invariants, valid on any machine: overload may shed
        # requests but never errors them or answers them wrongly.
        assert row["errors"] == 0, row
        assert row["mismatches"] == 0, row
        assert row["offered"] > 0, row
        assert row["accepted"] > 0, row
        assert row["accepted"] + row["shed"] <= row["offered"], row

    # Above calibrated capacity the bounded queue MUST shed: an unbounded
    # server would instead queue forever and time the run out.
    assert by_load["above"]["shed"] > 0, by_load["above"]

    if timing_bars_enabled():
        # Below capacity nearly everything is accepted and latency is tame;
        # above capacity shedding keeps the accepted requests' p99 bounded
        # (the whole point of backpressure: reject, don't queue).
        below, above = by_load["below"], by_load["above"]
        assert below["shed"] <= 0.05 * below["offered"], below
        assert above["p99_ms"] < 5_000.0, above
        assert below["p50_ms"] <= below["p99_ms"], below


def test_serve_mixed_rw(runner) -> None:
    report = run_experiment(runner, "serve_mixed_rw")
    rows = report.result.as_dicts()
    assert rows, "the experiment produced no rows"
    by_phase = {row["phase"]: row for row in rows}
    assert set(by_phase) == {"mutating", "settled"}, sorted(by_phase)

    for row in rows:
        assert row["errors"] == 0, row
        assert row["mismatches"] == 0, row
        assert row["requests"] > 0, row
        assert row["qps"] > 0, row

    # The writer must actually have interleaved with the reads, and must
    # have balanced its books (every add deleted) before verification.
    mutating = by_phase["mutating"]
    assert mutating["adds"] > 0, mutating
    assert mutating["deletes"] > 0, mutating
    assert mutating["adds"] == mutating["deletes"], mutating
