"""Figure 13: average query runtime as the corpus size grows (mss = 3)."""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_figure13_scalability(runner) -> None:
    report = run_experiment(runner, "figure13_scalability")
    result = report.result
    sizes = tuple(report.params["sentence_counts"])

    def runtime(count: int, coding: str) -> float:
        return result.filtered(sentences=count, coding=coding)[0][2]

    smallest, largest = sizes[0], sizes[-1]
    corpus_growth = largest / smallest

    for coding in ("filter", "root-split", "subtree-interval"):
        # Paper shape 1: runtime grows with the corpus size...
        assert runtime(largest, coding) >= runtime(smallest, coding) * 0.8
        # ...approximately linearly (allow generous slack at this small scale).
        growth = runtime(largest, coding) / max(runtime(smallest, coding), 1e-9)
        assert growth <= corpus_growth * 3

    # Paper shape 2: root-split scales at least as well as the other codings.
    rs_growth = runtime(largest, "root-split") / max(runtime(smallest, "root-split"), 1e-9)
    filter_growth = runtime(largest, "filter") / max(runtime(smallest, "filter"), 1e-9)
    assert rs_growth <= filter_growth * 1.5
