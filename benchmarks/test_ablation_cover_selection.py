"""Ablation: decomposition choices called out in DESIGN.md.

Two design knobs of the subtree index are ablated here, both over the cached
query corpus and the root-split index at mss = 3:

* **padding (max-covers)** -- Section 5.2.1 argues for covers whose subtrees
  are as large as possible; padding towards ``mss`` trades extra key length
  for shorter posting lists.
* **selectivity-aware cover selection** -- the paper's future-work extension
  (implemented in :mod:`repro.query.optimizer`): pick among candidate covers
  using posting-list statistics instead of always taking the default cover.

The assertions are deliberately loose (ablation results are informational),
but the measured tables land in ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BASE_SIZES, save_result, scaled
from repro.bench.results import ExperimentResult
from repro.exec.executor import QueryExecutor
from repro.query.optimizer import OptimizingExecutor
from repro.workloads.binning import average

MSS = 3


def _workload(context, corpus_size):
    queries = [item.query for item in context.wh_queries()]
    queries.extend(item.query for item in context.fb_queries(corpus_size))
    return queries


def _run(executor, queries):
    times = []
    matches = {}
    for query in queries:
        started = time.perf_counter()
        result = executor.execute(query)
        times.append(time.perf_counter() - started)
        matches[query.to_string()] = result.total_matches
    return average(times), matches


def test_ablation_padding_and_cover_selection(benchmark, context, results_dir) -> None:
    corpus_size = scaled(BASE_SIZES["query_corpus"])
    index = context.subtree_index(corpus_size, "root-split", MSS)
    store = context.tree_store(corpus_size)
    queries = _workload(context, corpus_size)

    def run() -> ExperimentResult:
        result = ExperimentResult(
            name="Ablation: cover construction",
            description=(
                "Average query runtime of the root-split index (mss=3) under different "
                "decomposition policies"
            ),
            columns=["policy", "avg_seconds", "total_matches"],
        )
        variants = {
            "minRC + padding (default)": QueryExecutor(index, store=store, pad=True),
            "minRC, no padding": QueryExecutor(index, store=store, pad=False),
            "selectivity-optimised": OptimizingExecutor(index, store=store),
        }
        baseline_matches = None
        for name, executor in variants.items():
            avg_seconds, matches = _run(executor, queries)
            if baseline_matches is None:
                baseline_matches = matches
            else:
                # All policies must return identical answers.
                assert matches == baseline_matches, f"policy {name} changed query results"
            result.add_row(name, avg_seconds, sum(matches.values()))
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(results_dir, result, "ablation_cover_selection.txt")

    runtimes = {row[0]: row[1] for row in result.rows}
    # The optimiser should never be dramatically worse than the default policy.
    assert runtimes["selectivity-optimised"] <= runtimes["minRC + padding (default)"] * 1.5
    # All variants complete in sane time at this scale.
    assert all(value < 5.0 for value in runtimes.values())
