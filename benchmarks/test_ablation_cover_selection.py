"""Ablation: decomposition choices called out in DESIGN.md.

Two design knobs of the subtree index are ablated, both over the cached
query corpus and the root-split index at mss = 3:

* **padding (max-covers)** -- Section 5.2.1 argues for covers whose subtrees
  are as large as possible; padding towards ``mss`` trades extra key length
  for shorter posting lists.
* **selectivity-aware cover selection** -- the paper's future-work extension
  (implemented in :mod:`repro.query.optimizer`): pick among candidate covers
  using posting-list statistics instead of always taking the default cover.

The experiment itself raises if any policy changes query answers; the
assertions here are deliberately loose (ablation results are informational),
and the measured tables land in ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from benchmarks.conftest import run_experiment


def test_ablation_padding_and_cover_selection(runner) -> None:
    report = run_experiment(runner, "ablation_cover_selection")
    result = report.result

    runtimes = {row[0]: row[1] for row in result.rows}
    # All three decomposition policies were measured.
    assert set(runtimes) == {
        "minRC + padding (default)",
        "minRC, no padding",
        "selectivity-optimised",
    }
    # All policies must return identical answers (checked while measuring).
    totals = {row[2] for row in result.rows}
    assert len(totals) == 1, result.rows
    # The optimiser should never be dramatically worse than the default policy.
    assert runtimes["selectivity-optimised"] <= runtimes["minRC + padding (default)"] * 1.5
    # All variants complete in sane time at this scale.
    assert all(value < 5.0 for value in runtimes.values())
