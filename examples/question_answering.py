#!/usr/bin/env python3
"""Question answering over parsed text, in the spirit of the paper's Figure 1.

The paper motivates subtree indexing with the TREC question *"What kind of
animal is agouti?"*: instead of keyword search, the user parses the statement
form of the question ("agouti is a ...") and matches its parse tree against a
corpus of parsed sentences; the node aligned with the answer slot is the
answer candidate.

This example reproduces that workflow end to end:

1. a small corpus of parsed sentences is assembled (a few hand-written
   definitional sentences, including the Figure 1 sentence, plus synthetic
   background noise),
2. a subtree index with root-split coding is built over it,
3. the question is expressed as a structural query with the answer slot left
   as an unconstrained noun, and
4. for every match, the answer noun is extracted from the matching tree.

Run it from the repository root::

    python examples/question_answering.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Corpus, CorpusGenerator, ParseTree, QueryExecutor, SubtreeIndex, parse_penn, parse_query
from repro.trees.matching import find_matches

#: Hand-written definitional sentences (already parsed).  The first one is the
#: matching sentence of Figure 1(b) in the paper.
DEFINITIONAL_SENTENCES = [
    "(ROOT (S (NP (DT The) (NNS agouti)) (VP (VBZ is) (NP (DT a) (JJ short-tailed) (, ,) "
    "(JJ plant-eating) (NN rodent)))))",
    "(ROOT (S (NP (DT The) (NN okapi)) (VP (VBZ is) (NP (DT a) (JJ forest-dwelling) (NN mammal)))))",
    "(ROOT (S (NP (DT The) (NN quokka)) (VP (VBZ is) (NP (DT a) (JJ small) (NN marsupial)))))",
    "(ROOT (S (NP (DT The) (NN aardvark)) (VP (VBZ is) (NP (DT a) (JJ nocturnal) (NN burrower)))))",
    "(ROOT (S (NP (DT The) (NNS agouti)) (VP (VBZ lives) (PP (IN in) (NP (NN forest) (NNS habitats))))))",
]

#: Structural question templates: the question word is dropped, the statement
#: skeleton is parsed, the answer slot is the bare NN under the object NP.
QUESTIONS = {
    "What kind of animal is the agouti?": "S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT)(NN)))",
    "What kind of animal is the okapi?": "S(NP(NN(okapi)))(VP(VBZ(is))(NP(DT)(NN)))",
    "What is the quokka?": "S(NP(NN(quokka)))(VP(VBZ(is))(NP(DT)(NN)))",
}


def build_corpus() -> Corpus:
    """Definitional sentences mixed into a synthetic background corpus."""
    corpus = Corpus(CorpusGenerator(seed=7).generate(500))
    next_tid = len(corpus)
    for offset, text in enumerate(DEFINITIONAL_SENTENCES):
        corpus.add(ParseTree(parse_penn(text), tid=next_tid + offset))
    return corpus


def answer_from_match(tree: ParseTree, query_text: str) -> str:
    """Extract the noun filling the answer slot of a matched sentence."""
    query = parse_query(query_text)
    for match_root in find_matches(query.root, tree):
        # The answer slot is the NN child of the object NP (the last NP child
        # of the VP in the template).
        for vp in match_root.find_label("VP"):
            for np in vp.find_label("NP"):
                nouns = [leaf.label for nn in np.find_label("NN") for leaf in nn.leaves()]
                if nouns:
                    return nouns[-1]
    return "(no answer found)"


def main() -> None:
    corpus = build_corpus()
    workdir = Path(tempfile.mkdtemp(prefix="repro-qa-"))
    index = SubtreeIndex.build(corpus, mss=3, coding="root-split", path=str(workdir / "qa.si"))
    executor = QueryExecutor(index, store=corpus)

    print(f"corpus: {len(corpus)} parsed sentences, index: {index.key_count:,} keys\n")

    for question, template in QUESTIONS.items():
        query = parse_query(template)
        result = executor.execute(query)
        print(f"Q: {question}")
        print(f"   structural query: {template}")
        print(f"   matched {result.total_matches} sentence(s) in {result.stats.elapsed_seconds * 1000:.1f} ms")
        for tid in result.matched_tids:
            tree = corpus.get(tid)
            answer = answer_from_match(tree, template)
            sentence = " ".join(tree.tokens())
            print(f"   -> answer: {answer!r}   (from: \"{sentence}\")")
        if not result.matches_per_tree:
            print("   -> no matching sentence in the corpus")
        print()

    index.close()


if __name__ == "__main__":
    main()
