#!/usr/bin/env python3
"""Serve concurrent queries from one QueryService behind a thread pool.

The service's caches are lock-striped and the B+Tree serialises only its
cache-missing descents, so many threads can share one open index.  This demo

1. builds a small index,
2. replays a skewed workload (a few hot templates, many repeats) through a
   ``ThreadPoolExecutor`` at several pool sizes, and
3. prints the per-pool throughput plus the cache hit rates that make the
   hot path lock-free.

Run it from the repository root::

    python examples/concurrent_service.py
"""

from __future__ import annotations

import random
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import Corpus, CorpusGenerator, QueryService, SubtreeIndex

#: A skewed template mix: the first entries are "hot" and repeat the most.
QUERY_TEMPLATES = [
    "NP(DT)(NN)",
    "S(NP)(VP)",
    "VP(VBZ)(NP)",
    "NP(DT)(JJ)(NN)",
    "S(NP)(VP(VBZ))",
    "S(//NN)",
    "VP(VBZ)(NP(DT)(NN))",
    "NP//NN",
]


def build_workload(requests: int, seed: int = 13) -> list:
    """A Zipf-ish request stream over the templates (hot heads, long tail)."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(QUERY_TEMPLATES))]
    return rng.choices(QUERY_TEMPLATES, weights=weights, k=requests)


def main() -> None:
    corpus = Corpus(CorpusGenerator(seed=42).generate(1_000))
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    index = SubtreeIndex.build(corpus, mss=3, coding="root-split", path=str(workdir / "c.si"))
    print(f"index: {index.key_count:,} keys over {len(corpus)} trees\n")

    workload = build_workload(requests=2_000)
    baseline = None
    for pool_size in (1, 2, 4, 8):
        index.reset_probe_stats()
        service = QueryService(index, store=corpus)
        # One warm-up pass per template so every pool size measures the same
        # steady serving state rather than its own cache-fill transient.
        for text in QUERY_TEMPLATES:
            service.run(text)

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            matches = list(pool.map(lambda text: service.run(text).total_matches, workload))
        elapsed = time.perf_counter() - started

        stats = service.stats()
        throughput = len(workload) / elapsed
        baseline = baseline or throughput
        print(
            f"threads={pool_size}: {throughput:8,.0f} queries/s "
            f"({elapsed * 1000:.0f} ms for {len(workload)} requests, "
            f"x{throughput / baseline:.2f} vs 1 thread)"
        )
        print(
            f"  caches: results {stats.results.hit_rate:.1%}, "
            f"plans {stats.plans.hit_rate:.1%}, postings {stats.postings.hit_rate:.1%} "
            f"| index descents {stats.probes.tree_descents}"
        )
        service.clear_caches()
        index.attach_postings_cache(None)

    # Sanity: every request got a deterministic answer.
    assert all(isinstance(count, int) for count in matches)
    index.close()
    print("\ndone; all requests answered from one shared service instance")


if __name__ == "__main__":
    main()
