#!/usr/bin/env python3
"""Compare the three posting codings on one corpus: size, build time, query time.

This example reproduces, at demo scale, the trade-off story of the paper's
Section 6: the filter-based coding gives the smallest index but pays a
filtering phase at query time; subtree-interval coding gives join-only
evaluation but a much larger index; root-split coding keeps the index small
*and* answers queries with root-only joins.

Run it from the repository root::

    python examples/coding_tradeoffs.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import Corpus, CorpusGenerator, QueryExecutor, SubtreeIndex, parse_query

CODINGS = ("filter", "root-split", "subtree-interval")
MSS = 3

QUERIES = [
    "NP(DT)(NN)",
    "VP(VBZ)(NP)",
    "S(NP(DT)(NN))(VP)",
    "S(NP)(VP(VBZ)(NP(DT)(NN)))",
    "PP(IN)(NP(NN))",
    "S(//NNS)",
]


def main() -> None:
    corpus = Corpus(CorpusGenerator(seed=11).generate(1_500))
    workdir = Path(tempfile.mkdtemp(prefix="repro-tradeoffs-"))
    print(f"corpus: {len(corpus)} sentences, {corpus.total_nodes():,} nodes; mss = {MSS}\n")

    # ------------------------------------------------------------------
    # Build one index per coding and compare their footprints.
    # ------------------------------------------------------------------
    indexes = {}
    print(f"{'coding':18s} {'keys':>10s} {'postings':>12s} {'size (KiB)':>12s} {'build (s)':>10s}")
    for coding in CODINGS:
        index = SubtreeIndex.build(corpus, mss=MSS, coding=coding, path=str(workdir / f"{coding}.si"))
        indexes[coding] = index
        print(
            f"{coding:18s} {index.key_count:>10,} {index.posting_count:>12,} "
            f"{index.size_bytes() / 1024:>12,.0f} {index.metadata.build_seconds:>10.2f}"
        )
    print()

    # ------------------------------------------------------------------
    # Compare query response times.
    # ------------------------------------------------------------------
    executors = {coding: QueryExecutor(index, store=corpus) for coding, index in indexes.items()}
    header = f"{'query':34s}" + "".join(f"{coding:>20s}" for coding in CODINGS) + f"{'matches':>10s}"
    print(header)
    totals = {coding: 0.0 for coding in CODINGS}
    for text in QUERIES:
        query = parse_query(text)
        row = f"{text:34s}"
        matches = 0
        for coding in CODINGS:
            started = time.perf_counter()
            result = executors[coding].execute(query)
            elapsed = time.perf_counter() - started
            totals[coding] += elapsed
            matches = result.total_matches
            row += f"{elapsed * 1000:>17.1f} ms"
        row += f"{matches:>10d}"
        print(row)
    print()
    print("total query time per coding:")
    for coding in CODINGS:
        print(f"  {coding:18s} {totals[coding] * 1000:8.1f} ms")

    best = min(totals, key=totals.get)
    print(f"\nfastest coding on this workload: {best}")
    for index in indexes.values():
        index.close()


if __name__ == "__main__":
    main()
