#!/usr/bin/env python3
"""Explore the shape of a treebank through the index: grammar mining by key frequency.

Beyond answering individual queries, a subtree index is a compact summary of
the grammatical constructions of a corpus: every key is a construction and
its posting-list length is the construction's document frequency.  This
example builds an index over a synthetic treebank and uses the index alone
(no re-scan of the corpus) to answer corpus-linguistics questions:

* the most common productions (subtrees of size 2 and 3),
* how often each constituent label appears in at least one sentence,
* which verb-phrase shapes dominate the corpus, and
* the corpus shape statistics the paper relies on (branching factors).

Run it from the repository root::

    python examples/corpus_exploration.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import Corpus, CorpusGenerator, SubtreeIndex
from repro.core.keys import decode_key
from repro.trees.stats import corpus_stats


def main() -> None:
    corpus = Corpus(CorpusGenerator(seed=29).generate(2_000))
    workdir = Path(tempfile.mkdtemp(prefix="repro-explore-"))
    index = SubtreeIndex.build(corpus, mss=3, coding="filter", path=str(workdir / "explore.si"))

    print(f"corpus: {len(corpus)} sentences, {corpus.total_nodes():,} nodes")
    print(f"index:  {index.key_count:,} unique constructions (subtrees of size 1-3)\n")

    # ------------------------------------------------------------------
    # Document frequency per key, straight from the posting lists.
    # ------------------------------------------------------------------
    frequency: Counter = Counter()
    by_size: Counter = Counter()
    for key_bytes, postings in index.items():
        key = decode_key(key_bytes)
        frequency[key_bytes] = len(postings)
        by_size[key.size] += 1

    print("unique constructions by size:")
    for size in sorted(by_size):
        print(f"  size {size}: {by_size[size]:,}")
    print()

    def top(predicate, count: int = 8):
        ranked = [
            (key_bytes, doc_freq)
            for key_bytes, doc_freq in frequency.most_common()
            if predicate(decode_key(key_bytes))
        ]
        return ranked[:count]

    print("most common productions (size-2 constructions):")
    for key_bytes, doc_freq in top(lambda key: key.size == 2):
        print(f"  {key_bytes.decode():28s} in {doc_freq:5d} sentences")
    print()

    print("most common size-3 constructions:")
    for key_bytes, doc_freq in top(lambda key: key.size == 3):
        print(f"  {key_bytes.decode():28s} in {doc_freq:5d} sentences")
    print()

    print("dominant verb-phrase shapes:")
    for key_bytes, doc_freq in top(lambda key: key.label == "VP" and key.size >= 2):
        print(f"  {key_bytes.decode():28s} in {doc_freq:5d} sentences")
    print()

    # ------------------------------------------------------------------
    # Shape statistics (Section 4.1 of the paper).
    # ------------------------------------------------------------------
    stats = corpus_stats(corpus)
    print("corpus shape statistics (cf. Section 4.1 of the paper):")
    print(f"  average internal branching factor : {stats.avg_branching_factor:.2f}")
    print(f"  maximum branching factor          : {stats.max_branching}")
    print(f"  nodes with branching factor > 10  : {stats.nodes_with_branching_above(10)}")
    print(f"  average tree size                 : {stats.avg_tree_size:.1f} nodes")
    print(f"  distinct labels                   : {stats.unique_labels}")

    index.close()


if __name__ == "__main__":
    main()
