"""A mutable corpus served live: add -> query -> delete -> compact.

Walks the live-index lifecycle from the library API: seed an index, keep
serving while trees are added and deleted, then compact and show that the
answers never drifted from a fresh rebuild.

Run with::

    PYTHONPATH=src python examples/live_updates.py
"""

from __future__ import annotations

import os
import tempfile

from repro import Corpus, CorpusGenerator, LiveIndex, LiveQueryService, SubtreeIndex, parse_query
from repro.exec.executor import QueryExecutor

QUERY = "NP(DT)(NN)"


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-live-")
    base = CorpusGenerator(seed=1).generate_list(300)
    extra = CorpusGenerator(seed=2).generate_list(40)

    live = LiveIndex.create(
        os.path.join(workdir, "corpus"), mss=3, coding="root-split", trees=base
    )
    service = LiveQueryService(live)
    print(f"seeded: {live.tree_count} trees, epoch {live.epoch}")
    print(f"{QUERY!r}: {service.run(QUERY).total_matches} matches")

    # Mutate while serving: every op is fsynced to the WAL before it is
    # acknowledged, and the service invalidates its caches automatically.
    added = [live.add_tree(tree.root) for tree in extra]
    live.delete_tree(added[0])
    live.delete_tree(5)
    print(
        f"after {len(added)} adds + 2 deletes: {live.tree_count} trees "
        f"({live.delta.tree_count} in the delta, {len(live.tombstones)} tombstones, "
        f"{live.wal.op_count} WAL ops)"
    )
    print(f"{QUERY!r}: {service.run(QUERY).total_matches} matches")

    # The answers equal a from-scratch rebuild of the surviving corpus.
    survivors = list(live.store)
    rebuilt = SubtreeIndex.build(
        survivors, mss=3, coding="root-split", path=os.path.join(workdir, "rebuilt.si")
    )
    reference = QueryExecutor(rebuilt, store=Corpus(survivors)).execute(parse_query(QUERY))
    assert service.run(QUERY).matches_per_tree == reference.matches_per_tree
    print("equivalence vs fresh rebuild: ok")
    rebuilt.close()

    # Compaction folds the delta + tombstones into immutable segments and
    # truncates the WAL; queries are undisturbed.
    stats = live.compact()
    print(
        f"compacted to epoch {stats.epoch} in {stats.seconds:.2f}s: "
        f"flushed {stats.flushed_trees} trees, purged {stats.purged_tombstones} tombstones"
    )
    assert service.run(QUERY).matches_per_tree == reference.matches_per_tree
    print(f"{QUERY!r} after compaction: {service.run(QUERY).total_matches} matches")

    service.close()


if __name__ == "__main__":
    main()
