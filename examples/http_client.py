#!/usr/bin/env python3
"""Talk to the HTTP serving layer with nothing but the standard library.

The server speaks plain HTTP/1.1 with JSON bodies, so any client works;
this demo uses ``urllib``. It

1. builds a small index and serves it on an ephemeral port
   (``repro.serve.open_server`` — the same thing ``repro serve`` runs in
   the foreground),
2. runs single queries over ``POST /query`` and checks the answers match
   an in-process ``service.run``,
3. sends one ``POST /query/batch`` whose queries coalesce into a single
   ``run_many`` call server-side, and
4. scrapes ``GET /stats`` and ``GET /metrics`` to show what a dashboard
   would see.

Run it from the repository root::

    python examples/http_client.py

Against a server you started yourself (``python -m repro.cli serve
corpus.si --port 8321``) only the URL changes — see ``one_query`` below.
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import Corpus, CorpusGenerator, SubtreeIndex
from repro.serve import open_server

QUERIES = ["NP(DT)(NN)", "S(NP)(VP)", "VP(VBZ)(NP)", "NP(DT)(JJ)(NN)"]


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.load(response)


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def one_query(base_url: str, text: str) -> dict:
    """The ``result`` dict for one query -- works against any repro server."""
    return post_json(base_url + "/query", {"query": text})["result"]


def main() -> None:
    corpus = Corpus(CorpusGenerator(seed=7).generate(500))
    workdir = Path(tempfile.mkdtemp(prefix="repro-http-"))
    SubtreeIndex.build(corpus, mss=3, coding="root-split", path=str(workdir / "c.si")).close()

    service, thread = open_server(str(workdir / "c.si"))
    try:
        base = thread.url
        health = get_json(base + "/healthz")
        print(f"serving a {health['flavor']} index at {base}\n")

        # --- single queries, verified against the in-process service -----
        for text in QUERIES:
            served = one_query(base, text)
            direct = service.run(text)
            assert served["total_matches"] == direct.total_matches, text
            print(f"  {text:24s} -> {served['total_matches']:5d} matches "
                  f"in {served['stats']['elapsed_seconds'] * 1000:.2f} ms")

        # --- one batch: shared cover keys are fetched once ---------------
        batch = post_json(base + "/query/batch", {"queries": QUERIES + [QUERIES[0]]})
        print(f"\nbatch of {batch['count']} (one duplicate) answered in order:")
        print("  " + ", ".join(str(item["result"]["total_matches"]) for item in batch["results"]))

        # --- observability ----------------------------------------------
        stats = get_json(base + "/stats")
        caches = stats["service"]["caches"]
        print(f"\n/stats: {stats['service']['queries']} queries, "
              f"result-cache hit rate {caches['results']['hit_rate']:.0%}, "
              f"postings {caches['postings']['hit_rate']:.0%}, "
              f"batcher flushed {stats['server']['batcher']['flushes']} batch(es)")

        with urllib.request.urlopen(base + "/metrics") as response:
            families = [line for line in response.read().decode().splitlines()
                        if line.startswith("# TYPE")]
        print(f"/metrics: {len(families)} metric families, e.g.")
        for line in families[:4]:
            print(f"  {line}")
    finally:
        thread.stop()
        service.close()
    print("\ndone; server stopped cleanly")


if __name__ == "__main__":
    main()
