#!/usr/bin/env python3
"""Quickstart: build a subtree index and run a few tree queries.

This walks through the full life cycle of the library on a small synthetic
treebank:

1. generate a corpus of syntactically annotated trees,
2. build a subtree index with the paper's root-split coding,
3. run structural queries through the query executor, and
4. peek at the execution statistics (cover size, joins, postings fetched).

Run it from the repository root::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Corpus, CorpusGenerator, QueryExecutor, SubtreeIndex, parse_query, to_penn


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A synthetic treebank (stands in for a parsed news corpus).
    # ------------------------------------------------------------------
    corpus = Corpus(CorpusGenerator(seed=42).generate(1_000))
    print(f"corpus: {len(corpus)} sentences, {corpus.total_nodes():,} tree nodes")
    print("first parse tree:")
    print(to_penn(corpus[0].root, pretty=True))
    print()

    # ------------------------------------------------------------------
    # 2. Build the subtree index (root-split coding, subtrees up to 3 nodes).
    # ------------------------------------------------------------------
    workdir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    index = SubtreeIndex.build(corpus, mss=3, coding="root-split", path=str(workdir / "corpus.si"))
    print(
        f"index: mss={index.mss}, coding={index.coding.name}, "
        f"{index.key_count:,} keys, {index.posting_count:,} postings, "
        f"{index.size_bytes() / 1024:.0f} KiB on disk "
        f"(built in {index.metadata.build_seconds:.2f}s)"
    )
    print()

    # ------------------------------------------------------------------
    # 3. Run structural queries.
    # ------------------------------------------------------------------
    executor = QueryExecutor(index, store=corpus)
    for text in [
        "NP(DT)(NN)",              # a determiner + noun noun phrase
        "S(NP)(VP(VBZ)(NP))",      # subject-verb-object skeleton
        "VP(VBZ)(NP(DT)(NN))",     # verb phrase with a full object NP
        "S(//NN)",                 # any sentence containing a noun, at any depth
    ]:
        query = parse_query(text)
        result = executor.execute(query)
        stats = result.stats
        print(
            f"{text:28s} -> {result.total_matches:5d} matches in {len(result.matches_per_tree):4d} trees   "
            f"(cover={stats.cover_size}, joins={stats.join_count}, "
            f"postings={stats.postings_fetched:,}, {stats.elapsed_seconds * 1000:.1f} ms)"
        )

    # ------------------------------------------------------------------
    # 4. Inspect one match.
    # ------------------------------------------------------------------
    query = parse_query("NP(DT)(JJ)(NN)")
    result = executor.execute(query)
    if result.matches_per_tree:
        tid = result.matched_tids[0]
        print()
        print(f"one tree matching {query.to_string()} (tid {tid}):")
        print(to_penn(corpus.get(tid).root, pretty=True))

    index.close()


if __name__ == "__main__":
    main()
