"""The Subtree Index (SI): building, opening and probing.

An index is parameterised by the corpus, the maximum subtree size ``mss`` and
a coding scheme.  Construction extracts every unique subtree of sizes
``1..mss`` as a key (Section 4.2), accumulates the coding scheme's postings
per key and bulk-loads the key/posting-list pairs into a disk B+Tree
(Section 6.1).  Metadata (mss, coding, corpus size, counters) is stored under
a reserved key inside the same file so an index is self-describing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.coding.base import CodingScheme, get_coding
from repro.core.enumeration import enumerate_key_occurrences
from repro.core.keys import SubtreeKey, canonical_key, decode_key
from repro.storage.bptree import BPlusTree, ProbeStats, ValueCache
from repro.trees.node import Node, ParseTree

#: Reserved B+Tree key that stores the index metadata record.
_META_KEY = b"\x00__si_meta__"

#: Fixed byte length of the serialised metadata record.  The record is
#: written twice -- during the bulk load with ``build_seconds=0.0`` and
#: again with the measured time -- and the B+Tree replaces an equal-length
#: payload in place.  Without padding the second write could overflow the
#: tightly packed leaf and split a page, making the index *file size*
#: depend on how many digits the build time happened to have.
_META_RECORD_LENGTH = 256


@dataclass
class IndexMetadata:
    """Self-describing metadata stored inside every subtree index file."""

    mss: int
    coding: str
    tree_count: int
    key_count: int
    posting_count: int
    build_seconds: float

    def to_json(self) -> bytes:
        """Serialise the metadata record, padded to a fixed length."""
        record = asdict(self)
        record["build_seconds"] = round(self.build_seconds, 6)
        encoded = json.dumps(record).encode("utf-8")
        # len(', "pad": ""') == 11: the padding field's own JSON overhead.
        padding = _META_RECORD_LENGTH - len(encoded) - 11
        if padding >= 0:
            record["pad"] = " " * padding
            encoded = json.dumps(record).encode("utf-8")
        return encoded

    @classmethod
    def from_json(cls, data: bytes) -> "IndexMetadata":
        """Parse a metadata record written by :meth:`to_json`."""
        record = json.loads(data.decode("utf-8"))
        record.pop("pad", None)
        return cls(**record)


class SubtreeIndex:
    """A disk-resident subtree index over a corpus of parse trees."""

    def __init__(self, tree: BPlusTree, coding: CodingScheme, metadata: IndexMetadata):
        self._tree = tree
        self.coding = coding
        self.metadata = metadata
        # Optional read-through cache of *decoded* posting lists installed by
        # the serving layer; caching above the B+Tree lets repeated lookups
        # skip both the tree descent and posting decoding.
        self._postings_cache: Optional[ValueCache] = None
        #: Lookup counters: ``gets`` per :meth:`lookup`, ``cache_hits`` served
        #: by the posting cache, ``tree_descents`` answered by the B+Tree.
        self.probe_stats = ProbeStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        trees: Iterable[ParseTree],
        mss: int,
        coding: CodingScheme | str,
        path: str,
    ) -> "SubtreeIndex":
        """Build an index over *trees* at *path* and return it opened.

        Subtrees of sizes ``1..mss`` are extracted from every tree; the
        coding scheme converts each key's occurrences into postings; finally
        all posting lists are bulk-loaded into the B+Tree in key order.
        """
        if isinstance(coding, str):
            coding = get_coding(coding)
        started = time.perf_counter()

        posting_lists: Dict[bytes, List[object]] = {}
        tree_count = 0
        for tree in trees:
            tree_count += 1
            per_key: Dict[bytes, List] = {}
            for key, occurrence in enumerate_key_occurrences(tree, mss):
                per_key.setdefault(key, []).append(occurrence)
            for key, occurrences in per_key.items():
                postings = coding.postings_from_occurrences(occurrences)
                posting_lists.setdefault(key, []).extend(postings)

        posting_count = sum(len(postings) for postings in posting_lists.values())
        metadata = IndexMetadata(
            mss=mss,
            coding=coding.name,
            tree_count=tree_count,
            key_count=len(posting_lists),
            posting_count=posting_count,
            build_seconds=0.0,
        )

        items: List[Tuple[bytes, bytes]] = [(_META_KEY, metadata.to_json())]
        for key in sorted(posting_lists):
            items.append((key, coding.encode_postings(posting_lists[key])))

        btree = BPlusTree(path)
        btree.bulk_load(items)
        metadata.build_seconds = time.perf_counter() - started
        # Re-write the metadata record with the final build time.
        btree.insert(_META_KEY, metadata.to_json())
        btree.flush()
        return cls(btree, coding, metadata)

    @classmethod
    def open(cls, path: str) -> "SubtreeIndex":
        """Open an existing index file.

        Pointed at a sharded-index manifest (``*.manifest.json``) or a
        live-index manifest (``*.live.json``) -- both sniffed by content
        rather than filename -- this transparently returns a
        :class:`~repro.shard.sharded.ShardedIndex` or a
        :class:`~repro.live.live.LiveIndex`, which present the same read API.
        """
        if not os.path.exists(path):
            # BPlusTree initialises missing files; opening an index must not.
            raise FileNotFoundError(f"no such index file: {path}")
        from repro.shard.manifest import is_manifest  # local: shard builds on core

        if is_manifest(path):
            from repro.shard.sharded import ShardedIndex

            return ShardedIndex.open(path)  # type: ignore[return-value]
        from repro.live.manifest import is_live_manifest  # local: live builds on core

        if is_live_manifest(path):
            from repro.live.live import LiveIndex

            return LiveIndex.open(path)  # type: ignore[return-value]
        btree = BPlusTree(path)
        raw = btree.get(_META_KEY)
        if raw is None:
            btree.close()
            raise ValueError(f"{path!r} is not a subtree index (missing metadata)")
        metadata = IndexMetadata.from_json(raw)
        return cls(btree, get_coding(metadata.coding), metadata)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise_key(key: bytes | str | SubtreeKey | Node) -> bytes:
        if isinstance(key, bytes):
            return key
        if isinstance(key, str):
            return key.encode("utf-8")
        if isinstance(key, SubtreeKey):
            return key.encode()
        if isinstance(key, Node):
            encoded, _ = canonical_key(key)
            return encoded
        raise TypeError(f"unsupported key type {type(key).__name__}")

    #: Sentinel distinguishing "not cached" from a cached empty posting list.
    _CACHE_MISS = object()

    def lookup(self, key: bytes | str | SubtreeKey | Node) -> List[object]:
        """Return the posting list of *key* (empty when the key is not indexed).

        *key* may be canonical bytes, a canonical string, a parsed
        :class:`SubtreeKey` or a :class:`~repro.trees.node.Node` subtree; the
        latter two are canonicalised before the lookup.

        With a posting cache attached (:meth:`attach_postings_cache`) the
        lookup is read-through over *decoded* lists; cached lists are shared
        between callers and must be treated as read-only.
        """
        self.probe_stats.gets += 1
        encoded = self._normalise_key(key)
        cache = self._postings_cache
        if cache is not None:
            cached = cache.get(encoded, self._CACHE_MISS)
            if cached is not self._CACHE_MISS:
                self.probe_stats.cache_hits += 1
                return cached  # type: ignore[return-value]
        self.probe_stats.tree_descents += 1
        raw = self._tree.get(encoded)
        postings = [] if raw is None else self.coding.decode_postings(raw)
        if cache is not None:
            cache.put(encoded, postings)
        return postings

    def has_key(self, key: bytes | str | SubtreeKey | Node) -> bool:
        """``True`` when *key* is present in the index."""
        return self._tree.get(self._normalise_key(key)) is not None

    def posting_list_length(self, key: bytes | str | SubtreeKey | Node) -> int:
        """Length of the posting list of *key* (0 when absent)."""
        return len(self.lookup(key))

    # ------------------------------------------------------------------
    # Probe accounting and the read-through posting cache
    # ------------------------------------------------------------------
    def reset_probe_stats(self) -> ProbeStats:
        """Zero the lookup counters and return the pre-reset snapshot."""
        snapshot = self.probe_stats.snapshot()
        self.probe_stats.reset()
        return snapshot

    def attach_postings_cache(self, cache: Optional[ValueCache]) -> None:
        """Install a read-through cache of decoded posting lists.

        The cache sits in front of the B+Tree: repeated lookups of the same
        key (within and across queries) are answered from memory, skipping
        both the tree descent and posting decoding.  Pass ``None`` to detach.
        :class:`repro.service.QueryService` attaches a lock-striped LRU here.
        (For caching raw values below the decode step, the B+Tree has its own
        read-through hook: :meth:`repro.storage.bptree.BPlusTree.attach_cache`.)
        """
        self._postings_cache = cache

    @property
    def postings_cache(self) -> Optional[ValueCache]:
        """The currently attached posting cache, if any."""
        return self._postings_cache

    # ------------------------------------------------------------------
    # Iteration and statistics
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[SubtreeKey]:
        """Yield all index keys as parsed :class:`SubtreeKey` objects."""
        for key, _ in self._tree.items():
            if key == _META_KEY:
                continue
            yield decode_key(key)

    def items(self) -> Iterator[Tuple[bytes, List[object]]]:
        """Yield ``(canonical key bytes, decoded posting list)`` pairs."""
        for key, value in self._tree.items():
            if key == _META_KEY:
                continue
            yield key, self.coding.decode_postings(value)

    def raw_items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key bytes, encoded posting list)`` without decoding."""
        for key, value in self._tree.items():
            if key == _META_KEY:
                continue
            yield key, value

    @property
    def mss(self) -> int:
        """Maximum subtree size the index was built with."""
        return self.metadata.mss

    @property
    def key_count(self) -> int:
        """Number of unique subtrees (index keys)."""
        return self.metadata.key_count

    @property
    def posting_count(self) -> int:
        """Total number of postings stored in the index."""
        return self.metadata.posting_count

    def size_bytes(self) -> int:
        """Size of the index file on disk in bytes."""
        return self._tree.size_bytes()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush the underlying B+Tree."""
        self._tree.flush()

    def close(self) -> None:
        """Close the underlying B+Tree file.

        Any attached posting cache is cleared and detached so a cache object
        shared with a service cannot serve stale entries once the index is
        reopened (possibly after a rebuild).
        """
        for cache in (self._postings_cache, self._tree.value_cache):
            if cache is not None:
                clear = getattr(cache, "clear", None)
                if clear is not None:
                    clear()
        self._postings_cache = None
        self._tree.attach_cache(None)
        self._tree.close()

    def __enter__(self) -> "SubtreeIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
