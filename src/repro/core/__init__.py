"""The paper's primary contribution: the Subtree Index (SI).

* :mod:`repro.core.enumeration` -- extracting every connected subtree of
  sizes ``1..mss`` rooted at each node of a data tree (Section 4.2,
  Figure 4), together with the interval codes of their nodes.
* :mod:`repro.core.keys` -- canonical (unordered) encoding of subtrees used
  as index keys, and the reverse decoding.
* :mod:`repro.core.index` -- building, opening and querying the disk-based
  subtree index for any of the three coding schemes.
* :mod:`repro.core.stats` -- index statistics (key counts, posting counts,
  size on disk) backing the Figure 2/3/8/9/10 and Table 1 experiments.
"""

from repro.core.enumeration import (
    enumerate_key_occurrences,
    enumerate_subtrees,
    subtree_count_by_root_branching,
)
from repro.core.index import IndexMetadata, SubtreeIndex
from repro.core.keys import SubtreeKey, canonical_key, decode_key, key_from_query_subtree
from repro.core.stats import IndexStats, collect_index_stats

__all__ = [
    "SubtreeIndex",
    "IndexMetadata",
    "SubtreeKey",
    "canonical_key",
    "decode_key",
    "key_from_query_subtree",
    "enumerate_subtrees",
    "enumerate_key_occurrences",
    "subtree_count_by_root_branching",
    "IndexStats",
    "collect_index_stats",
]
