"""Canonical encoding of subtrees as index keys.

Index keys are *unordered* subtrees (Section 4.2: postings of ``A(B)(C)`` and
``A(C)(B)`` are stored under the same key).  The canonical form used here is
the classic recursive one: a node is rendered as ``label(child1)(child2)...``
with the rendered children sorted lexicographically.  Two subtrees are equal
as unordered trees exactly when their canonical strings are equal.

Besides the canonical byte string, canonicalisation also returns the list of
original nodes in *canonical pre-order*.  That ordering is what ties a
posting's node codes back to specific key positions: every posting of a key
stores its node codes in this same order, and the query executor uses the
same mapping to know which stored code corresponds to which query node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.trees.node import Node


class KeyFormatError(ValueError):
    """Raised when a serialised key cannot be parsed back into a subtree."""


def _canonicalize(
    node: object,
    children_of: Callable[[object], Sequence[object]],
    label_of: Callable[[object], str],
) -> Tuple[str, List[object]]:
    """Return the canonical string of *node* and its nodes in canonical pre-order."""
    child_results = [
        _canonicalize(child, children_of, label_of) for child in children_of(node)
    ]
    child_results.sort(key=lambda pair: pair[0])
    text = label_of(node) + "".join("(" + child_text + ")" for child_text, _ in child_results)
    ordered: List[object] = [node]
    for _, child_nodes in child_results:
        ordered.extend(child_nodes)
    return text, ordered


def canonical_key(
    node: object,
    children_of: Optional[Callable[[object], Sequence[object]]] = None,
    label_of: Optional[Callable[[object], str]] = None,
) -> Tuple[bytes, List[object]]:
    """Canonicalise the subtree rooted at *node*.

    Works for any tree-shaped object: by default ``node.children`` and
    ``node.label`` are used, which covers :class:`~repro.trees.node.Node`,
    the enumeration layer's occurrence nodes and query nodes alike.

    Returns ``(key_bytes, nodes_in_canonical_preorder)``.
    """
    children = children_of or (lambda item: item.children)  # type: ignore[attr-defined]
    labels = label_of or (lambda item: item.label)  # type: ignore[attr-defined]
    text, ordered = _canonicalize(node, children, labels)
    return text.encode("utf-8"), ordered


@dataclass(frozen=True)
class SubtreeKey:
    """A parsed index key: an unordered subtree in canonical form."""

    label: str
    children: Tuple["SubtreeKey", ...] = ()

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes of the key subtree."""
        return 1 + sum(child.size for child in self.children)

    def labels(self) -> List[str]:
        """Labels of the key's nodes in canonical pre-order."""
        out = [self.label]
        for child in self.children:
            out.extend(child.labels())
        return out

    def encode(self) -> bytes:
        """Serialise the key to its canonical byte string."""
        text = self.label + "".join(f"({child.encode().decode('utf-8')})" for child in self.children)
        return text.encode("utf-8")

    def to_node(self) -> Node:
        """Materialise the key as a :class:`~repro.trees.node.Node` tree."""
        return Node(self.label, [child.to_node() for child in self.children])

    def __str__(self) -> str:
        return self.encode().decode("utf-8")


def _parse_key(text: str, position: int) -> Tuple[SubtreeKey, int]:
    """Parse one subtree starting at *position*; returns ``(key, next_position)``."""
    end = position
    while end < len(text) and text[end] not in "()":
        end += 1
    label = text[position:end]
    if not label:
        raise KeyFormatError(f"empty label at position {position} in {text!r}")
    children: List[SubtreeKey] = []
    position = end
    while position < len(text) and text[position] == "(":
        child, position = _parse_key(text, position + 1)
        if position >= len(text) or text[position] != ")":
            raise KeyFormatError(f"missing ')' at position {position} in {text!r}")
        position += 1
        children.append(child)
    return SubtreeKey(label, tuple(children)), position


def decode_key(data: bytes | str) -> SubtreeKey:
    """Parse a canonical key byte string back into a :class:`SubtreeKey`."""
    text = data.decode("utf-8") if isinstance(data, (bytes, bytearray)) else data
    if not text:
        raise KeyFormatError("empty key")
    key, position = _parse_key(text, 0)
    if position != len(text):
        raise KeyFormatError(f"trailing characters at position {position} in {text!r}")
    return key


def key_from_node(node: Node) -> SubtreeKey:
    """Build the canonical :class:`SubtreeKey` of a node tree."""
    children = tuple(sorted((key_from_node(child) for child in node.children), key=str))
    return SubtreeKey(node.label, children)


def key_from_query_subtree(root: object) -> Tuple[bytes, List[object]]:
    """Canonicalise a cover subtree of a query.

    Cover subtrees are produced by the decomposition layer; their nodes expose
    ``label`` and ``children`` exactly like data nodes, so this is a thin
    alias of :func:`canonical_key` kept for readability at call sites.
    """
    return canonical_key(root)
