"""Index statistics backing the index-characterisation experiments.

Figures 2, 3, 8, 9, 10 and Table 1 of the paper describe the *index itself*
(number of unique keys, number of postings, bytes on disk, build time) rather
than query behaviour.  This module computes those quantities either from a
built :class:`~repro.core.index.SubtreeIndex` or directly from a corpus
without materialising an index (used for the cheap key-count sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.coding.base import CodingScheme, get_coding
from repro.core.enumeration import enumerate_key_occurrences
from repro.core.index import SubtreeIndex
from repro.trees.node import ParseTree


@dataclass
class IndexStats:
    """Summary statistics of one built index."""

    mss: int
    coding: str
    tree_count: int
    key_count: int
    posting_count: int
    size_bytes: int
    build_seconds: float

    @classmethod
    def of(cls, index: SubtreeIndex) -> "IndexStats":
        """Collect the statistics of a built index."""
        meta = index.metadata
        return cls(
            mss=meta.mss,
            coding=meta.coding,
            tree_count=meta.tree_count,
            key_count=meta.key_count,
            posting_count=meta.posting_count,
            size_bytes=index.size_bytes(),
            build_seconds=meta.build_seconds,
        )


def collect_index_stats(index: SubtreeIndex) -> IndexStats:
    """Convenience alias of :meth:`IndexStats.of`."""
    return IndexStats.of(index)


def count_unique_keys(trees: Iterable[ParseTree], mss_values: Sequence[int]) -> Dict[int, int]:
    """Count unique subtrees (index keys) for several ``mss`` values at once.

    This is the quantity plotted in Figure 2.  Keys are counted in a single
    pass with the largest ``mss``: a key of size *s* is a key for every
    ``mss >= s``, so the per-``mss`` counts are cumulative over key sizes.
    """
    max_mss = max(mss_values)
    keys_by_size: Dict[int, set] = {size: set() for size in range(1, max_mss + 1)}
    for tree in trees:
        for key, occurrence in enumerate_key_occurrences(tree, max_mss):
            keys_by_size[occurrence.size].add(key)
    counts: Dict[int, int] = {}
    for mss in mss_values:
        counts[mss] = sum(len(keys_by_size[size]) for size in range(1, mss + 1))
    return counts


def count_postings(
    trees: Iterable[ParseTree], mss: int, coding_names: Sequence[str]
) -> Dict[str, int]:
    """Total number of postings each coding scheme would store (Figure 9).

    Computed without building the index files: occurrences are grouped per
    key per tree and passed through each coding's deduplication logic.
    """
    codings: Dict[str, CodingScheme] = {name: get_coding(name) for name in coding_names}
    totals: Dict[str, int] = {name: 0 for name in coding_names}
    for tree in trees:
        per_key: Dict[bytes, List] = {}
        for key, occurrence in enumerate_key_occurrences(tree, mss):
            per_key.setdefault(key, []).append(occurrence)
        for occurrences in per_key.values():
            for name, coding in codings.items():
                totals[name] += coding.posting_count(occurrences)
    return totals
