"""Enumerating the subtrees that become index keys (Section 4.2, Figure 4).

For every node of a data tree, the builder extracts every *connected* subtree
rooted at that node whose size is between 1 and ``mss`` (the maximum subtree
size parameter of the index).  Each extracted subtree contributes one
occurrence -- the tree id plus the interval codes of its nodes in canonical
order -- to the posting list of its canonical key.

The enumeration is bottom-up with per-node memoisation: the set of rooted
subtrees of size at most ``mss`` is computed once per node from the sets of
its children.  For parse trees this stays small because branching factors are
small (Figure 3 of the paper; reproduced by the Figure 3 benchmark here).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.coding.base import Occurrence
from repro.core.keys import canonical_key
from repro.trees.node import Node, ParseTree
from repro.trees.numbering import number_tree


class _OccNode:
    """A node of an *extracted* subtree, referencing the underlying data node."""

    __slots__ = ("node", "children", "size")

    def __init__(self, node: Node, children: Sequence["_OccNode"]):
        self.node = node
        self.children = list(children)
        self.size = 1 + sum(child.size for child in children)

    @property
    def label(self) -> str:
        """Label of the underlying data node (lets canonicalisation reuse one code path)."""
        return self.node.label


def _rooted_subtrees(node: Node, mss: int, cache: Dict[int, List[_OccNode]]) -> List[_OccNode]:
    """All connected subtrees rooted at *node* with at most *mss* nodes."""
    cached = cache.get(id(node))
    if cached is not None:
        return cached

    child_options: List[List[_OccNode]] = [
        _rooted_subtrees(child, mss - 1, cache) if mss > 1 else []
        for child in node.children
    ]

    results: List[_OccNode] = []

    def extend(child_index: int, remaining: int, chosen: List[_OccNode]) -> None:
        if child_index == len(child_options):
            results.append(_OccNode(node, list(chosen)))
            return
        # Option 1: skip this child entirely.
        extend(child_index + 1, remaining, chosen)
        # Option 2: include one of the subtrees rooted at this child.
        if remaining > 0:
            for candidate in child_options[child_index]:
                if candidate.size <= remaining:
                    chosen.append(candidate)
                    extend(child_index + 1, remaining - candidate.size, chosen)
                    chosen.pop()

    extend(0, mss - 1, [])
    cache[id(node)] = results
    return results


def _subtree_cache_for(tree: ParseTree | Node, mss: int) -> Tuple[Node, Dict[int, List[_OccNode]]]:
    root = tree.root if isinstance(tree, ParseTree) else tree
    cache: Dict[int, List[_OccNode]] = {}
    # Populate bottom-up so recursion depth stays bounded by tree height.
    for node in root.postorder():
        _rooted_subtrees(node, mss, cache)
    return root, cache


def enumerate_subtrees(tree: ParseTree | Node, mss: int) -> Iterator[_OccNode]:
    """Yield every extracted subtree (size 1..mss) of *tree* as an occurrence tree.

    The memoisation cache stores, for each data node, subtrees of size at most
    ``mss`` *as seen from that node*; the top-level enumeration simply walks
    all nodes and emits their cached lists.
    """
    if mss < 1:
        raise ValueError("mss must be at least 1")
    root, cache = _subtree_cache_for(tree, mss)
    for node in root.preorder():
        yield from cache[id(node)]


def enumerate_key_occurrences(
    tree: ParseTree, mss: int
) -> Iterator[Tuple[bytes, Occurrence]]:
    """Yield ``(canonical key, occurrence)`` pairs for every extracted subtree.

    The occurrence's node codes are listed in the canonical order of the key,
    as required by the coding schemes (see :class:`repro.coding.base.Occurrence`).
    """
    codes = number_tree(tree)
    for occ_root in enumerate_subtrees(tree, mss):
        key, ordered = canonical_key(occ_root)
        occurrence = Occurrence(
            tid=tree.tid,
            codes=tuple(codes[id(item.node)] for item in ordered),  # type: ignore[attr-defined]
        )
        yield key, occurrence


def count_subtrees_per_node(tree: ParseTree | Node, sizes: Sequence[int]) -> Dict[int, Dict[int, int]]:
    """For every node, count extracted subtrees of each size in *sizes*.

    Returns ``{branching_factor: {size: total subtree count}}`` aggregated
    over the nodes of *tree*; used by the Figure 3 experiment.
    """
    mss = max(sizes)
    root, cache = _subtree_cache_for(tree, mss)
    by_branching: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    node_counts: Dict[int, int] = defaultdict(int)
    for node in root.preorder():
        counts = by_branching[node.degree]
        node_counts[node.degree] += 1
        for subtree in cache[id(node)]:
            if subtree.size in sizes:
                counts[subtree.size] += 1
    return {degree: dict(counts) for degree, counts in by_branching.items()}


def subtree_count_by_root_branching(
    trees: Iterable[ParseTree], sizes: Sequence[int] = (2, 3, 4, 5)
) -> Dict[int, Dict[int, float]]:
    """Average number of extracted subtrees per node, keyed by branching factor.

    Reproduces Figure 3: for each branching factor *b* and each subtree size
    *ss* in *sizes*, the average number of subtrees of that size rooted at a
    node with branching factor *b*.
    """
    totals: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    node_counts: Dict[int, int] = defaultdict(int)
    mss = max(sizes)
    for tree in trees:
        root, cache = _subtree_cache_for(tree, mss)
        for node in root.preorder():
            node_counts[node.degree] += 1
            for subtree in cache[id(node)]:
                if subtree.size in sizes:
                    totals[node.degree][subtree.size] += 1
    averages: Dict[int, Dict[int, float]] = {}
    for degree, counts in totals.items():
        averages[degree] = {
            size: counts.get(size, 0) / node_counts[degree] for size in sizes
        }
    return dict(sorted(averages.items()))
