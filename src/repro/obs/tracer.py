"""Context-local span tracing with a near-zero disabled fast path.

The tracer answers one question the aggregate ``/metrics`` histograms
cannot: *where did this particular query spend its time?*  Call sites wrap
each pipeline stage in ``with trace(name, **attrs):`` blocks; when tracing
is enabled the blocks build a tree of :class:`Span` objects (monotonic
``perf_counter`` timing, parent linkage through a :mod:`contextvars`
variable so the tree assembles itself across ``await`` points and --
when a parent is passed explicitly -- across worker threads).  When
tracing is disabled, ``trace()`` returns one shared no-op span without
allocating anything, so instrumented hot paths cost a single module-level
flag check plus an empty ``with`` block.

A finished *root* span (one with no parent) becomes a JSON-friendly trace
record that is kept in the owning :class:`Tracer`'s ring buffer, matched
against the slow-query threshold, and handed to any attached sinks
(:mod:`repro.obs.sinks`).  Request ids set via :func:`set_request_id`
travel the same context and stamp every root span recorded under them.

The module is stdlib-only and imports nothing from the rest of
:mod:`repro`, so every layer (storage, exec, service, serve, bench) can
instrument itself without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from typing import Dict, List, Optional, Sequence

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "annotate",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "format_trace",
    "get_request_id",
    "get_tracer",
    "new_request_id",
    "query_hash",
    "reset_request_id",
    "set_request_id",
    "stage_totals",
    "trace",
]

_current_span: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)
_request_id: ContextVar[Optional[str]] = ContextVar("repro_obs_request_id", default=None)


class _NoopSpan:
    """The shared do-nothing span returned by :func:`trace` when disabled.

    A singleton: the disabled fast path must not allocate, so every call
    site receives this same object.  All mutators are no-ops.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


#: The singleton no-op span (``trace(...) is NOOP_SPAN`` whenever disabled).
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed node in a trace tree.

    Use as a context manager; entering starts the clock and makes the span
    the context-local current span, exiting stops the clock and -- for a
    root span -- hands the finished tree to the tracer.  ``children`` is
    appended to by child spans (list appends are atomic under the GIL, so
    fan-out worker threads may attach children concurrently).
    """

    __slots__ = (
        "name", "attrs", "parent", "children", "request_id",
        "started", "ended", "_tracer", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, object],
        parent: Optional["Span"],
        request_id: Optional[str],
    ):
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.children: List["Span"] = []
        self.request_id = request_id
        self.started = 0.0
        self.ended = 0.0
        self._tracer = tracer
        self._token = None

    # ------------------------------------------------------------------
    def set(self, **attrs: object) -> "Span":
        """Merge *attrs* into the span's attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_seconds(self) -> float:
        return max(0.0, self.ended - self.started)

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.ended = time.perf_counter()
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc) if exc is not None else exc_type.__name__)
        if self.parent is None:
            self._tracer._finish_root(self)
        return False

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The JSON-friendly nested form (microsecond timestamps).

        ``start_us`` is absolute on the process's ``perf_counter`` timeline,
        so spans from different requests share one time base -- exactly what
        the Chrome-trace exporter needs.
        """
        return {
            "name": self.name,
            "start_us": int(self.started * 1e6),
            "duration_us": int(self.duration_seconds * 1e6),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Collects finished traces: ring buffer, slow-query log, sinks.

    Parameters
    ----------
    sinks:
        Objects with a ``write(record: dict)`` method (see
        :class:`repro.obs.sinks.JsonlSink`); each finished root span's
        record is handed to every sink.  Sink failures are swallowed and
        counted -- observability must never take the serving path down.
    slow_ms:
        Root spans at least this many milliseconds long are marked
        ``"slow": true`` and summarised in :attr:`slow_queries`.
        ``None`` disables the slow-query log.
    capacity:
        Ring-buffer size of :meth:`last` / :attr:`recent`.
    slow_capacity:
        Entries kept in the slow-query log.
    """

    def __init__(
        self,
        sinks: Sequence[object] = (),
        slow_ms: Optional[float] = None,
        capacity: int = 256,
        slow_capacity: int = 64,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sinks = list(sinks)
        self.slow_ms = slow_ms
        self.recent: deque = deque(maxlen=capacity)
        self.slow_queries: deque = deque(maxlen=slow_capacity)
        self.traces_finished = 0
        self.sink_errors = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        attrs: Dict[str, object],
        parent: Optional[Span] = None,
    ) -> Span:
        """Create a span parented to *parent* or the context-local span."""
        if parent is None:
            parent = _current_span.get()
        request_id = _request_id.get() if parent is None else parent.request_id
        span = Span(self, name, attrs, parent, request_id)
        if parent is not None:
            parent.children.append(span)
        return span

    def last(self, n: int) -> List[Dict[str, object]]:
        """The most recent *n* trace records, oldest first."""
        if n <= 0:
            return []
        with self._lock:
            records = list(self.recent)
        return records[-n:]

    def emit(self, record: Dict[str, object]) -> None:
        """Write a non-trace structured record (e.g. an error line) to every
        sink, with the same swallow-and-count failure policy as traces.  The
        record stays out of the trace ring -- :meth:`last` returns traces
        only."""
        payload = _jsonable(record)
        for sink in self.sinks:
            try:
                sink.write(payload)
            except Exception:  # noqa: BLE001 - a broken sink must not break serving
                self.sink_errors += 1

    # ------------------------------------------------------------------
    def _finish_root(self, span: Span) -> None:
        duration_ms = span.duration_seconds * 1000.0
        record: Dict[str, object] = {
            "kind": "trace",
            "name": span.name,
            "request_id": span.request_id,
            "ts": time.time(),
            "duration_ms": round(duration_ms, 3),
            "attrs": _jsonable(span.attrs),
            "stages": {
                child.name: round(child.duration_seconds * 1000.0, 3)
                for child in span.children
            },
            "spans": _jsonable(span.to_dict()),
            "slow": bool(self.slow_ms is not None and duration_ms >= self.slow_ms),
        }
        with self._lock:
            self.traces_finished += 1
            self.recent.append(record)
            if record["slow"]:
                self.slow_queries.append({
                    "name": span.name,
                    "request_id": span.request_id,
                    "duration_ms": record["duration_ms"],
                    "ts": record["ts"],
                    "query": _find_attr(span, "query"),
                })
        for sink in self.sinks:
            try:
                sink.write(record)
            except Exception:  # noqa: BLE001 - a broken sink must not break serving
                self.sink_errors += 1


def _find_attr(span: Span, name: str) -> Optional[object]:
    """Depth-first search for an attribute value anywhere in the tree."""
    if name in span.attrs:
        return span.attrs[name]
    for child in span.children:
        found = _find_attr(child, name)
        if found is not None:
            return found
    return None


def _jsonable(value: object) -> object:
    """*value* forced into JSON-safe types (``str()`` fallback)."""
    return json.loads(json.dumps(value, default=str))


# ----------------------------------------------------------------------
# Module-level state: the enabled flag IS the fast path
# ----------------------------------------------------------------------
_ENABLED = False
_TRACER: Optional[Tracer] = None


def enabled() -> bool:
    """Whether tracing is on; hot call sites check this before building attrs."""
    return _ENABLED


def get_tracer() -> Optional[Tracer]:
    """The active tracer (``None`` when tracing has never been enabled)."""
    return _TRACER


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Turn tracing on, installing *tracer* (or a fresh default) globally."""
    global _ENABLED, _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    _ENABLED = True
    return _TRACER


def disable() -> None:
    """Turn tracing off; ``trace()`` returns :data:`NOOP_SPAN` again."""
    global _ENABLED
    _ENABLED = False


def trace(name: str, parent: Optional[Span] = None, **attrs: object):
    """A span context manager, or the shared no-op span when disabled.

    *parent* overrides the context-local parent -- pass the captured
    enclosing span when handing work to a thread pool, which does not
    propagate context variables (``asyncio``'s ``contextvars.copy_context``
    path does, worker pools driven by ``pool.map`` do not).
    """
    if not _ENABLED:
        return NOOP_SPAN
    tracer = _TRACER
    if tracer is None:  # pragma: no cover - enable() always installs one
        return NOOP_SPAN
    return tracer.span(name, attrs, parent=parent)


def current_span() -> Optional[Span]:
    """The context-local span, or ``None`` (always ``None`` when disabled)."""
    if not _ENABLED:
        return None
    return _current_span.get()


def annotate(**attrs: object) -> None:
    """Merge *attrs* into the current span, if tracing is on and one exists."""
    if not _ENABLED:
        return
    span = _current_span.get()
    if span is not None:
        span.attrs.update(attrs)


# ----------------------------------------------------------------------
# Request ids
# ----------------------------------------------------------------------
def new_request_id() -> str:
    """A fresh, URL-safe request id (32 hex chars)."""
    return uuid.uuid4().hex


def set_request_id(request_id: Optional[str]):
    """Bind *request_id* to the current context; returns a reset token."""
    return _request_id.set(request_id)


def reset_request_id(token) -> None:
    """Undo a :func:`set_request_id` (pass its returned token)."""
    _request_id.reset(token)


def get_request_id() -> Optional[str]:
    """The context-local request id, or ``None``."""
    return _request_id.get()


def query_hash(text: str) -> str:
    """A short stable hash of a query text for log correlation (12 hex chars)."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def format_trace(record: Dict[str, object]) -> str:
    """Render one trace record as an indented per-stage tree.

    Children are indented under their parent with durations in
    milliseconds; attributes follow inline.  This is what
    ``repro query --trace`` prints after its results.
    """
    lines: List[str] = []
    header = f"trace {record.get('name')} {record.get('duration_ms')} ms"
    request_id = record.get("request_id")
    if request_id:
        header += f"  request_id={request_id}"
    if record.get("slow"):
        header += "  [SLOW]"
    lines.append(header)
    spans = record.get("spans")
    if isinstance(spans, dict):
        _format_span(spans, 1, lines)
    return "\n".join(lines)


def _format_span(span: Dict[str, object], depth: int, lines: List[str]) -> None:
    duration_ms = span.get("duration_us", 0) / 1000.0  # type: ignore[operator]
    attrs = span.get("attrs") or {}
    attr_text = " ".join(f"{key}={value}" for key, value in attrs.items())  # type: ignore[union-attr]
    line = f"{'  ' * depth}{span.get('name')} {duration_ms:.3f} ms"
    if attr_text:
        line += f"  {attr_text}"
    lines.append(line)
    for child in span.get("children") or []:  # type: ignore[union-attr]
        _format_span(child, depth + 1, lines)


def stage_totals(records: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Summed top-level stage durations (ms) across *records*.

    The per-stage breakdown the bench trace hook writes next to its
    ``BENCH_*.json``: one total per distinct stage name.
    """
    totals: Dict[str, float] = {}
    for record in records:
        stages = record.get("stages") or {}
        for name, duration in stages.items():  # type: ignore[union-attr]
            totals[name] = round(totals.get(name, 0.0) + float(duration), 3)  # type: ignore[arg-type]
    return totals
