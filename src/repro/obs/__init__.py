"""repro.obs: end-to-end query tracing, structured logging and profiling.

The package has two halves:

* :mod:`repro.obs.tracer` -- the context-local span tracer.  Call sites
  write ``with obs.trace("stage", key=value):``; when tracing is disabled
  (the default) that returns a shared no-op span, so instrumentation costs
  one flag check.  Enabled, spans form a tree per request / query and each
  finished root span becomes a JSON-friendly trace record.
* :mod:`repro.obs.sinks` -- where records go: an in-tracer ring buffer
  (``/debug/trace``, ``repro query --trace``), a JSON-lines structured log
  (``repro serve --trace-log``), and a Chrome-trace / Perfetto export for
  flame views.

Import the package, not the submodules, at call sites::

    from repro import obs

    with obs.trace("fetch_postings", keys=len(keys)) as span:
        ...
        span.set(postings=total)
"""

from repro.obs.sinks import (
    JsonlSink,
    chrome_trace_document,
    chrome_trace_events,
    validate_trace_log,
    write_chrome_trace,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    annotate,
    current_span,
    disable,
    enable,
    enabled,
    format_trace,
    get_request_id,
    get_tracer,
    new_request_id,
    query_hash,
    reset_request_id,
    set_request_id,
    stage_totals,
    trace,
)

__all__ = [
    "JsonlSink",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "annotate",
    "chrome_trace_document",
    "chrome_trace_events",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "format_trace",
    "get_request_id",
    "get_tracer",
    "new_request_id",
    "query_hash",
    "reset_request_id",
    "set_request_id",
    "stage_totals",
    "trace",
    "validate_trace_log",
    "write_chrome_trace",
]
