"""Trace sinks: the JSON-lines structured log and the Chrome-trace export.

Two offline views of the same trace records the tracer produces:

:class:`JsonlSink`
    appends one JSON object per line -- trace records as the tracer built
    them (request id, query hash, per-stage durations, cache/probe
    counters in the span attributes) plus any free-form event dict the
    server writes through the same file (500-path error lines carry
    ``"kind": "error"`` with the full traceback).  Thread-safe; lines are
    flushed as written so a killed process loses at most the line in
    flight.

Chrome-trace export
    :func:`chrome_trace_document` converts records into the Trace Event
    JSON format -- complete ``"X"`` (duration) events with microsecond
    ``ts``/``dur`` -- that ``chrome://tracing`` and https://ui.perfetto.dev
    load directly for a flame view.  Each trace gets its own ``tid`` row,
    so concurrent requests render as parallel tracks.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence

__all__ = [
    "JsonlSink",
    "chrome_trace_document",
    "chrome_trace_events",
    "validate_trace_log",
    "write_chrome_trace",
]


class JsonlSink:
    """Appends records as JSON lines to *path*; safe across threads."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.lines_written = 0

    def write(self, record: Dict[str, object]) -> None:
        """Append one record as a single line and flush it."""
        line = json.dumps(record, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.lines_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Chrome trace (chrome://tracing / Perfetto) export
# ----------------------------------------------------------------------
def chrome_trace_events(
    span: Dict[str, object], pid: int = 0, tid: int = 0
) -> List[Dict[str, object]]:
    """Flatten one nested span dict into complete ("X") trace events."""
    events: List[Dict[str, object]] = [{
        "name": span.get("name", "?"),
        "cat": "repro",
        "ph": "X",
        "ts": int(span.get("start_us", 0)),  # type: ignore[arg-type]
        "dur": int(span.get("duration_us", 0)),  # type: ignore[arg-type]
        "pid": pid,
        "tid": tid,
        "args": dict(span.get("attrs") or {}),  # type: ignore[arg-type]
    }]
    for child in span.get("children") or []:  # type: ignore[union-attr]
        events.extend(chrome_trace_events(child, pid=pid, tid=tid))
    return events


def chrome_trace_document(
    records: Sequence[Dict[str, object]],
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A loadable Trace Event document over *records*.

    One ``tid`` row per record; extra top-level keys (ignored by the
    viewers) carry repro's own metadata, e.g. the bench stage totals.
    """
    events: List[Dict[str, object]] = []
    for tid, record in enumerate(records):
        spans = record.get("spans")
        if not isinstance(spans, dict):
            continue
        request_id = record.get("request_id")
        row = chrome_trace_events(spans, pid=0, tid=tid)
        if request_id:
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"request {request_id}"},
            })
        events.extend(row)
    document: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document.update(metadata)
    return document


def write_chrome_trace(
    path: str,
    records: Sequence[Dict[str, object]],
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """Write :func:`chrome_trace_document` of *records* to *path*."""
    document = chrome_trace_document(records, metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Structured-log validation (used by tests and the CI obs-smoke checker)
# ----------------------------------------------------------------------
#: Keys every trace line written by the tracer must carry.
TRACE_LINE_KEYS = ("kind", "name", "ts", "duration_ms", "stages", "spans")

#: Keys every 500-path error line written by the server must carry.
ERROR_LINE_KEYS = ("kind", "request_id", "path", "error", "traceback", "ts")


def validate_trace_log(path: str) -> Dict[str, int]:
    """Check every line of a JSONL trace log parses and is well-formed.

    Returns per-kind line counts; raises ``ValueError`` on the first
    malformed line.  Kept dependency-free so the CI smoke job can run it
    with nothing but the checkout.
    """
    counts: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON: {error}") from error
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: line is not a JSON object")
            kind = record.get("kind", "?")
            required = {
                "trace": TRACE_LINE_KEYS,
                "error": ERROR_LINE_KEYS,
            }.get(kind, ("kind", "ts"))
            missing = [key for key in required if key not in record]
            if missing:
                raise ValueError(f"{path}:{number}: {kind} line missing keys {missing}")
            counts[kind] = counts.get(kind, 0) + 1
    return counts
