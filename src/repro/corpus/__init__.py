"""Synthetic treebank generation and corpus storage.

The paper's evaluation uses up to one million sentences of the AQUAINT news
corpus parsed with the Stanford parser.  Neither the corpus nor the parser is
available offline, so this package provides the substitution documented in
DESIGN.md: a deterministic PCFG-style generator that produces
Penn-Treebank-tagged constituency trees whose *shape statistics* (average
branching factor, branching-factor tail, label alphabet growth, tree size
distribution) track the values the paper reports for parsed English news.

Members
-------
* :mod:`repro.corpus.grammar` -- the probabilistic grammar and vocabulary.
* :mod:`repro.corpus.generator` -- sampling parse trees from the grammar.
* :mod:`repro.corpus.store` -- the in-memory corpus container and the
  flat on-disk "data file" used by the filtering phase.
"""

from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.corpus.grammar import Grammar, Vocabulary, default_grammar
from repro.corpus.store import Corpus, TreeStore, data_file_path

__all__ = [
    "data_file_path",
    "Grammar",
    "Vocabulary",
    "default_grammar",
    "CorpusGenerator",
    "generate_corpus",
    "Corpus",
    "TreeStore",
]
