"""Sampling syntactically annotated trees from a probabilistic grammar.

The generator plays the role of "AQUAINT parsed with the Stanford parser" in
this reproduction: it produces constituency trees with Penn Treebank tags
whose shape statistics match parsed English news closely enough that the
index-size and query-time experiments have the same shape as the paper's.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.corpus.grammar import Grammar, default_grammar
from repro.trees.node import Node, ParseTree


class CorpusGenerator:
    """Deterministic generator of parse trees.

    Parameters
    ----------
    grammar:
        The grammar to sample from; defaults to :func:`default_grammar`.
    seed:
        Seed of the private random generator.  Two generators built with the
        same grammar and seed produce identical corpora.
    wrap_root:
        When ``True`` (default) every sentence tree is wrapped in a ``ROOT``
        node, mirroring the Stanford parser output shown in Figure 1 of the
        paper.
    min_tokens / max_tokens:
        Rejection-sampling bounds on the sentence length, used to avoid
        degenerate one-word "sentences" and pathologically long ones.
    """

    def __init__(
        self,
        grammar: Optional[Grammar] = None,
        seed: int = 0,
        wrap_root: bool = True,
        min_tokens: int = 4,
        max_tokens: int = 45,
    ):
        self.grammar = grammar or default_grammar()
        self.rng = random.Random(seed)
        self.wrap_root = wrap_root
        self.min_tokens = min_tokens
        self.max_tokens = max_tokens

    # ------------------------------------------------------------------
    def _expand(self, symbol: str, depth: int) -> Node:
        """Recursively expand *symbol* into a tree node."""
        if not self.grammar.is_phrase(symbol):
            # Pre-terminal: attach a sampled lexical leaf.
            word = self.grammar.vocabulary.sample(symbol, self.rng)
            return Node(symbol, [Node(word)])
        production = self.grammar.choose(symbol, depth, self.rng)
        children = [self._expand(child, depth + 1) for child in production.rhs]
        return Node(symbol, children)

    def generate_tree(self, tid: int = -1) -> ParseTree:
        """Sample one parse tree (rejection-sampled to the token bounds)."""
        for _ in range(64):
            root = self._expand(self.grammar.start_symbol, 0)
            token_count = sum(1 for _ in root.leaves())
            if self.min_tokens <= token_count <= self.max_tokens:
                break
        if self.wrap_root:
            root = Node("ROOT", [root])
        return ParseTree(root, tid=tid)

    def generate(self, count: int, start_tid: int = 0) -> Iterator[ParseTree]:
        """Yield *count* parse trees with sequential tree identifiers."""
        for offset in range(count):
            yield self.generate_tree(tid=start_tid + offset)

    def generate_list(self, count: int, start_tid: int = 0) -> List[ParseTree]:
        """Materialise :meth:`generate` into a list."""
        return list(self.generate(count, start_tid=start_tid))


def generate_corpus(
    sentence_count: int,
    seed: int = 0,
    grammar: Optional[Grammar] = None,
    wrap_root: bool = True,
) -> List[ParseTree]:
    """Convenience wrapper: generate a corpus of *sentence_count* parse trees."""
    generator = CorpusGenerator(grammar=grammar, seed=seed, wrap_root=wrap_root)
    return generator.generate_list(sentence_count)
