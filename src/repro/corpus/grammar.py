"""A probabilistic grammar for generating English-like constituency trees.

The grammar is a hand-crafted PCFG over Penn Treebank tags.  It is *not*
intended to produce grammatical English; it is tuned so that sampled trees
reproduce the shape statistics the paper relies on:

* small average branching factor for internal nodes (paper reports ~1.52),
* very few nodes with branching factor larger than 10,
* a bounded constituent-label alphabet with a Zipfian lexical vocabulary, and
* sentence parse trees of a few dozen nodes.

Determinism: all sampling goes through a :class:`random.Random` instance
supplied by the caller, so corpora are reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Constituent (phrase-level) tags used by the default grammar.
PHRASE_TAGS = ["S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP", "QP", "WHNP", "PRN"]

#: Part-of-speech (pre-terminal) tags used by the default grammar.
POS_TAGS = [
    "DT", "NN", "NNS", "NNP", "JJ", "JJR", "VBZ", "VBD", "VB", "VBN", "VBG",
    "IN", "RB", "CC", "PRP", "PRP$", "TO", "MD", "CD", "WDT", "WP", "WRB", ",", ".",
]


@dataclass(frozen=True)
class Production:
    """A single weighted production ``lhs -> rhs``.

    ``rhs`` symbols are either phrase tags (expanded recursively) or POS tags
    (expanded into a single lexical leaf by the vocabulary).
    """

    lhs: str
    rhs: Tuple[str, ...]
    weight: float


class Vocabulary:
    """A Zipf-distributed lexical vocabulary, one word list per POS tag.

    Words are synthetic (``nn_0017``-style) but their frequency distribution
    follows a Zipf law with the given exponent, mirroring natural-language
    token statistics -- which is what matters for index-key and posting-list
    size behaviour.
    """

    def __init__(self, sizes: Dict[str, int] | None = None, zipf_exponent: float = 1.1):
        self.zipf_exponent = zipf_exponent
        self.sizes = dict(sizes) if sizes else self._default_sizes()
        self._words: Dict[str, List[str]] = {}
        self._cumulative: Dict[str, List[float]] = {}
        for tag, size in self.sizes.items():
            prefix = tag.lower().replace("$", "s").replace(",", "comma").replace(".", "period")
            words = [f"{prefix}_{index:04d}" for index in range(size)]
            weights = [1.0 / (rank + 1) ** zipf_exponent for rank in range(size)]
            total = sum(weights)
            cumulative: List[float] = []
            acc = 0.0
            for weight in weights:
                acc += weight / total
                cumulative.append(acc)
            self._words[tag] = words
            self._cumulative[tag] = cumulative

    @staticmethod
    def _default_sizes() -> Dict[str, int]:
        sizes = {
            "NN": 2500, "NNS": 1200, "NNP": 1800, "JJ": 900, "JJR": 120,
            "VBZ": 350, "VBD": 500, "VB": 450, "VBN": 350, "VBG": 300,
            "RB": 300, "IN": 60, "DT": 12, "CC": 8, "PRP": 12, "PRP$": 8,
            "TO": 1, "MD": 10, "CD": 400, "WDT": 4, "WP": 5, "WRB": 5,
            ",": 1, ".": 2,
        }
        return sizes

    def tags(self) -> Sequence[str]:
        """The POS tags this vocabulary can realise."""
        return list(self._words)

    def sample(self, tag: str, rng: random.Random) -> str:
        """Sample a word for *tag* according to the Zipf distribution."""
        if tag not in self._words:
            return tag.lower()
        point = rng.random()
        cumulative = self._cumulative[tag]
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return self._words[tag][lo]


class Grammar:
    """A weighted context-free grammar with depth-aware expansion.

    To keep sampled trees finite and realistically sized, recursive phrase
    expansions are damped: beyond ``soft_depth`` the sampler prefers the
    shortest / least recursive productions for a symbol.
    """

    def __init__(
        self,
        productions: Sequence[Production],
        vocabulary: Vocabulary,
        start_symbol: str = "S",
        soft_depth: int = 6,
        hard_depth: int = 12,
    ):
        self.start_symbol = start_symbol
        self.vocabulary = vocabulary
        self.soft_depth = soft_depth
        self.hard_depth = hard_depth
        self._by_lhs: Dict[str, List[Production]] = {}
        for production in productions:
            self._by_lhs.setdefault(production.lhs, []).append(production)
        if start_symbol not in self._by_lhs:
            raise ValueError(f"start symbol {start_symbol!r} has no productions")

    # ------------------------------------------------------------------
    def symbols(self) -> Sequence[str]:
        """All left-hand-side symbols of the grammar."""
        return list(self._by_lhs)

    def productions_for(self, symbol: str) -> Sequence[Production]:
        """The productions whose left-hand side is *symbol*."""
        return list(self._by_lhs.get(symbol, ()))

    def is_phrase(self, symbol: str) -> bool:
        """``True`` when *symbol* is expanded recursively (has productions)."""
        return symbol in self._by_lhs

    # ------------------------------------------------------------------
    def _recursiveness(self, production: Production) -> int:
        """Number of phrase symbols on the right-hand side (recursion proxy)."""
        return sum(1 for symbol in production.rhs if self.is_phrase(symbol))

    def choose(self, symbol: str, depth: int, rng: random.Random) -> Production:
        """Pick a production for *symbol* respecting the depth damping."""
        options = self._by_lhs[symbol]
        if depth >= self.hard_depth:
            # Force the least recursive expansion available.
            return min(options, key=self._recursiveness)
        if depth >= self.soft_depth:
            # Exponentially damp recursive productions beyond the soft depth.
            damping = 0.5 ** (depth - self.soft_depth + 1)
            weights = [
                production.weight * (damping ** self._recursiveness(production))
                for production in options
            ]
        else:
            weights = [production.weight for production in options]
        total = sum(weights)
        point = rng.random() * total
        acc = 0.0
        for production, weight in zip(options, weights):
            acc += weight
            if point <= acc:
                return production
        return options[-1]


def default_grammar(vocabulary: Vocabulary | None = None) -> Grammar:
    """Build the default English-like grammar used by the experiments.

    The production inventory and weights are chosen so that the average
    internal branching factor of sampled trees is close to 1.5 and sentences
    have roughly 8--25 tokens (30--80 tree nodes), matching news text parses.
    """
    productions = [
        # Sentences -----------------------------------------------------
        Production("S", ("NP", "VP"), 0.58),
        Production("S", ("NP", "VP", "."), 0.20),
        Production("S", ("PP", ",", "NP", "VP"), 0.05),
        Production("S", ("ADVP", ",", "NP", "VP"), 0.03),
        Production("S", ("S", "CC", "S"), 0.04),
        Production("S", ("VP",), 0.05),
        Production("S", ("NP", "VP", "PP"), 0.05),
        # Noun phrases --------------------------------------------------
        Production("NP", ("DT", "NN"), 0.22),
        Production("NP", ("DT", "JJ", "NN"), 0.12),
        Production("NP", ("NN",), 0.08),
        Production("NP", ("NNS",), 0.07),
        Production("NP", ("NNP",), 0.10),
        Production("NP", ("NNP", "NNP"), 0.06),
        Production("NP", ("PRP",), 0.06),
        Production("NP", ("DT", "NNS"), 0.05),
        Production("NP", ("NP", "PP"), 0.09),
        Production("NP", ("NP", "SBAR"), 0.03),
        Production("NP", ("NP", ",", "NP", ","), 0.02),
        Production("NP", ("JJ", "NNS"), 0.04),
        Production("NP", ("DT", "JJ", "JJ", "NN"), 0.02),
        Production("NP", ("PRP$", "NN"), 0.03),
        Production("NP", ("QP", "NNS"), 0.02),
        Production("NP", ("NP", "CC", "NP"), 0.03),
        Production("NP", ("DT", "NN", "NN"), 0.03),
        # Verb phrases --------------------------------------------------
        Production("VP", ("VBZ", "NP"), 0.16),
        Production("VP", ("VBD", "NP"), 0.16),
        Production("VP", ("VBZ", "ADJP"), 0.04),
        Production("VP", ("VB", "NP"), 0.07),
        Production("VP", ("MD", "VP"), 0.06),
        Production("VP", ("VBD", "SBAR"), 0.04),
        Production("VP", ("VBZ", "SBAR"), 0.03),
        Production("VP", ("VBD", "NP", "PP"), 0.08),
        Production("VP", ("VBZ", "NP", "PP"), 0.07),
        Production("VP", ("VBN", "PP"), 0.05),
        Production("VP", ("VBG", "NP"), 0.04),
        Production("VP", ("VBD",), 0.03),
        Production("VP", ("VBZ",), 0.02),
        Production("VP", ("VP", "CC", "VP"), 0.03),
        Production("VP", ("TO", "VP"), 0.04),
        Production("VP", ("VB", "PP"), 0.03),
        Production("VP", ("VBD", "ADVP"), 0.03),
        Production("VP", ("VBZ", "VP"), 0.02),
        # Prepositional / adjectival / adverbial phrases ------------------
        Production("PP", ("IN", "NP"), 0.92),
        Production("PP", ("TO", "NP"), 0.08),
        Production("ADJP", ("JJ",), 0.55),
        Production("ADJP", ("RB", "JJ"), 0.25),
        Production("ADJP", ("JJ", "PP"), 0.20),
        Production("ADVP", ("RB",), 0.80),
        Production("ADVP", ("RB", "RB"), 0.20),
        Production("QP", ("CD",), 0.55),
        Production("QP", ("CD", "CD"), 0.20),
        Production("QP", ("RB", "CD"), 0.25),
        # Subordinate clauses and wh-phrases -------------------------------
        Production("SBAR", ("IN", "S"), 0.50),
        Production("SBAR", ("WHNP", "S"), 0.50),
        Production("WHNP", ("WDT",), 0.45),
        Production("WHNP", ("WP",), 0.45),
        Production("WHNP", ("WRB",), 0.10),
        Production("PRN", (",", "NP", ","), 1.00),
    ]
    return Grammar(productions, vocabulary or Vocabulary())
