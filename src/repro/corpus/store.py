"""Corpus containers and the flat on-disk "data file".

Section 6.1 of the paper: *"We also flattened and sequentially stored parse
trees in a separate file, which we call the data file."*  The data file is
what the filtering phase of the filter-based coding reads back to validate
candidate trees, and its size is the yardstick the paper compares index sizes
against.

Two classes are provided:

* :class:`Corpus` -- an in-memory, indexable collection of parse trees used by
  generators, tests and small experiments.
* :class:`TreeStore` -- an append-only binary file of flattened trees with an
  in-memory ``tid -> offset`` table, supporting random access by tree id.
"""

from __future__ import annotations

import io
import os
import struct
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.trees.node import ParseTree
from repro.trees.penn import parse_penn, to_penn


class Corpus:
    """An in-memory corpus of parse trees addressable by tree id."""

    def __init__(self, trees: Optional[Iterable[ParseTree]] = None):
        self._trees: List[ParseTree] = []
        self._by_tid: Dict[int, ParseTree] = {}
        if trees:
            for tree in trees:
                self.add(tree)

    # ------------------------------------------------------------------
    def add(self, tree: ParseTree) -> None:
        """Add a tree; assigns the next sequential tid when it has none."""
        if tree.tid < 0:
            tree.tid = len(self._trees)
        if tree.tid in self._by_tid:
            raise ValueError(f"duplicate tree id {tree.tid}")
        self._trees.append(tree)
        self._by_tid[tree.tid] = tree

    def get(self, tid: int) -> ParseTree:
        """Return the tree with identifier *tid*."""
        try:
            return self._by_tid[tid]
        except KeyError:
            raise KeyError(f"no tree with tid {tid}") from None

    def __contains__(self, tid: int) -> bool:
        return tid in self._by_tid

    def __len__(self) -> int:
        return len(self._trees)

    def __iter__(self) -> Iterator[ParseTree]:
        return iter(self._trees)

    def __getitem__(self, index: int) -> ParseTree:
        return self._trees[index]

    def tids(self) -> List[int]:
        """All tree identifiers in insertion order."""
        return [tree.tid for tree in self._trees]

    def total_nodes(self) -> int:
        """Total number of nodes across all trees."""
        return sum(tree.size() for tree in self._trees)

    # ------------------------------------------------------------------
    def to_penn_lines(self) -> Iterator[str]:
        """Yield one bracketed line per tree (round-trips via ``from_penn_lines``)."""
        for tree in self._trees:
            yield to_penn(tree.root)

    @classmethod
    def from_penn_lines(cls, lines: Iterable[str]) -> "Corpus":
        """Build a corpus from bracketed lines, assigning sequential tids."""
        corpus = cls()
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            corpus.add(ParseTree(parse_penn(stripped), tid=len(corpus)))
        return corpus

    def save(self, path: str | os.PathLike) -> None:
        """Write the corpus as a text file of bracketed lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_penn_lines():
                handle.write(line + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Corpus":
        """Read a corpus previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_penn_lines(handle)


def data_file_path(index_path: str) -> str:
    """The data-file path conventionally stored next to a subtree index.

    The single home of the ``<index>.data`` naming convention: the CLI's
    ``build`` writes it and the query service's :meth:`QueryService.open`
    reads it, so the two can never drift apart.
    """
    return index_path + ".data"


_HEADER = struct.Struct("<II")  # (tid, payload length)


class TreeStore:
    """Append-only binary data file of flattened parse trees.

    Each record is ``<tid:uint32> <length:uint32> <utf-8 bracketed tree>``.
    An in-memory offset table provides O(1) random access by tree id, which
    is what the filtering phase needs: fetch candidate trees by tid and run
    the exact matcher over them.

    Record access goes through one shared file handle whose seek+read (and
    seek+write) pairs are serialised by a lock, so concurrent ``get`` calls
    -- e.g. filtering phases fanning out across threads -- never interleave
    on the handle.  Parsing happens outside the lock.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._offsets: Dict[int, int] = {}
        self._file: Optional[io.BufferedRandom] = None
        self._lock = threading.Lock()
        if os.path.exists(self.path):
            self._open()
            self._build_offset_table()
        else:
            with open(self.path, "wb"):
                pass
            self._open()

    # ------------------------------------------------------------------
    def _open(self) -> None:
        self._file = open(self.path, "r+b")

    def _build_offset_table(self) -> None:
        assert self._file is not None
        self._offsets.clear()
        self._file.seek(0)
        while True:
            offset = self._file.tell()
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            tid, length = _HEADER.unpack(header)
            self._offsets[tid] = offset
            self._file.seek(length, os.SEEK_CUR)

    # ------------------------------------------------------------------
    def append(self, tree: ParseTree) -> None:
        """Append one tree to the data file."""
        assert self._file is not None
        payload = to_penn(tree.root).encode("utf-8")
        with self._lock:
            self._file.seek(0, os.SEEK_END)
            offset = self._file.tell()
            self._file.write(_HEADER.pack(tree.tid, len(payload)))
            self._file.write(payload)
            self._offsets[tree.tid] = offset

    def extend(self, trees: Iterable[ParseTree]) -> None:
        """Append many trees."""
        for tree in trees:
            self.append(tree)

    def get(self, tid: int) -> ParseTree:
        """Fetch and re-parse the tree with identifier *tid* (thread-safe)."""
        assert self._file is not None
        try:
            offset = self._offsets[tid]
        except KeyError:
            raise KeyError(f"no tree with tid {tid}") from None
        with self._lock:
            self._file.seek(offset)
            header = self._file.read(_HEADER.size)
            stored_tid, length = _HEADER.unpack(header)
            payload = self._file.read(length).decode("utf-8")
        return ParseTree(parse_penn(payload), tid=stored_tid)

    def get_many(self, tids: Sequence[int]) -> List[ParseTree]:
        """Fetch several trees; tids are looked up in sorted order to keep IO sequential."""
        return [self.get(tid) for tid in sorted(tids)]

    def __contains__(self, tid: int) -> bool:
        return tid in self._offsets

    def __iter__(self) -> Iterator[ParseTree]:
        """Stream every tree in :meth:`tids` order without materialising the store.

        Walks the offset table on a dedicated read handle, so iteration
        neither builds a list (unlike ``get_many(tids())``) nor disturbs the
        seek position used by concurrent :meth:`get` calls, and it always
        agrees with :meth:`get` -- including for a tid whose record was
        re-appended (the superseded physical record is skipped).  Offsets
        are ascending for append-only stores, so the pass stays sequential.
        Records appended after the iterator was created are not yielded.
        """
        self.flush()
        offsets = list(self._offsets.values())
        with open(self.path, "rb") as handle:
            for offset in offsets:
                handle.seek(offset)
                header = handle.read(_HEADER.size)
                tid, length = _HEADER.unpack(header)
                payload = handle.read(length).decode("utf-8")
                yield ParseTree(parse_penn(payload), tid=tid)

    def __len__(self) -> int:
        return len(self._offsets)

    def tids(self) -> List[int]:
        """All stored tree identifiers in file order."""
        return list(self._offsets)

    def size_bytes(self) -> int:
        """Current size of the data file in bytes."""
        assert self._file is not None
        self._file.flush()
        return os.path.getsize(self.path)

    def flush(self) -> None:
        """Flush buffered writes to disk."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TreeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @classmethod
    def build(cls, path: str | os.PathLike, trees: Iterable[ParseTree]) -> "TreeStore":
        """Create a data file at *path* containing *trees*."""
        if os.path.exists(path):
            os.remove(path)
        store = cls(path)
        store.extend(trees)
        store.flush()
        return store
