"""A compact textual syntax for tree queries.

Two forms are supported and can be mixed freely:

Bracketed tree form
    ``S(NP(NNS(agouti)))(//VP)`` -- a node label followed by parenthesised
    children.  A child whose text starts with ``//`` is attached with the
    ancestor-descendant axis, otherwise with the parent-child axis.

Linear path form
    ``S/NP//NN`` -- a chain of labels separated by ``/`` (child) or ``//``
    (descendant), equivalent to ``S(NP(//NN))``.  Paths may appear inside
    brackets as well, e.g. ``VP(VBZ/is)(NP//NN)``.

The grammar in EBNF::

    query   := step
    step    := label chain* child*
    chain   := ("/" | "//") label chain* child*
    child   := "(" ["//" | "/"] step ")"
    label   := any run of characters except "(", ")" and "/"

Whitespace around tokens is ignored.
"""

from __future__ import annotations



from repro.query.model import QueryNode, QueryTree
from repro.trees.matching import AXIS_CHILD, AXIS_DESCENDANT


class QuerySyntaxError(ValueError):
    """Raised when a query string cannot be parsed."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.position = 0

    # ------------------------------------------------------------------
    def _skip_whitespace(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1

    def _peek(self) -> str:
        self._skip_whitespace()
        if self.position >= len(self.text):
            return ""
        return self.text[self.position]

    def _read_axis(self) -> str:
        """Consume an optional axis marker, defaulting to the child axis."""
        self._skip_whitespace()
        if self.text.startswith("//", self.position):
            self.position += 2
            return AXIS_DESCENDANT
        if self.text.startswith("/", self.position):
            self.position += 1
            return AXIS_CHILD
        return AXIS_CHILD

    def _read_label(self) -> str:
        self._skip_whitespace()
        start = self.position
        while self.position < len(self.text) and self.text[self.position] not in "()/" and not self.text[self.position].isspace():
            self.position += 1
        label = self.text[start:self.position]
        if not label:
            raise QuerySyntaxError("expected a node label", start)
        return label

    # ------------------------------------------------------------------
    def parse_step(self) -> QueryNode:
        """Parse ``label chain* child*`` starting at the current position."""
        node = QueryNode(self._read_label())
        self._parse_tail(node)
        return node

    def _parse_tail(self, node: QueryNode) -> None:
        """Parse the chains and bracketed children that follow a label."""
        while True:
            self._skip_whitespace()
            if self.position >= len(self.text):
                return
            current = self.text[self.position]
            if current == "(":
                self.position += 1
                axis = self._read_axis()
                child = self.parse_step()
                if self._peek() != ")":
                    raise QuerySyntaxError("missing ')'", self.position)
                self.position += 1
                node.add_child(child, axis)
            elif current == "/":
                axis = self._read_axis()
                child = QueryNode(self._read_label())
                node.add_child(child, axis)
                # The rest of the chain hangs off the new child.
                self._parse_tail(child)
                return
            else:
                return


def parse_query(text: str) -> QueryTree:
    """Parse a query string into a :class:`~repro.query.model.QueryTree`."""
    parser = _Parser(text)
    parser._skip_whitespace()
    if parser.position >= len(text):
        raise QuerySyntaxError("empty query", 0)
    root = parser.parse_step()
    parser._skip_whitespace()
    if parser.position != len(text):
        raise QuerySyntaxError(
            f"unexpected trailing text {text[parser.position:]!r}", parser.position
        )
    return QueryTree(root)
