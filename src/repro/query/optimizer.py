"""Selectivity-aware cover selection (the paper's "future directions").

Section 7 of the paper proposes, as future work, "building data structures
that store statistics about subtrees such as their selectivities" and using
them for query optimisation over the subtree index.  This module implements
that extension:

* :class:`SelectivityCatalog` -- a cache of posting-list lengths per index
  key, filled lazily from the index (a lookup per key, memoised);
* :func:`estimate_cover_cost` -- a simple cost model for a cover: the sum of
  the posting-list lengths of its subtrees, which is what the merge joins
  actually scan;
* :func:`choose_cover` -- enumerate a small family of candidate covers
  (padded / unpadded, and both decomposition strategies where the coding
  allows it) and pick the cheapest under the cost model.

The :class:`OptimizingExecutor` wraps a :class:`~repro.exec.executor.QueryExecutor`
and overrides only the decomposition step, so all join machinery and
correctness guarantees are inherited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coding.root_split import RootSplitCoding
from repro.core.index import SubtreeIndex
from repro.exec.executor import QueryExecutor, QueryResult
from repro.query.covers import Cover
from repro.query.decompose import min_rc, optimal_cover
from repro.query.model import QueryTree


@dataclass
class SelectivityCatalog:
    """Posting-list lengths per index key, fetched lazily and memoised.

    The catalog answers "how many postings does this key have?" without
    decoding the posting payloads (lengths are cheap to compute after one
    lookup, and repeated queries share the cache).
    """

    index: SubtreeIndex
    _lengths: Dict[bytes, int] = field(default_factory=dict)

    def posting_list_length(self, key: bytes) -> int:
        """Length of the posting list stored under *key* (0 when absent)."""
        if key not in self._lengths:
            self._lengths[key] = len(self.index.lookup(key))
        return self._lengths[key]

    def preload(self, keys: Sequence[bytes]) -> None:
        """Warm the cache for a batch of keys."""
        for key in keys:
            self.posting_list_length(key)

    def cached_keys(self) -> List[bytes]:
        """Keys whose lengths are already cached."""
        return list(self._lengths)


def estimate_cover_cost(catalog: SelectivityCatalog, cover: Cover) -> int:
    """Estimated evaluation cost of a cover: total postings its joins must scan.

    A cover containing a key that is absent from the index has cost 0 for that
    key -- and the query provably has no matches, so such covers are in fact
    the cheapest possible plans and are preferred automatically.
    """
    return sum(
        catalog.posting_list_length(subtree.key_bytes()) for subtree in cover.subtrees
    )


def candidate_covers(query: QueryTree, mss: int, root_split_only: bool) -> List[Tuple[str, Cover]]:
    """The family of candidate covers considered by the optimiser.

    Root-split coding may only use root-split covers (``minRC``); the other
    codings can also use ``optimalCover``.  For both strategies the padded
    (max-cover) and unpadded variants are generated, since padding trades
    longer keys (fewer postings each) for potentially redundant subtrees.
    """
    candidates: List[Tuple[str, Cover]] = [
        ("min-rc", min_rc(query, mss, pad=True)),
        ("min-rc/no-pad", min_rc(query, mss, pad=False)),
    ]
    if not root_split_only:
        candidates.extend(
            [
                ("optimal", optimal_cover(query, mss, pad=True)),
                ("optimal/no-pad", optimal_cover(query, mss, pad=False)),
            ]
        )
    return candidates


def choose_cover(
    catalog: SelectivityCatalog, query: QueryTree, mss: int, root_split_only: bool
) -> Tuple[str, Cover, int]:
    """Pick the cheapest candidate cover under the selectivity cost model.

    Returns ``(strategy_name, cover, estimated_cost)``.  Ties are broken in
    favour of the cover with fewer subtrees (fewer joins).
    """
    ranked: List[Tuple[int, int, str, Cover]] = []
    for name, cover in candidate_covers(query, mss, root_split_only):
        cost = estimate_cover_cost(catalog, cover)
        ranked.append((cost, len(cover), name, cover))
    ranked.sort(key=lambda item: (item[0], item[1]))
    cost, _, name, cover = ranked[0]
    return name, cover, cost


class OptimizingExecutor(QueryExecutor):
    """A query executor that picks its cover using posting-list statistics.

    Drop-in replacement for :class:`~repro.exec.executor.QueryExecutor`; only
    the decomposition step changes, so results are identical and only the
    plan (and therefore the runtime) may differ.
    """

    def __init__(self, index: SubtreeIndex, store=None, pad: bool = True):
        super().__init__(index, store=store, pad=pad)
        self.catalog = SelectivityCatalog(index)
        self._root_split_only = isinstance(index.coding, RootSplitCoding)
        #: Strategy chosen for the most recent query (for inspection/reporting).
        self.last_strategy: Optional[str] = None
        self.last_estimated_cost: Optional[int] = None

    def decompose(self, query: QueryTree) -> Cover:
        """Choose the cheapest candidate cover for *query*."""
        name, cover, cost = choose_cover(
            self.catalog, query, self.index.mss, self._root_split_only
        )
        self.last_strategy = name
        self.last_estimated_cost = cost
        return cover

    def execute(self, query: QueryTree) -> QueryResult:
        """Evaluate *query*; identical results to the base executor."""
        return super().execute(query)
