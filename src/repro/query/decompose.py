"""Query decomposition: ``optimalCover``, ``assign`` / FFD packing and ``minRC``.

Section 5.2 of the paper gives two decomposition algorithms:

``optimalCover``
    produces a join-optimal cover (fewest subtrees).  Subtrees may share
    internal nodes, so it is used with the filter-based and subtree-interval
    codings whose joins can reference any stored node.

``minRC``
    produces the smallest *root-split* cover: every node is covered by a
    subtree rooted at itself or at an ancestor that is also a cover-subtree
    root, so all joins happen between subtree roots and the deep-branching
    anomaly (Definition 10, Figure 5) is avoided.  It is the decomposition
    used with root-split coding.

Both are built on the same child-remainder packing primitive the paper calls
``assign``: child subtrees smaller than ``mss`` are first-fit-decreasing
packed into bins of capacity ``mss - 1`` rooted at the current node (Lemma 3
maps this to FFD bin packing, optimal for ``mss <= 6``).

Two deviations from the paper's pseudocode, documented in DESIGN.md:

* the paper's ``optimalCover`` can strand unassigned nodes below an already
  assigned ancestor; this implementation instead propagates a *connected
  remainder rooted at the current node* upwards, which preserves the
  join-optimality argument while always producing a valid cover;
* the optional padding step ("fill subtrees up to ``mss``") only absorbs
  *whole, already covered* child subtrees, never partial paths into covered
  regions, because partial padding is exactly what re-introduces the
  deep-branching anomaly the root-split cover must avoid.

Queries with ``//`` (ancestor-descendant) edges are split into rigid
components first -- index keys cannot express ``//`` -- and each component is
decomposed independently; the executor enforces the cut edges with structural
joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.keys import canonical_key
from repro.query.covers import Cover, CoverSubtree, make_subtree
from repro.query.model import QueryNode, QueryTree
from repro.trees.matching import AXIS_CHILD, AXIS_DESCENDANT


# ----------------------------------------------------------------------
# Rigid components (maximal '/'-connected subtrees)
# ----------------------------------------------------------------------
def component_children(node: QueryNode) -> List[QueryNode]:
    """Children of *node* connected by a parent-child (``/``) edge."""
    return [
        child
        for child, axis in zip(node.children, node.child_axes)
        if axis == AXIS_CHILD
    ]


def component_nodes(node: QueryNode) -> List[QueryNode]:
    """All nodes of the rigid component subtree rooted at *node* (pre-order)."""
    out = [node]
    for child in component_children(node):
        out.extend(component_nodes(child))
    return out


def component_size(node: QueryNode) -> int:
    """Number of nodes of the rigid component subtree rooted at *node*."""
    return len(component_nodes(node))


def component_roots(query: QueryTree) -> List[QueryNode]:
    """Roots of the rigid components: the query root plus every ``//`` child."""
    roots = [query.root]
    for parent, child, axis in query.edges():
        if axis == AXIS_DESCENDANT:
            roots.append(child)
    return roots


# ----------------------------------------------------------------------
# FFD packing of child remainders ("assign" in the paper)
# ----------------------------------------------------------------------
@dataclass
class _Piece:
    """A connected, still-uncovered subtree rooted at a child of the packing node."""

    root: QueryNode
    nodes: List[QueryNode]

    @property
    def size(self) -> int:
        return len(self.nodes)


def _whole_piece(node: QueryNode) -> _Piece:
    return _Piece(root=node, nodes=component_nodes(node))


def _ffd_pack(pieces: Sequence[_Piece], capacity: int) -> List[List[_Piece]]:
    """First-fit-decreasing packing of pieces into bins of the given capacity."""
    bins: List[List[_Piece]] = []
    fill: List[int] = []
    for piece in sorted(pieces, key=lambda item: item.size, reverse=True):
        for index, used in enumerate(fill):
            if used + piece.size <= capacity:
                bins[index].append(piece)
                fill[index] += piece.size
                break
        else:
            bins.append([piece])
            fill.append(piece.size)
    return bins


def _bin_subtree(root: QueryNode, pieces: Sequence[_Piece]) -> CoverSubtree:
    nodes = [root]
    for piece in pieces:
        nodes.extend(piece.nodes)
    return make_subtree(root, nodes)


# ----------------------------------------------------------------------
# Padding (max-covers, Section 5.2.1)
# ----------------------------------------------------------------------
def _pad_bins(root: QueryNode, bins: List[CoverSubtree], mss: int) -> List[CoverSubtree]:
    """Grow bins rooted at *root* towards size ``mss`` with whole covered child subtrees.

    Only entire child subtrees already covered by the other bins are added, and
    never one whose unordered structure duplicates an existing sibling inside
    the bin (that would make key positions ambiguous).
    """
    padded: List[CoverSubtree] = []
    for subtree in bins:
        if subtree.root is not root or subtree.size >= mss:
            padded.append(subtree)
            continue
        node_ids = set(subtree.node_ids)
        existing_child_keys = {
            canonical_key(child)[0]
            for child in component_children(root)
            if child.node_id in node_ids
        }
        for child in component_children(root):
            if child.node_id in node_ids:
                continue
            child_nodes = component_nodes(child)
            if len(node_ids) + len(child_nodes) > mss:
                continue
            child_key = canonical_key(child)[0]
            if child_key in existing_child_keys:
                continue
            node_ids.update(node.node_id for node in child_nodes)
            existing_child_keys.add(child_key)
        padded.append(CoverSubtree(root=root, node_ids=frozenset(node_ids)))
    return padded


# ----------------------------------------------------------------------
# optimalCover
# ----------------------------------------------------------------------
def _optimal_component(
    node: QueryNode, mss: int, is_component_root: bool, pad: bool
) -> Tuple[List[CoverSubtree], Optional[_Piece]]:
    """Cover the rigid component below *node*; may defer a remainder to the parent."""
    subtrees: List[CoverSubtree] = []
    pieces: List[_Piece] = []

    for child in component_children(node):
        size = component_size(child)
        if size == mss:
            subtrees.append(make_subtree(child, component_nodes(child)))
        elif size > mss:
            child_subtrees, remainder = _optimal_component(child, mss, False, pad)
            subtrees.extend(child_subtrees)
            if remainder is not None:
                pieces.append(remainder)
        else:
            pieces.append(_whole_piece(child))

    packed = _ffd_pack(pieces, mss - 1)

    remainder: Optional[_Piece] = None
    if not is_component_root and mss > 1:
        if not packed:
            remainder = _Piece(root=node, nodes=[node])
        else:
            # Defer the least-full bin to the parent when it still fits there.
            smallest_index = min(range(len(packed)), key=lambda i: sum(p.size for p in packed[i]))
            smallest_size = sum(piece.size for piece in packed[smallest_index])
            if 1 + smallest_size <= mss - 1:
                deferred = packed.pop(smallest_index)
                nodes = [node]
                for piece in deferred:
                    nodes.extend(piece.nodes)
                remainder = _Piece(root=node, nodes=nodes)

    own_bins = [_bin_subtree(node, bin_pieces) for bin_pieces in packed]
    if not own_bins and remainder is None:
        # Nothing roots here and nothing is deferred: the node still needs covering.
        own_bins.append(make_subtree(node, [node]))
    if pad:
        own_bins = _pad_bins(node, own_bins, mss)
    subtrees.extend(own_bins)
    return subtrees, remainder


def optimal_cover(query: QueryTree, mss: int, pad: bool = True) -> Cover:
    """Join-optimal cover of *query* (paper's ``optimalCover``).

    Used with the filter-based and subtree-interval codings; the resulting
    subtrees may overlap on internal nodes, which those codings can join on.
    """
    if mss < 1:
        raise ValueError("mss must be at least 1")
    subtrees: List[CoverSubtree] = []
    for root in component_roots(query):
        component_subtrees, remainder = _optimal_component(root, mss, True, pad)
        subtrees.extend(component_subtrees)
        if remainder is not None:  # pragma: no cover - component roots never defer
            subtrees.append(make_subtree(remainder.root, remainder.nodes))
    return Cover(query=query, subtrees=subtrees)


# ----------------------------------------------------------------------
# minRC
# ----------------------------------------------------------------------
def _forced_root_ids(query: QueryTree) -> frozenset:
    """Query nodes that must root their own cover subtree under root-split coding.

    These are the parent endpoints of ``//`` edges: the executor can only
    anchor an ancestor-descendant join on a node whose interval code is
    stored, i.e. on a cover-subtree root.
    """
    forced = set()
    for parent, _, axis in query.edges():
        if axis == AXIS_DESCENDANT:
            forced.add(parent.node_id)
    return frozenset(forced)


def _contains_forced(node: QueryNode, forced: frozenset) -> bool:
    """``True`` when the rigid component subtree of *node* contains a forced root."""
    return any(item.node_id in forced for item in component_nodes(node))


def _min_rc_component(node: QueryNode, mss: int, pad: bool, forced: frozenset) -> List[CoverSubtree]:
    """Smallest root-split cover of the rigid component rooted at *node*."""
    subtrees: List[CoverSubtree] = []
    pieces: List[_Piece] = []

    for child in component_children(node):
        size = component_size(child)
        if _contains_forced(child, forced) or size > mss:
            # Forced roots must end up rooting their own subtrees, so descend.
            subtrees.extend(_min_rc_component(child, mss, pad, forced))
        elif size == mss:
            subtrees.append(make_subtree(child, component_nodes(child)))
        else:
            pieces.append(_whole_piece(child))

    packed = _ffd_pack(pieces, mss - 1)
    if not packed:
        packed = [[]]  # the node itself still needs a covering subtree rooted here
    own_bins = [_bin_subtree(node, bin_pieces) for bin_pieces in packed]
    if pad:
        own_bins = _pad_bins(node, own_bins, mss)
    subtrees.extend(own_bins)
    return subtrees


def min_rc(query: QueryTree, mss: int, pad: bool = True) -> Cover:
    """Smallest root-split cover of *query* (paper's ``minRC``).

    Every cover subtree's root is the query root, a ``//`` child, the parent
    endpoint of a ``//`` edge, a node whose component subtree exceeds ``mss``
    or an exactly-``mss`` child of such a node -- and the parent of every
    such root is itself the root of another cover subtree, which is what
    makes root-only joins sufficient and avoids the deep-branching anomaly.
    """
    if mss < 1:
        raise ValueError("mss must be at least 1")
    forced = _forced_root_ids(query)
    subtrees: List[CoverSubtree] = []
    for root in component_roots(query):
        subtrees.extend(_min_rc_component(root, mss, pad, forced))
    return Cover(query=query, subtrees=subtrees)


# ----------------------------------------------------------------------
# Strategy dispatch
# ----------------------------------------------------------------------
_STRATEGIES = {
    "optimal": optimal_cover,
    "min-rc": min_rc,
}


def decompose(query: QueryTree, mss: int, strategy: str = "optimal", pad: bool = True) -> Cover:
    """Decompose *query* with the named strategy (``"optimal"`` or ``"min-rc"``)."""
    try:
        algorithm = _STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ValueError(f"unknown decomposition strategy {strategy!r} (known: {known})") from None
    return algorithm(query, mss, pad=pad)
