"""The tree-query data model (Definition 2 of the paper).

A query is an unordered, labelled tree whose edges carry a navigational axis:
``/`` for parent-child or ``//`` for ancestor-descendant.  Query nodes follow
the same ``label`` / ``children`` shape as data nodes (so canonicalisation
and the reference matcher work on them unchanged) and additionally expose a
parallel ``child_axes`` list.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.trees.matching import AXIS_CHILD, AXIS_DESCENDANT
from repro.trees.node import Node, ParseTree

VALID_AXES = (AXIS_CHILD, AXIS_DESCENDANT)


class QueryNode:
    """A node of a tree query."""

    __slots__ = ("label", "children", "child_axes", "parent", "parent_axis", "node_id")

    def __init__(self, label: str):
        self.label = label
        self.children: List[QueryNode] = []
        self.child_axes: List[str] = []
        self.parent: Optional[QueryNode] = None
        self.parent_axis: Optional[str] = None
        #: Pre-order identifier assigned by :class:`QueryTree`; -1 until assigned.
        self.node_id: int = -1

    # ------------------------------------------------------------------
    def add_child(self, child: "QueryNode", axis: str = AXIS_CHILD) -> "QueryNode":
        """Attach *child* below this node with the given axis and return it."""
        if axis not in VALID_AXES:
            raise ValueError(f"invalid axis {axis!r}; expected '/' or '//'")
        child.parent = self
        child.parent_axis = axis
        self.children.append(child)
        self.child_axes.append(axis)
        return child

    def axis_to(self, child: "QueryNode") -> str:
        """Axis of the edge from this node to *child*."""
        for candidate, axis in zip(self.children, self.child_axes):
            if candidate is child:
                return axis
        raise ValueError("not a child of this node")

    # ------------------------------------------------------------------
    def preorder(self) -> Iterator["QueryNode"]:
        """Yield the nodes of this query subtree in pre-order."""
        yield self
        for child in self.children:
            yield from child.preorder()

    def size(self) -> int:
        """Number of nodes in this query subtree."""
        return 1 + sum(child.size() for child in self.children)

    def descendants(self) -> Iterator["QueryNode"]:
        """Yield proper descendants in pre-order."""
        for child in self.children:
            yield from child.preorder()

    def copy(self) -> "QueryNode":
        """Deep copy of this query subtree (node ids are not copied)."""
        clone = QueryNode(self.label)
        for child, axis in zip(self.children, self.child_axes):
            clone.add_child(child.copy(), axis)
        return clone

    def to_string(self) -> str:
        """Serialise in the textual query syntax (see :mod:`repro.query.parser`)."""
        parts = [self.label]
        for child, axis in zip(self.children, self.child_axes):
            marker = "" if axis == AXIS_CHILD else "//"
            parts.append(f"({marker}{child.to_string()})")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"QueryNode({self.to_string()!r})"


class QueryTree:
    """A query with stable node identifiers and convenience accessors."""

    def __init__(self, root: QueryNode):
        self.root = root
        self._nodes: List[QueryNode] = list(root.preorder())
        for index, node in enumerate(self._nodes):
            node.node_id = index

    # ------------------------------------------------------------------
    def nodes(self) -> List[QueryNode]:
        """All query nodes in pre-order (index == ``node_id``)."""
        return list(self._nodes)

    def node(self, node_id: int) -> QueryNode:
        """The node with the given identifier."""
        return self._nodes[node_id]

    def size(self) -> int:
        """Number of nodes in the query."""
        return len(self._nodes)

    def edges(self) -> List[Tuple[QueryNode, QueryNode, str]]:
        """All ``(parent, child, axis)`` edges of the query."""
        out: List[Tuple[QueryNode, QueryNode, str]] = []
        for node in self._nodes:
            for child, axis in zip(node.children, node.child_axes):
                out.append((node, child, axis))
        return out

    def labels(self) -> List[str]:
        """Labels of the query nodes in pre-order."""
        return [node.label for node in self._nodes]

    def has_descendant_axis(self) -> bool:
        """``True`` when any edge uses the ``//`` axis."""
        return any(axis == AXIS_DESCENDANT for _, _, axis in self.edges())

    def depth_of(self, node: QueryNode) -> int:
        """Depth of *node* below the query root (root has depth 0)."""
        depth = 0
        current = node
        while current.parent is not None:
            current = current.parent
            depth += 1
        return depth

    def path_between(self, ancestor: QueryNode, descendant: QueryNode) -> List[str]:
        """Axes along the path from *ancestor* down to *descendant*.

        Raises ``ValueError`` when *ancestor* is not actually an ancestor.
        """
        axes: List[str] = []
        current = descendant
        while current is not ancestor:
            if current.parent is None:
                raise ValueError("nodes are not in an ancestor-descendant relationship")
            axes.append(current.parent_axis or AXIS_CHILD)
            current = current.parent
        axes.reverse()
        return axes

    def to_string(self) -> str:
        """Serialise the query in the textual syntax."""
        return self.root.to_string()

    def copy(self) -> "QueryTree":
        """Deep copy with freshly assigned node ids."""
        return QueryTree(self.root.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"QueryTree({self.to_string()!r})"


# ----------------------------------------------------------------------
# Conversions from data trees
# ----------------------------------------------------------------------
def query_from_node(node: Node, axis: str = AXIS_CHILD) -> QueryNode:
    """Convert a data subtree into a query subtree with all-``/`` edges.

    Used by the FB query-set generator, which turns extracted data subtrees
    into queries, and by tests.
    """
    query = QueryNode(node.label)
    for child in node.children:
        query.add_child(query_from_node(child), axis)
    return query


def query_from_tree(tree: ParseTree | Node) -> QueryTree:
    """Convert a full data tree (or subtree) into a :class:`QueryTree`."""
    root = tree.root if isinstance(tree, ParseTree) else tree
    return QueryTree(query_from_node(root))


def has_duplicate_siblings(query: QueryTree | QueryNode) -> bool:
    """``True`` when some node has two children with identical unordered structure.

    Queries with canonically-equal sibling subtrees are ambiguous corner cases
    for decomposition-based evaluation (see DESIGN.md); the workload
    generators skip them so that every executor and the reference matcher
    agree on the result counts.
    """
    from repro.core.keys import canonical_key

    root = query.root if isinstance(query, QueryTree) else query
    for node in root.preorder():
        seen: Dict[bytes, int] = {}
        for child in node.children:
            key, _ = canonical_key(child)
            if key in seen:
                return True
            seen[key] = 1
    return False
