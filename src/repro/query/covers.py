"""Covers of tree queries (Definitions 5--10 of the paper).

A *cover* of a query is a set of subtrees of the query such that every query
node appears in at least one subtree.  Cover subtrees contain only
parent-child (``/``) edges -- index keys cannot express the ``//`` axis -- and
their size is bounded by the index's ``mss`` parameter (a *valid* cover).
The executor then joins the posting lists of the cover subtrees; which joins
are possible depends on the coding scheme, which is why root-split coding
needs the more constrained *root-split covers* of Definition 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.keys import canonical_key
from repro.query.model import QueryNode, QueryTree
from repro.trees.matching import AXIS_CHILD


class _KeyNode:
    """Induced-subtree node used to canonicalise a cover subtree into a key."""

    __slots__ = ("label", "children", "query_node")

    def __init__(self, query_node: QueryNode, children: Sequence["_KeyNode"]):
        self.query_node = query_node
        self.label = query_node.label
        self.children = list(children)


@dataclass(frozen=True)
class CoverSubtree:
    """One element of a cover: a connected, ``/``-only subtree of the query."""

    root: QueryNode
    node_ids: FrozenSet[int]

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of query nodes in this cover subtree."""
        return len(self.node_ids)

    def contains(self, node: QueryNode) -> bool:
        """``True`` when *node* belongs to this cover subtree."""
        return node.node_id in self.node_ids

    def _induced(self, node: QueryNode) -> _KeyNode:
        children = [
            self._induced(child)
            for child, axis in zip(node.children, node.child_axes)
            if child.node_id in self.node_ids and axis == AXIS_CHILD
        ]
        return _KeyNode(node, children)

    def validate(self) -> None:
        """Check connectivity and axis purity; raises ``ValueError`` if broken."""
        reachable = {item.query_node.node_id for item in _preorder(self._induced(self.root))}
        if reachable != set(self.node_ids):
            missing = set(self.node_ids) - reachable
            raise ValueError(
                f"cover subtree rooted at {self.root.label!r} is not connected via '/' edges; "
                f"unreachable node ids: {sorted(missing)}"
            )

    def key(self) -> Tuple[bytes, Dict[int, int]]:
        """Canonical index key of this subtree and the node-id -> position map.

        The position map tells the executor which slot of a subtree-interval
        posting corresponds to which query node.
        """
        self.validate()
        encoded, ordered = canonical_key(self._induced(self.root))
        positions = {
            item.query_node.node_id: position  # type: ignore[attr-defined]
            for position, item in enumerate(ordered)
        }
        return encoded, positions

    def key_bytes(self) -> bytes:
        """Canonical index key of this subtree."""
        return self.key()[0]

    def query_nodes(self) -> List[QueryNode]:
        """The query nodes of this subtree (root first, then pre-order)."""
        return [item.query_node for item in _preorder(self._induced(self.root))]

    def __str__(self) -> str:
        return self.key_bytes().decode("utf-8")


def _preorder(node: _KeyNode) -> Iterable[_KeyNode]:
    yield node
    for child in node.children:
        yield from _preorder(child)


@dataclass
class Cover:
    """A cover of a query: the query plus its list of cover subtrees."""

    query: QueryTree
    subtrees: List[CoverSubtree] = field(default_factory=list)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.subtrees)

    def __iter__(self):
        return iter(self.subtrees)

    @property
    def join_count(self) -> int:
        """Number of joins of a left-deep plan over this cover (|C| - 1)."""
        return max(0, len(self.subtrees) - 1)

    def covered_node_ids(self) -> Set[int]:
        """Union of the node ids covered by the subtrees."""
        covered: Set[int] = set()
        for subtree in self.subtrees:
            covered |= subtree.node_ids
        return covered

    def roots(self) -> List[QueryNode]:
        """Roots of the cover subtrees (duplicates possible)."""
        return [subtree.root for subtree in self.subtrees]

    def subtrees_rooted_at(self, node: QueryNode) -> List[CoverSubtree]:
        """Cover subtrees whose root is *node*."""
        return [subtree for subtree in self.subtrees if subtree.root is node]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        rendered = ", ".join(str(subtree) for subtree in self.subtrees)
        return f"Cover([{rendered}])"


# ----------------------------------------------------------------------
# Cover predicates (Definitions 5--10)
# ----------------------------------------------------------------------
def is_node_cover(cover: Cover) -> bool:
    """Definition 5: every query node appears in at least one subtree."""
    all_ids = {node.node_id for node in cover.query.nodes()}
    return cover.covered_node_ids() == all_ids


def is_valid_cover(cover: Cover, mss: int) -> bool:
    """Definition 7: a node cover whose subtrees all have size at most ``mss``.

    Additionally checks the structural well-formedness required by the index:
    each subtree is connected through ``/`` edges.
    """
    if not is_node_cover(cover):
        return False
    for subtree in cover.subtrees:
        if subtree.size > mss:
            return False
        try:
            subtree.validate()
        except ValueError:
            return False
    return True


def is_root_split_cover(cover: Cover) -> bool:
    """Definition 8: every subtree's root is related to another subtree's root.

    Either the cover is a single subtree, or for every subtree ``ci`` there is
    a ``cj`` whose root is the same node, the parent of ``ci``'s root, or a
    child of ``ci``'s root.
    """
    if len(cover.subtrees) <= 1:
        return True
    root_ids = [subtree.root.node_id for subtree in cover.subtrees]
    root_id_set = set(root_ids)
    for subtree in cover.subtrees:
        root = subtree.root
        same = root_ids.count(root.node_id) > 1
        parent_is_root = root.parent is not None and root.parent.node_id in root_id_set
        child_is_root = any(child.node_id in root_id_set for child in root.children)
        if not (same or parent_is_root or child_is_root):
            return False
    return True


def has_deep_branching_anomaly(cover: Cover) -> bool:
    """Definition 10: two subtrees share a non-root node that branches apart.

    The anomaly makes root-only joins ambiguous (Figure 5); root-split covers
    produced by ``minRC`` must avoid it.
    """
    subtrees = cover.subtrees
    for i, si in enumerate(subtrees):
        for sj in subtrees[i + 1:]:
            shared = si.node_ids & sj.node_ids
            for node_id in shared:
                node = cover.query.node(node_id)
                if node is si.root or node is sj.root:
                    continue
                in_si_only = any(
                    child.node_id in si.node_ids and child.node_id not in sj.node_ids
                    for child in node.children
                )
                in_sj_only = any(
                    child.node_id in sj.node_ids and child.node_id not in si.node_ids
                    for child in node.children
                )
                if in_si_only and in_sj_only:
                    return True
    return False


def make_subtree(root: QueryNode, nodes: Iterable[QueryNode]) -> CoverSubtree:
    """Build a :class:`CoverSubtree` from a root and an iterable of query nodes."""
    return CoverSubtree(root=root, node_ids=frozenset(node.node_id for node in nodes))
