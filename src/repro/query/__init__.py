"""Tree queries, the query language and query decomposition.

* :mod:`repro.query.model` -- the query tree data model (Definition 2):
  labelled nodes connected by ``/`` (parent-child) or ``//``
  (ancestor-descendant) axes.
* :mod:`repro.query.parser` -- a compact textual query syntax.
* :mod:`repro.query.covers` -- covers, valid covers, root-split covers and
  the deep-branching-anomaly test (Definitions 5--10).
* :mod:`repro.query.decompose` -- the paper's ``optimalCover``, ``assign``
  and ``minRC`` algorithms (Section 5.2) plus the axis-aware wrapper that
  splits queries at ``//`` edges before covering each rigid component.
"""

from repro.query.covers import Cover, CoverSubtree, has_deep_branching_anomaly, is_root_split_cover, is_valid_cover
from repro.query.decompose import decompose, min_rc, optimal_cover
from repro.query.model import QueryNode, QueryTree, query_from_node, query_from_tree
from repro.query.parser import QuerySyntaxError, parse_query

# Note: the selectivity-aware optimiser lives in ``repro.query.optimizer`` and
# is imported from there directly; importing it here would create an import
# cycle with :mod:`repro.exec`, whose executor it extends.

__all__ = [
    "QueryNode",
    "QueryTree",
    "query_from_node",
    "query_from_tree",
    "parse_query",
    "QuerySyntaxError",
    "Cover",
    "CoverSubtree",
    "is_valid_cover",
    "is_root_split_cover",
    "has_deep_branching_anomaly",
    "optimal_cover",
    "min_rc",
    "decompose",
]
