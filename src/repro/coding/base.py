"""Common interfaces of the posting coding schemes.

The index builder extracts *occurrences* of subtrees from data trees
(:class:`Occurrence`: the tree id plus the interval codes of the occurrence's
nodes listed in the canonical order of the index key).  A coding scheme turns
occurrences into postings, serialises posting lists for storage in the B+Tree
and deserialises them again at query time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from repro.trees.numbering import IntervalCode


@dataclass(frozen=True)
class Occurrence:
    """One embedding of an index key (a unique subtree) in a data tree.

    ``codes`` holds the interval codes of the occurrence's nodes in the
    *canonical order* of the key, so ``codes[0]`` is always the subtree root
    and position *i* corresponds to the same key node across all occurrences
    of that key.
    """

    tid: int
    codes: Tuple[IntervalCode, ...]

    @property
    def root(self) -> IntervalCode:
        """Interval code of the occurrence's root node."""
        return self.codes[0]

    @property
    def size(self) -> int:
        """Number of nodes of the subtree."""
        return len(self.codes)


class CodingScheme(ABC):
    """Strategy interface for the three coding schemes of Section 4.4."""

    #: Short machine name used in file metadata and experiment reports.
    name: str = "abstract"

    # ------------------------------------------------------------------
    @abstractmethod
    def postings_from_occurrences(self, occurrences: Sequence[Occurrence]) -> List[object]:
        """Convert raw occurrences of one key into this scheme's postings.

        The returned list is deduplicated and sorted the way the scheme
        stores postings on disk (ascending ``tid``, then structure).
        """

    @abstractmethod
    def encode_postings(self, postings: Sequence[object]) -> bytes:
        """Serialise a posting list for storage."""

    @abstractmethod
    def decode_postings(self, data: bytes) -> List[object]:
        """Deserialise a posting list previously produced by :meth:`encode_postings`."""

    # ------------------------------------------------------------------
    def posting_count(self, occurrences: Sequence[Occurrence]) -> int:
        """Number of postings this scheme stores for the given occurrences."""
        return len(self.postings_from_occurrences(occurrences))

    def tids_of(self, postings: Sequence[object]) -> List[int]:
        """Sorted unique tree identifiers present in a posting list."""
        seen: Dict[int, None] = {}
        for posting in postings:
            seen.setdefault(self._tid_of(posting))
        return sorted(seen)

    @staticmethod
    def _tid_of(posting: object) -> int:
        return posting.tid if hasattr(posting, "tid") else int(posting)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[CodingScheme]] = {}


def register_coding(cls: Type[CodingScheme]) -> Type[CodingScheme]:
    """Class decorator adding a coding scheme to the global registry."""
    _REGISTRY[cls.name] = cls
    return cls


def get_coding(name: str) -> CodingScheme:
    """Instantiate a coding scheme by its registered name.

    Valid names are ``"filter"``, ``"root-split"`` and ``"subtree-interval"``.
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown coding scheme {name!r} (known: {known})") from None


def coding_names() -> List[str]:
    """Names of all registered coding schemes."""
    return sorted(_REGISTRY)
