"""Root-split interval coding (Section 4.4.3) -- the paper's contribution.

A posting stores only the tree identifier and the ``(pre, post, level)``
interval code of the *root* of the subtree occurrence.  Two consequences:

* postings are a constant size regardless of the subtree size, and
* multiple occurrences of the same key sharing the same root (e.g. ``NP(NN)``
  under an ``NP`` with several ``NN`` children) collapse into one posting,

which together give the 50--80 % index-size reduction reported in the paper.
The price is that queries may only be decomposed into *root-split covers*
(Definition 8): joins are performed exclusively over subtree roots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.coding.base import CodingScheme, Occurrence, register_coding
from repro.storage.codec import decode_varint, encode_varint
from repro.trees.numbering import IntervalCode


@dataclass(frozen=True, order=True)
class RootPosting:
    """A root-split posting: tree id and the root node's interval code."""

    tid: int
    pre: int
    post: int
    level: int

    @property
    def code(self) -> IntervalCode:
        """The root's interval code as an :class:`IntervalCode`."""
        return IntervalCode(self.pre, self.post, self.level)


@register_coding
class RootSplitCoding(CodingScheme):
    """Store one ``(tid, pre, post, level)`` record per distinct key root."""

    name = "root-split"

    def postings_from_occurrences(self, occurrences: Sequence[Occurrence]) -> List[RootPosting]:
        unique = {
            (occurrence.tid, occurrence.root.pre, occurrence.root.post, occurrence.root.level)
            for occurrence in occurrences
        }
        return [RootPosting(*record) for record in sorted(unique)]

    def encode_postings(self, postings: Sequence[RootPosting]) -> bytes:
        out = bytearray(encode_varint(len(postings)))
        previous_tid = 0
        for posting in postings:
            out += encode_varint(posting.tid - previous_tid)
            out += encode_varint(posting.pre)
            out += encode_varint(posting.post)
            out += encode_varint(posting.level)
            previous_tid = posting.tid
        return bytes(out)

    def decode_postings(self, data: bytes) -> List[RootPosting]:
        count, offset = decode_varint(data, 0)
        postings: List[RootPosting] = []
        tid = 0
        for _ in range(count):
            gap, offset = decode_varint(data, offset)
            tid += gap
            pre, offset = decode_varint(data, offset)
            post, offset = decode_varint(data, offset)
            level, offset = decode_varint(data, offset)
            postings.append(RootPosting(tid, pre, post, level))
        return postings
