"""Coding schemes for subtree postings (Section 4.4 of the paper).

A *coding scheme* decides what structural information is stored in the
posting list of each index key (a unique subtree), and therefore what the
join phase can and cannot do:

* :class:`~repro.coding.filter_based.FilterBasedCoding` -- tree identifiers
  only; query evaluation needs a post-validation (filtering) phase.
* :class:`~repro.coding.subtree_interval.SubtreeIntervalCoding` -- the
  ``(pre, post, level, order)`` numbers of *every* node of the subtree;
  exact matching with joins on arbitrary shared nodes.
* :class:`~repro.coding.root_split.RootSplitCoding` -- the paper's novel
  scheme: only the ``(pre, post, level)`` of the subtree *root*; exact
  matching with joins restricted to subtree roots, and a much smaller index.
"""

from repro.coding.base import CodingScheme, Occurrence, get_coding
from repro.coding.filter_based import FilterBasedCoding, FilterPosting
from repro.coding.root_split import RootSplitCoding, RootPosting
from repro.coding.subtree_interval import NodeCode, SubtreeIntervalCoding, SubtreePosting

__all__ = [
    "CodingScheme",
    "Occurrence",
    "get_coding",
    "FilterBasedCoding",
    "FilterPosting",
    "RootSplitCoding",
    "RootPosting",
    "SubtreeIntervalCoding",
    "SubtreePosting",
    "NodeCode",
]
