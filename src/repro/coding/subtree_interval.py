"""Subtree interval coding (Section 4.4.2) -- the heavyweight baseline.

A posting stores, for every node of the subtree occurrence, the
``(pre, post, level, order)`` numbers.  Node codes are listed in the
canonical order of the index key (so position *i* of every posting of a key
corresponds to the same key node); ``order`` is the rank of the node within
the occurrence by data-tree pre-order, which distinguishes symmetric
instances that share the same (unordered) key.

Every distinct embedding is a distinct posting, so posting lists are both
longer and wider than for root-split coding -- the source of the index-size
gap shown in Figures 8 and 9 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.coding.base import CodingScheme, Occurrence, register_coding
from repro.storage.codec import decode_varint, encode_varint
from repro.trees.numbering import IntervalCode


@dataclass(frozen=True, order=True)
class NodeCode:
    """The per-node structural record of a subtree-interval posting."""

    pre: int
    post: int
    level: int
    order: int

    @property
    def code(self) -> IntervalCode:
        """The node's interval code without the order value."""
        return IntervalCode(self.pre, self.post, self.level)


@dataclass(frozen=True, order=True)
class SubtreePosting:
    """A subtree-interval posting: tree id plus one :class:`NodeCode` per node."""

    tid: int
    nodes: Tuple[NodeCode, ...]

    @property
    def size(self) -> int:
        """Number of nodes of the indexed subtree (``m`` in the paper)."""
        return len(self.nodes)

    @property
    def root(self) -> NodeCode:
        """The code of the subtree root (canonical position 0)."""
        return self.nodes[0]


@register_coding
class SubtreeIntervalCoding(CodingScheme):
    """Store full ``(pre, post, level, order)`` records for every node."""

    name = "subtree-interval"

    def postings_from_occurrences(self, occurrences: Sequence[Occurrence]) -> List[SubtreePosting]:
        postings = set()
        for occurrence in occurrences:
            pres = sorted(code.pre for code in occurrence.codes)
            order_of = {pre: rank + 1 for rank, pre in enumerate(pres)}
            nodes = tuple(
                NodeCode(code.pre, code.post, code.level, order_of[code.pre])
                for code in occurrence.codes
            )
            postings.add(SubtreePosting(occurrence.tid, nodes))
        return sorted(postings)

    def encode_postings(self, postings: Sequence[SubtreePosting]) -> bytes:
        out = bytearray(encode_varint(len(postings)))
        previous_tid = 0
        for posting in postings:
            out += encode_varint(posting.tid - previous_tid)
            out += encode_varint(len(posting.nodes))
            for node in posting.nodes:
                out += encode_varint(node.pre)
                out += encode_varint(node.post)
                out += encode_varint(node.level)
                out += encode_varint(node.order)
            previous_tid = posting.tid
        return bytes(out)

    def decode_postings(self, data: bytes) -> List[SubtreePosting]:
        count, offset = decode_varint(data, 0)
        postings: List[SubtreePosting] = []
        tid = 0
        for _ in range(count):
            gap, offset = decode_varint(data, offset)
            tid += gap
            node_count, offset = decode_varint(data, offset)
            nodes: List[NodeCode] = []
            for _ in range(node_count):
                pre, offset = decode_varint(data, offset)
                post, offset = decode_varint(data, offset)
                level, offset = decode_varint(data, offset)
                order, offset = decode_varint(data, offset)
                nodes.append(NodeCode(pre, post, level, order))
            postings.append(SubtreePosting(tid, tuple(nodes)))
        return postings
