"""Filter-based coding (Section 4.4.1).

The minimal scheme: a posting is just a tree identifier, the posting list is
a sorted list of unique tids (delta + varint compressed).  Query evaluation
intersects the posting lists of the cover subtrees and then runs a filtering
phase that fetches candidate trees from the data file and validates them with
the exact matcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.coding.base import CodingScheme, Occurrence, register_coding
from repro.storage.codec import decode_delta_list, encode_delta_list


@dataclass(frozen=True, order=True)
class FilterPosting:
    """A single filter-based posting: the containing tree's identifier."""

    tid: int


@register_coding
class FilterBasedCoding(CodingScheme):
    """Store only the sorted unique tree identifiers per key."""

    name = "filter"

    def postings_from_occurrences(self, occurrences: Sequence[Occurrence]) -> List[FilterPosting]:
        tids = sorted({occurrence.tid for occurrence in occurrences})
        return [FilterPosting(tid) for tid in tids]

    def encode_postings(self, postings: Sequence[FilterPosting]) -> bytes:
        return encode_delta_list([posting.tid for posting in postings])

    def decode_postings(self, data: bytes) -> List[FilterPosting]:
        tids, _ = decode_delta_list(data)
        return [FilterPosting(tid) for tid in tids]
