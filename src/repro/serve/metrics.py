"""Latency histograms, quantile estimation and Prometheus text rendering.

The serving layer measures request latency two ways:

:class:`LatencyHistogram`
    fixed log-spaced buckets, observed online by the HTTP server -- constant
    memory no matter how many requests arrive, exported verbatim in the
    Prometheus exposition format (``_bucket``/``_sum``/``_count`` series)
    plus derived p50/p95/p99 lines.  Quantiles from a bucketed histogram are
    *estimates*: linear interpolation inside the owning bucket, clamped to
    the observed min/max so a single sample reports itself exactly.

:func:`percentile_of_sorted`
    exact quantiles over raw samples, used by the closed-loop load generator
    (:mod:`repro.serve.loadgen`), which keeps every latency it measured.

Both live here so the bucket-boundary and tail-estimation behaviour is
tested in one place (``tests/serve/test_metrics.py``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets in seconds: a 1-2.5-5 ladder from 0.1 ms to 10 s.
#: Upper bounds, inclusive (Prometheus ``le`` semantics); values beyond the
#: last bound land in the implicit ``+Inf`` overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0,
)

#: The quantiles every latency report derives (p50 / p95 / p99).
REPORTED_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def percentile_of_sorted(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Exact q-quantile of pre-sorted samples, linearly interpolated.

    Returns ``None`` for an empty series.  ``q`` is a fraction in [0, 1];
    a single sample is every quantile of itself.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return float(sorted_values[lower] * (1.0 - fraction) + sorted_values[upper] * fraction)


class LatencyHistogram:
    """An online histogram over fixed log-spaced upper bounds.

    ``observe`` is guarded by one short lock so the server's event loop and
    any scraping thread agree on the counters; contention is negligible next
    to the query work each observation measures.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(bound <= 0 for bound in bounds):
            raise ValueError("bucket bounds must be positive")
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; the last slot is ``+Inf``.
        self._counts: List[int] = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, seconds: float) -> None:
        """Record one measurement (negative values clamp to zero)."""
        value = max(0.0, float(seconds))
        position = bisect_left(self.bounds, value)  # first bound >= value: le semantics
        with self._lock:
            self._counts[position] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values, in seconds."""
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Non-cumulative per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bound, Prometheus ``le`` style (last is +Inf)."""
        cumulative: List[int] = []
        total = 0
        for count in self.bucket_counts():
            total += count
            cumulative.append(total)
        return cumulative

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from the buckets (``0.0`` when empty).

        Standard histogram interpolation: find the bucket holding the target
        rank and interpolate linearly between its bounds, then clamp to the
        observed min/max -- so a single observation is reported exactly and
        the overflow bucket never extrapolates beyond what was seen.  A
        zero-observation histogram reports 0.0 for every quantile, so the
        Prometheus exposition and ``/stats`` stay number-valued (never
        ``null``/``NaN``) for endpoints that have not been hit yet.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            seen_min, seen_max = self._min, self._max
        if total == 0:
            return 0.0
        assert seen_min is not None and seen_max is not None
        rank = q * total
        cumulative = 0
        lower = 0.0
        estimate = seen_max
        for position, count in enumerate(counts):
            upper = self.bounds[position] if position < len(self.bounds) else seen_max
            if count and cumulative + count >= rank:
                fraction = (rank - cumulative) / count if count else 0.0
                estimate = lower + (max(upper, lower) - lower) * fraction
                break
            cumulative += count
            lower = upper
        return min(max(estimate, seen_min), seen_max)

    def percentiles(self) -> Dict[str, float]:
        """The derived p50/p95/p99 estimates, in seconds (0.0 when empty)."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in REPORTED_QUANTILES}


# ----------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ----------------------------------------------------------------------
def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in sorted(labels.items()))
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_line(
    name: str, value: float, labels: Optional[Dict[str, str]] = None
) -> str:
    """One ``name{labels} value`` sample line."""
    return f"{name}{_format_labels(labels or {})} {_format_number(float(value))}"


def render_histogram(
    name: str, histogram: LatencyHistogram, labels: Optional[Dict[str, str]] = None
) -> List[str]:
    """The ``_bucket`` / ``_sum`` / ``_count`` series of one histogram.

    Quantile estimates are exported alongside as ``<name>_quantile`` gauge
    lines (one per p50/p95/p99) -- Prometheus derives quantiles server-side
    with ``histogram_quantile``, but scrapers without PromQL (the load-test
    harness, humans with curl) read them directly.
    """
    labels = dict(labels or {})
    lines: List[str] = []
    cumulative = histogram.cumulative_counts()
    for bound, count in zip(list(histogram.bounds) + [float("inf")], cumulative):
        bucket_labels = dict(labels)
        bucket_labels["le"] = _format_number(bound)
        lines.append(prometheus_line(f"{name}_bucket", count, bucket_labels))
    lines.append(prometheus_line(f"{name}_sum", histogram.sum, labels))
    lines.append(prometheus_line(f"{name}_count", histogram.count, labels))
    for label, estimate in histogram.percentiles().items():
        quantile_labels = dict(labels)
        quantile_labels["quantile"] = f"0.{label[1:]}"
        lines.append(prometheus_line(f"{name}_quantile", estimate, quantile_labels))
    return lines


def render_metadata(name: str, kind: str, help_text: str) -> List[str]:
    """The ``# HELP`` / ``# TYPE`` header of one metric family."""
    return [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]


def render_families(families: Iterable[Tuple[str, str, str, List[str]]]) -> str:
    """Join (name, kind, help, sample-lines) families into one exposition body."""
    lines: List[str] = []
    for name, kind, help_text, samples in families:
        lines.extend(render_metadata(name, kind, help_text))
        lines.extend(samples)
    return "\n".join(lines) + "\n"
