"""Micro-batching: coalesce concurrent queries into one ``run_many`` call.

The query services already amortise work across a batch -- ``run_many``
fetches each distinct cover key once and joins each distinct query once --
but an HTTP server receives queries one request at a time.  The
:class:`MicroBatcher` closes that gap: queries submitted while a flush is
pending (from one ``/query/batch`` request or from many concurrent ones)
are collected for up to ``flush_window`` seconds, then executed as a single
``run_many`` batch on the worker pool.  Each submitter gets exactly its own
results back, in its own order.

A window of zero still batches whatever arrived within one event-loop tick
(the flush is scheduled, not run inline), which is the natural setting for
tests and the right one for latency-sensitive serving.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.exec.executor import QueryResult
from repro.service.service import QueryService


class BatcherClosed(RuntimeError):
    """``submit`` after ``drain``: the batcher is shutting down.

    The HTTP server maps this to a 503 load-shed response, so a query that
    races the drain is *rejected*, never silently dropped.
    """


class MicroBatcher:
    """Collects queries across awaiters and flushes them as one batch.

    Parameters
    ----------
    service:
        Any of the three query-service flavors; only ``run_many`` is used.
    executor:
        The thread pool the (blocking, CPU/IO-bound) ``run_many`` call runs
        on, keeping the event loop free to accept more requests -- which is
        exactly what gives the batcher something to coalesce.
    flush_window:
        Seconds to keep a pending batch open after its first query arrives.
    max_batch:
        Flush immediately once this many queries are pending.
    """

    def __init__(
        self,
        service: QueryService,
        executor: Executor,
        flush_window: float = 0.002,
        max_batch: int = 64,
    ):
        if flush_window < 0:
            raise ValueError(f"flush window must be >= 0, got {flush_window}")
        if max_batch < 1:
            raise ValueError(f"max batch must be >= 1, got {max_batch}")
        self._service = service
        self._executor = executor
        self.flush_window = flush_window
        self.max_batch = max_batch
        self._pending: List[Tuple[str, asyncio.Future, Optional[str]]] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        #: Pool futures of flushes dispatched but not yet delivered; drain()
        #: awaits these too, so no in-flight batch is abandoned.
        self._inflight: set = set()
        self._closed = False
        #: Telemetry: flushes executed and queries that shared a flush.
        self.flushes = 0
        self.queries_batched = 0

    @property
    def closed(self) -> bool:
        """True once :meth:`drain` has started; ``submit`` raises from then on."""
        return self._closed

    # ------------------------------------------------------------------
    async def submit(
        self, queries: Sequence[str], request_id: Optional[str] = None
    ) -> List[QueryResult]:
        """Enqueue *queries* and await their results (input order kept).

        *request_id* tags the queries in the flush's trace span, so a
        coalesced flush still names every request it served.

        Raises :class:`BatcherClosed` once :meth:`drain` has started --
        enqueueing into a draining batcher would silently strand the query.
        The check and the enqueue below run without an intervening ``await``,
        so a submission either lands before the drain flush (and is
        answered) or observes the closed flag (and is rejected); there is no
        third interleaving.
        """
        if self._closed:
            raise BatcherClosed("the micro-batcher is draining; no new queries accepted")
        if not queries:
            return []
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in queries]
        self._pending.extend(
            (query, future, request_id) for query, future in zip(queries, futures)
        )
        if len(self._pending) >= self.max_batch:
            self._cancel_timer()
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.flush_window, self._flush)
        return list(await asyncio.gather(*futures))

    def _cancel_timer(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None

    def _flush(self) -> None:
        """Hand the pending batch to the pool and fan results back out."""
        self._flush_handle = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.flushes += 1
        self.queries_batched += len(batch)
        texts = [text for text, _, _ in batch]
        futures = [future for _, future, _ in batch]
        request_ids = [request_id for _, _, request_id in batch]
        loop = asyncio.get_running_loop()
        pool_future = loop.run_in_executor(self._executor, self._run_batch, texts, request_ids)
        self._inflight.add(pool_future)

        def deliver(done: "asyncio.Future") -> None:
            self._inflight.discard(done)
            error = done.exception()
            if error is not None:
                for future in futures:
                    if not future.done():
                        future.set_exception(error)
                return
            for future, result in zip(futures, done.result()):
                if not future.done():
                    future.set_result(result)

        pool_future.add_done_callback(deliver)

    def _run_batch(
        self, texts: List[str], request_ids: List[Optional[str]]
    ) -> List[QueryResult]:
        """Run one flush on the pool thread, under its own trace root.

        A flush serves queries from *several* HTTP requests, so it cannot
        nest under any one request's span; it is a fresh root carrying the
        distinct request ids it coalesced (each submitter's own request span
        still times its wait).
        """
        if not obs.enabled():
            return self._service.run_many(texts)
        distinct = [rid for rid in dict.fromkeys(request_ids) if rid is not None]
        with obs.trace("batch_flush", queries=len(texts), request_ids=distinct):
            return self._service.run_many(texts)

    async def drain(self) -> None:
        """Flush anything pending, wait for every in-flight batch, and
        reject all further submissions (used on shutdown).

        After drain returns, every query that made it into the batcher has
        been answered (or failed with its batch's error) and any later
        ``submit`` raises :class:`BatcherClosed` -- queries racing a
        shutdown are either served or rejected, never dropped.
        """
        self._closed = True
        self._cancel_timer()
        if self._pending:
            futures = [future for _, future, _ in self._pending]
            self._flush()
            await asyncio.gather(*futures, return_exceptions=True)
        # Flushes already on the pool (dispatched before drain) must land
        # before the executor shuts down underneath them.
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
