"""A stdlib-only asyncio HTTP front end over any query-service flavor.

``QueryServer`` speaks just enough HTTP/1.1 (request line, headers,
``Content-Length`` bodies, keep-alive) over ``asyncio`` streams to serve
five JSON/text endpoints:

``POST /query``
    ``{"query": "NP(DT)(NN)"}`` -> one result (matches per tree, stats);
``POST /query/batch``
    ``{"queries": [...]}`` -> results in input order.  Queries are
    micro-batched through :class:`~repro.serve.batch.MicroBatcher`: every
    query pending within one flush window -- across concurrent requests --
    shares a single ``run_many`` call;
``GET /stats``
    the merged service-stats shape (identical keys for plain / sharded /
    live services) plus server-side counters;
``GET /healthz``
    liveness: flavor, index path, uptime -- 503 with ``"draining"`` once a
    graceful drain has started;
``GET /metrics``
    Prometheus text: per-endpoint request/error counters and latency
    histograms (log-spaced buckets + derived p50/p95/p99), cache hit
    rates, service and batcher counters, shed/timeout/drain telemetry.

Query execution is synchronous, CPU-bound work, so handlers push it onto a
thread pool (the services are thread-safe by design) and the event loop
stays free to accept and batch further requests.  The server owns nothing:
pass an open service, close it yourself -- or use :func:`open_server` /
``repro serve`` which open and close the service around the server.

Hostile-traffic hardening
-------------------------
The server assumes every client may be slow, dead or malicious:

* the whole request head (request line + headers) must arrive within
  ``header_timeout`` seconds or the connection is answered 408 and closed
  (a client that connects and sends nothing is reaped on the same clock;
  an *idle keep-alive* connection -- one that already completed a request
  -- is closed silently instead, like any production server);
* the body must arrive within its own ``header_timeout`` budget (408);
* handler work is bounded by ``request_timeout`` (504; the executor
  thread finishes in the background -- threads cannot be killed);
* response writes are bounded by ``write_timeout``: a client that stops
  reading has its connection aborted once ``writer.drain()`` stalls;
* at most ``max_connections`` connections are served; excess connections
  receive an immediate 503 with ``Retry-After`` and are closed;
* at most ``max_queue`` queries may be queued or running on the executor;
  further queries are load-shed with 503 + ``Retry-After`` instead of
  queuing unboundedly (bounded queue => bounded latency for everyone
  accepted);
* oversized or malformed request heads (bad request line, header bytes
  over ``max_header_bytes``, a body over ``max_body_bytes``, chunked
  transfer encoding) get a clean 4xx JSON error, never a traceback;
* :meth:`QueryServer.drain` is the graceful shutdown: stop accepting,
  let in-flight requests finish (time-boxed by ``drain_timeout``), flush
  the micro-batcher, shut the pool down.  ``repro serve`` wires it to
  SIGTERM/SIGINT and exits 0.

Every shed, timeout and drain is counted and exposed in ``/metrics``
(``repro_http_sheds_total``, ``repro_http_timeouts_total``,
``repro_server_draining``, ...) and in the ``server`` block of ``/stats``.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import logging
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro import obs
from repro.exec.executor import QueryResult
from repro.obs.sinks import JsonlSink
from repro.serve.batch import BatcherClosed, MicroBatcher
from repro.serve.metrics import LatencyHistogram, prometheus_line, render_families, render_histogram
from repro.service.live import LiveQueryService
from repro.service.service import QueryService
from repro.service.sharded import ShardedQueryService

#: Routes the server knows, in display order.
ENDPOINTS = ("/query", "/query/batch", "/stats", "/healthz", "/metrics", "/debug/trace")

#: Reasons a request can be load-shed with a 503 (label values in /metrics).
SHED_REASONS = ("connections", "queue", "draining")

#: Kinds of timeout the server enforces (label values in /metrics).
TIMEOUT_KINDS = ("header", "body", "handler", "write")

_LOG = logging.getLogger("repro.serve")

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _header_safe(value: str) -> str:
    """A client-supplied id made safe to echo in a response header."""
    return "".join(ch for ch in value if 32 <= ord(ch) < 127)[:128]


def service_flavor(service: QueryService) -> str:
    """The wire name of a service's flavor: ``plain`` / ``sharded`` / ``live``."""
    if isinstance(service, LiveQueryService):
        return "live"
    if isinstance(service, ShardedQueryService):
        return "sharded"
    return "plain"


def result_to_dict(result: QueryResult) -> Dict[str, object]:
    """The JSON form of one :class:`QueryResult` (tids are string keys)."""
    stats = result.stats
    return {
        "total_matches": result.total_matches,
        "matched_tids": result.matched_tids,
        "matches_per_tree": {str(tid): count for tid, count in sorted(result.matches_per_tree.items())},
        "stats": {
            "coding": stats.coding,
            "strategy": stats.strategy,
            "cover_size": stats.cover_size,
            "join_count": stats.join_count,
            "postings_fetched": stats.postings_fetched,
            "candidates_filtered": stats.candidates_filtered,
            "elapsed_seconds": stats.elapsed_seconds,
        },
    }


class BadRequest(ValueError):
    """A client error the handler converts into a 400 JSON response."""


class ProtocolError(Exception):
    """A malformed or abusive request head, answered with a 4xx and a close.

    Raised by the request reader before any handler runs; the connection
    loop sends the JSON error and drops the connection (a peer that cannot
    frame a request cannot be trusted to frame the next one either).
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class _IdleTimeout(Exception):
    """An idle keep-alive connection hit the header timeout: close silently."""


class EndpointMetrics:
    """Request/error counters and a latency histogram for one endpoint."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def record(self, status: int, seconds: float) -> None:
        self.requests += 1
        if status >= 400:
            self.errors += 1
        self.latency.observe(seconds)


class ServerMetrics:
    """Per-endpoint metrics, hardening counters and the Prometheus renderer."""

    def __init__(self) -> None:
        self.endpoints: Dict[str, EndpointMetrics] = {path: EndpointMetrics() for path in ENDPOINTS}
        self._unmatched = EndpointMetrics()  # 404s / bad routes, aggregated
        #: 503 load sheds by reason (connection cap / queue bound / draining).
        self.sheds: Dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        #: Enforced timeouts by kind (header / body / handler / write).
        self.timeouts: Dict[str, int] = {kind: 0 for kind in TIMEOUT_KINDS}
        #: Malformed request heads answered with a 4xx and a close.
        self.protocol_errors = 0
        #: Idle keep-alive connections reaped by the header timeout.
        self.idle_closed = 0
        #: High-water mark of concurrently open connections.
        self.connections_peak = 0

    def for_endpoint(self, path: str) -> EndpointMetrics:
        return self.endpoints.get(path, self._unmatched)

    def connection_opened(self, open_now: int) -> None:
        if open_now > self.connections_peak:
            self.connections_peak = open_now

    # ------------------------------------------------------------------
    def render(
        self,
        service: QueryService,
        batcher: Optional[MicroBatcher],
        draining: bool = False,
        connections_open: int = 0,
    ) -> str:
        """The full exposition body: server, batcher and service families."""
        stats = service.stats().as_dict()  # one shape for every flavor
        request_lines: List[str] = []
        error_lines: List[str] = []
        latency_lines: List[str] = []
        labelled = list(self.endpoints.items()) + [("other", self._unmatched)]
        for path, endpoint in labelled:
            labels = {"endpoint": path}
            request_lines.append(prometheus_line("repro_http_requests_total", endpoint.requests, labels))
            error_lines.append(prometheus_line("repro_http_errors_total", endpoint.errors, labels))
            # Never-hit endpoints render too: all-zero buckets and 0.0
            # quantiles, so scrapers see every series from the first scrape.
            latency_lines.extend(
                render_histogram("repro_http_request_duration_seconds", endpoint.latency, labels)
            )

        caches = stats["caches"]  # type: ignore[index]
        lookup_lines: List[str] = []
        hit_lines: List[str] = []
        hit_rate_lines: List[str] = []
        for name, counters in caches.items():  # type: ignore[union-attr]
            labels = {"cache": name}
            lookup_lines.append(prometheus_line("repro_cache_lookups_total", counters["lookups"], labels))
            hit_lines.append(prometheus_line("repro_cache_hits_total", counters["hits"], labels))
            hit_rate_lines.append(prometheus_line("repro_cache_hit_rate", counters["hit_rate"], labels))

        probes = stats["probes"]  # type: ignore[index]
        families = [
            (
                "repro_http_requests_total", "counter",
                "HTTP requests received, by endpoint.", request_lines,
            ),
            (
                "repro_http_errors_total", "counter",
                "HTTP responses with a 4xx/5xx status, by endpoint.", error_lines,
            ),
            (
                "repro_http_request_duration_seconds", "histogram",
                "Request latency by endpoint (log-spaced buckets; _quantile lines are "
                "server-side p50/p95/p99 estimates).", latency_lines,
            ),
            (
                "repro_http_sheds_total", "counter",
                "Requests load-shed with a 503, by reason.",
                [
                    prometheus_line("repro_http_sheds_total", count, {"reason": reason})
                    for reason, count in self.sheds.items()
                ],
            ),
            (
                "repro_http_timeouts_total", "counter",
                "Timeouts enforced against slow clients or slow handlers, by kind.",
                [
                    prometheus_line("repro_http_timeouts_total", count, {"kind": kind})
                    for kind, count in self.timeouts.items()
                ],
            ),
            (
                "repro_http_protocol_errors_total", "counter",
                "Malformed request heads answered with a 4xx and a closed connection.",
                [prometheus_line("repro_http_protocol_errors_total", self.protocol_errors)],
            ),
            (
                "repro_http_idle_closed_total", "counter",
                "Idle keep-alive connections reaped by the header timeout.",
                [prometheus_line("repro_http_idle_closed_total", self.idle_closed)],
            ),
            (
                "repro_http_connections_open", "gauge",
                "Connections currently open.",
                [prometheus_line("repro_http_connections_open", connections_open)],
            ),
            (
                "repro_http_connections_peak", "gauge",
                "High-water mark of concurrently open connections.",
                [prometheus_line("repro_http_connections_peak", self.connections_peak)],
            ),
            (
                "repro_server_draining", "gauge",
                "1 while a graceful drain is in progress, 0 otherwise.",
                [prometheus_line("repro_server_draining", 1 if draining else 0)],
            ),
            (
                "repro_queries_total", "counter",
                "Queries evaluated by the service (batch members included).",
                [prometheus_line("repro_queries_total", stats["queries"])],  # type: ignore[arg-type]
            ),
            (
                "repro_batches_total", "counter",
                "run_many batches executed by the service.",
                [prometheus_line("repro_batches_total", stats["batches"])],  # type: ignore[arg-type]
            ),
            (
                "repro_cache_lookups_total", "counter",
                "Cache lookups, by cache layer.", lookup_lines,
            ),
            (
                "repro_cache_hits_total", "counter",
                "Cache hits, by cache layer.", hit_lines,
            ),
            (
                "repro_cache_hit_rate", "gauge",
                "Hit rate per cache layer (0 when never probed).", hit_rate_lines,
            ),
            (
                "repro_index_probes_total", "counter",
                "Index lookups (served from the postings cache or the tree).",
                [prometheus_line("repro_index_probes_total", probes["gets"])],  # type: ignore[index]
            ),
            (
                "repro_index_tree_descents_total", "counter",
                "Index lookups that went to an actual B+Tree descent.",
                [prometheus_line("repro_index_tree_descents_total", probes["tree_descents"])],  # type: ignore[index]
            ),
        ]
        if batcher is not None:
            families.append((
                "repro_batcher_flushes_total", "counter",
                "Micro-batch flushes executed.",
                [prometheus_line("repro_batcher_flushes_total", batcher.flushes)],
            ))
            families.append((
                "repro_batcher_queries_total", "counter",
                "Queries carried by micro-batch flushes.",
                [prometheus_line("repro_batcher_queries_total", batcher.queries_batched)],
            ))
        return render_families(families)


class QueryServer:
    """The asyncio HTTP server over one open query service."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_window: float = 0.002,
        max_batch: int = 64,
        max_workers: int = 4,
        index_path: Optional[str] = None,
        trace: bool = False,
        trace_log: Optional[str] = None,
        slow_ms: Optional[float] = None,
        trace_buffer: int = 256,
        header_timeout: float = 10.0,
        request_timeout: float = 30.0,
        write_timeout: float = 15.0,
        max_connections: int = 256,
        max_queue: int = 128,
        drain_timeout: float = 10.0,
        max_header_bytes: int = 32 * 1024,
        max_body_bytes: int = 8 * 1024 * 1024,
        write_buffer: int = 64 * 1024,
    ):
        if not 0 <= port <= 65535:
            raise ValueError(f"port must be in 0..65535, got {port}")
        if max_workers < 1:
            raise ValueError(f"max workers must be >= 1, got {max_workers}")
        for name, value in (
            ("header_timeout", header_timeout),
            ("request_timeout", request_timeout),
            ("write_timeout", write_timeout),
            ("drain_timeout", drain_timeout),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name, value in (
            ("max_connections", max_connections),
            ("max_queue", max_queue),
            ("max_header_bytes", max_header_bytes),
            ("max_body_bytes", max_body_bytes),
        ):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port on start()
        self.flush_window = flush_window
        self.max_batch = max_batch
        self.max_workers = max_workers
        self.index_path = index_path
        self.header_timeout = header_timeout
        self.request_timeout = request_timeout
        self.write_timeout = write_timeout
        self.max_connections = max_connections
        self.max_queue = max_queue
        self.drain_timeout = drain_timeout
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self.write_buffer = write_buffer
        # Any tracing knob turns tracing on for the server's lifetime.
        self.trace = bool(trace or trace_log or slow_ms is not None)
        self.trace_log = trace_log
        self.slow_ms = slow_ms
        self.trace_buffer = trace_buffer
        self.metrics = ServerMetrics()
        self.flavor = service_flavor(service)
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[MicroBatcher] = None
        self._connections: set = set()
        #: Connection tasks currently between "request read" and "response
        #: written"; drain() lets these finish, idle connections it cancels.
        self._busy: set = set()
        self._inflight_queries = 0
        self._draining = False
        self._started_at = 0.0
        self._trace_sink: Optional[JsonlSink] = None
        self._owns_tracer = False
        self._server_errors = 0

    @property
    def url(self) -> str:
        """The served base URL (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """True once a graceful drain has started."""
        return self._draining

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        if self.trace and not obs.enabled():
            sinks = []
            if self.trace_log:
                self._trace_sink = JsonlSink(self.trace_log)
                sinks.append(self._trace_sink)
            obs.enable(
                obs.Tracer(sinks=sinks, slow_ms=self.slow_ms, capacity=self.trace_buffer)
            )
            self._owns_tracer = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-serve"
        )
        self._batcher = MicroBatcher(
            self.service, self._executor, flush_window=self.flush_window, max_batch=self.max_batch
        )
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        return self

    async def stop(self) -> None:
        """Abrupt shutdown: stop accepting, cancel every connection, drain
        pending batches, shut the pool down.  Safe after :meth:`drain`."""
        if self._server is None and self._executor is None:
            return  # already stopped (or fully drained)
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # A connection accepted in the close window has a handler task that
        # may not have run its first step (and registered itself) yet; one
        # tick lets every such task join the set before the snapshot below,
        # and the loop re-checks in case one still slips through.
        await asyncio.sleep(0)
        # Idle keep-alive connections sit in readline() forever; cancel them
        # so no task outlives the loop.
        while self._connections:
            for task in list(self._connections):
                task.cancel()
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        await self._shutdown_workers()

    async def drain(self) -> Dict[str, object]:
        """Graceful shutdown: stop accepting, finish in-flight, then stop.

        The sequence (surfaced in ``/healthz`` as ``draining`` from the
        first step on):

        1. close the listening socket -- new connections are refused;
        2. cancel *idle* connections (blocked waiting for a request line);
        3. wait up to ``drain_timeout`` seconds for busy connections to
           finish writing their current response (which carries
           ``Connection: close``), then cancel any stragglers;
        4. flush the micro-batcher, shut the executor down.

        Returns a summary dict (``drain_seconds``, ``forced_connections``).
        Idempotent: a second call returns immediately.
        """
        if self._server is None and self._executor is None:
            return {"drain_seconds": 0.0, "forced_connections": 0, "completed": True}
        started = time.perf_counter()
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Handlers accepted in the close window register themselves on their
        # first step; give them that step so the snapshots below see them.
        await asyncio.sleep(0)
        # Idle connections have nothing in flight: reap them now so the
        # drain clock is spent on connections doing real work.
        for task in list(self._connections - self._busy):
            task.cancel()
        forced = 0
        pending_connections = list(self._connections)
        if pending_connections:
            done, pending = await asyncio.wait(pending_connections, timeout=self.drain_timeout)
            forced = len(pending)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        # Anything that still slipped past the snapshot (it cannot do real
        # work: the batcher and executor are about to go away) is cancelled
        # rather than abandoned to outlive the loop.
        while self._connections:
            for task in list(self._connections):
                task.cancel()
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        await self._shutdown_workers()
        return {
            "drain_seconds": time.perf_counter() - started,
            "forced_connections": forced,
            "completed": True,
        }

    async def _shutdown_workers(self) -> None:
        """The shared tail of stop()/drain(): batcher, executor, tracer."""
        if self._batcher is not None:
            await self._batcher.drain()
            self._batcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_tracer:
            obs.disable()
            self._owns_tracer = False
        if self._trace_sink is not None:
            self._trace_sink.close()
            self._trace_sink = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self.metrics.connection_opened(len(self._connections))
        transport = writer.transport
        if transport is not None:
            # A small write buffer makes writer.drain() apply backpressure
            # early, so the write timeout actually observes a stalled client
            # instead of the transport buffering megabytes silently.
            transport.set_write_buffer_limits(high=self.write_buffer)
        first = True
        try:
            if len(self._connections) > self.max_connections:
                self.metrics.sheds["connections"] += 1
                await self._write_response(
                    writer, 503, _JSON,
                    json.dumps({
                        "error": f"connection limit reached (max_connections={self.max_connections})"
                    }).encode("utf-8"),
                    keep_alive=False,
                )
                return
            if self._draining:
                self.metrics.sheds["draining"] += 1
                await self._write_response(
                    writer, 503, _JSON,
                    json.dumps({"error": "server is draining"}).encode("utf-8"),
                    keep_alive=False,
                )
                return
            while True:
                try:
                    request = await self._read_request(reader, first)
                except ProtocolError as error:
                    self.metrics.protocol_errors += 1
                    self.metrics.for_endpoint("/_protocol").record(error.status, 0.0)
                    await self._write_response(
                        writer, error.status, _JSON,
                        json.dumps({"error": error.message}).encode("utf-8"),
                        keep_alive=False,
                    )
                    break
                except _IdleTimeout:
                    self.metrics.idle_closed += 1
                    break
                if request is None:
                    break
                first = False
                method, path, keep_alive, body, query_string, client_rid = request
                # Request ids always flow, traced or not: take the client's
                # X-Request-ID, mint one otherwise, echo it on the response.
                request_id = client_rid or obs.new_request_id()
                started = time.perf_counter()
                if task is not None:
                    self._busy.add(task)
                try:
                    status, content_type, payload = await self._serve_request(
                        method, path, body, query_string, request_id
                    )
                    self.metrics.for_endpoint(path).record(status, time.perf_counter() - started)
                    # A drain that started while this request ran still gets
                    # its response out, marked Connection: close.
                    keep_alive = keep_alive and not self._draining
                    written = await self._write_response(
                        writer, status, content_type, payload, keep_alive, request_id
                    )
                finally:
                    if task is not None:
                        self._busy.discard(task)
                # Re-check _draining: it may have flipped while the write
                # above was suspended (after keep_alive was computed).  A
                # handler that loops back into readline here would have been
                # busy at drain's idle-reap snapshot -- never cancelled, and
                # "forced" at the deadline despite sitting idle.
                if not written or not keep_alive or self._draining:
                    break
        except asyncio.CancelledError:
            # stop()/drain() reaped this connection (idle, or past the drain
            # deadline).  Swallow the cancellation and fall through to the
            # close below: on 3.11 the streams done-callback calls
            # task.exception() without a cancelled() guard, so a task that
            # ends *cancelled* dumps a spurious traceback into the loop's
            # exception handler.
            pass
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away or sent garbage beyond limits; drop the connection
        finally:
            if task is not None:
                self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform dependent
                pass
            except asyncio.CancelledError:
                # stop()/drain() cancelled us mid-close; the transport is
                # already closing, so completing normally is both safe and
                # what keeps the task gatherable.
                pass
            # Deregister only once the close is complete: a handler that
            # leaves the set while still awaiting wait_closed is invisible
            # to stop()'s gather and gets destroyed pending when the loop
            # shuts down (seen as "Task was destroyed but it is pending"
            # under mass client disconnects racing server stop).
            if task is not None:
                self._connections.discard(task)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
        keep_alive: bool,
        request_id: Optional[str] = None,
    ) -> bool:
        """Write one response under the write timeout.

        Returns False (after aborting the connection) when the client
        stopped reading for longer than ``write_timeout`` -- a never-reading
        sink must not pin the connection task forever.
        """
        writer.write(
            self._encode_response(status, content_type, payload, keep_alive, request_id)
        )
        try:
            await asyncio.wait_for(writer.drain(), self.write_timeout)
        except asyncio.TimeoutError:
            self.metrics.timeouts["write"] += 1
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return False
        return True

    async def _read_request(
        self, reader: asyncio.StreamReader, first: bool
    ) -> Optional[Tuple[str, str, bool, bytes, str, Optional[str]]]:
        """Parse one request head + body under the read timeouts and limits.

        Returns ``(method, path, keep-alive, body, query string, client
        X-Request-ID or None)``; ``None`` on a cleanly closed connection.
        Raises :class:`ProtocolError` for malformed/oversized heads (the
        caller responds 4xx and closes) and :class:`_IdleTimeout` when an
        idle keep-alive connection times out between requests.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.header_timeout

        async def read_line(what: str) -> bytes:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError
            try:
                return await asyncio.wait_for(reader.readline(), remaining)
            except ValueError as error:  # line beyond the stream's 64 KiB limit
                raise ProtocolError(431, f"{what} exceeds the line length limit") from error

        try:
            request_line = await read_line("request line")
        except asyncio.TimeoutError:
            if first:
                # The satellite guarantee: connect-and-say-nothing is reaped.
                self.metrics.timeouts["header"] += 1
                raise ProtocolError(
                    408,
                    f"timed out waiting for a request (header timeout "
                    f"{self.header_timeout:g}s)",
                ) from None
            raise _IdleTimeout() from None
        if not request_line or not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ProtocolError(400, "malformed request line")
        method, target, version = parts
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await read_line("header line")
            except asyncio.TimeoutError:
                # Slow-loris: the head dribbles in slower than the budget.
                self.metrics.timeouts["header"] += 1
                raise ProtocolError(
                    408,
                    f"timed out reading request headers (header timeout "
                    f"{self.header_timeout:g}s)",
                ) from None
            if line in (b"\r\n", b"\n"):
                break
            if not line:  # EOF mid-headers: client went away
                return None
            header_bytes += len(line)
            if header_bytes > self.max_header_bytes or len(headers) >= 256:
                raise ProtocolError(
                    431,
                    f"request headers exceed the limit ({self.max_header_bytes} bytes)",
                )
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise ProtocolError(
                400, "Transfer-Encoding is not supported; send a Content-Length body"
            )
        raw_length = headers.get("content-length", "0").strip()
        if not raw_length.isdigit():  # also rejects signs, spaces and '1_0'
            raise ProtocolError(400, f"invalid Content-Length {raw_length!r}")
        length = int(raw_length)
        if length > self.max_body_bytes:
            raise ProtocolError(
                413,
                f"request body of {length} bytes exceeds the limit "
                f"({self.max_body_bytes} bytes)",
            )
        if length > 0:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.header_timeout
                )
            except asyncio.TimeoutError:
                self.metrics.timeouts["body"] += 1
                raise ProtocolError(
                    408,
                    f"timed out reading the request body (timeout "
                    f"{self.header_timeout:g}s)",
                ) from None
        else:
            body = b""
        path, _, query_string = target.partition("?")
        connection = headers.get("connection", "").lower()
        keep_alive = version != "HTTP/1.0" and connection != "close"
        client_rid = headers.get("x-request-id", "").strip() or None
        return method.upper(), path, keep_alive, body, query_string, client_rid

    def _encode_response(
        self,
        status: int,
        content_type: str,
        payload: bytes,
        keep_alive: bool,
        request_id: Optional[str] = None,
    ) -> bytes:
        reason = _STATUS_REASONS.get(status, "Unknown")
        request_id_header = (
            f"X-Request-ID: {_header_safe(request_id)}\r\n" if request_id else ""
        )
        # Every load-shedding 503 invites the client back: shedding is about
        # bounding queues, not turning traffic away for good.
        retry_header = "Retry-After: 1\r\n" if status == 503 else ""
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{request_id_header}"
            f"{retry_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + payload

    # ------------------------------------------------------------------
    # Routing and handlers
    # ------------------------------------------------------------------
    async def _serve_request(
        self, method: str, path: str, body: bytes, query_string: str, request_id: str
    ) -> Tuple[int, str, bytes]:
        """Dispatch one request, under a traced root span when tracing is on."""
        if not obs.enabled():
            return await self._dispatch_timed(method, path, body, query_string, request_id)
        token = obs.set_request_id(request_id)
        try:
            with obs.trace("http_request", method=method, path=path) as span:
                status, content_type, payload = await self._dispatch_timed(
                    method, path, body, query_string, request_id
                )
                span.set(status=status)
                return status, content_type, payload
        finally:
            obs.reset_request_id(token)

    async def _dispatch_timed(
        self, method: str, path: str, body: bytes, query_string: str, request_id: str
    ) -> Tuple[int, str, bytes]:
        """The handler timeout around dispatch: slow work becomes a 504.

        The cancelled executor thread finishes its query in the background
        (threads cannot be interrupted); the bounded queue keeps such
        zombies from accumulating without limit.
        """
        try:
            return await asyncio.wait_for(
                self._dispatch(method, path, body, query_string, request_id),
                self.request_timeout,
            )
        except asyncio.TimeoutError:
            self.metrics.timeouts["handler"] += 1
            return self._json_error(
                504, f"request timed out after {self.request_timeout:g}s of processing"
            )

    async def _dispatch(
        self, method: str, path: str, body: bytes, query_string: str, request_id: str
    ) -> Tuple[int, str, bytes]:
        try:
            if path == "/query":
                if method != "POST":
                    return self._json_error(405, "POST a JSON body to /query")
                return await self._handle_query(body)
            if path == "/query/batch":
                if method != "POST":
                    return self._json_error(405, "POST a JSON body to /query/batch")
                return await self._handle_batch(body, request_id)
            if path == "/stats":
                if method != "GET":
                    return self._json_error(405, "/stats is GET-only")
                return self._handle_stats()
            if path == "/healthz":
                if method != "GET":
                    return self._json_error(405, "/healthz is GET-only")
                return self._handle_healthz()
            if path == "/metrics":
                if method != "GET":
                    return self._json_error(405, "/metrics is GET-only")
                return self._handle_metrics()
            if path == "/debug/trace":
                if method != "GET":
                    return self._json_error(405, "/debug/trace is GET-only")
                return self._handle_debug_trace(query_string)
            return self._json_error(404, f"unknown path {path!r} (endpoints: {', '.join(ENDPOINTS)})")
        except BadRequest as error:
            return self._json_error(400, str(error))
        except BatcherClosed:
            self.metrics.sheds["draining"] += 1
            return self._json_error(503, "server is draining; retry against a live replica")
        except asyncio.CancelledError:
            raise  # the handler timeout / drain cancellation, not a bug
        except Exception as error:  # noqa: BLE001 - the server must not die on a handler bug
            # The traceback goes to the structured log only; the response
            # body stays generic so internals never leak to clients.
            self._log_server_error(path, request_id, error)
            return self._json_error(500, "internal server error")

    def _json_error(self, status: int, message: str) -> Tuple[int, str, bytes]:
        return status, _JSON, json.dumps({"error": message}).encode("utf-8")

    def _json_ok(self, payload: Dict[str, object]) -> Tuple[int, str, bytes]:
        return 200, _JSON, json.dumps(payload).encode("utf-8")

    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, object]:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"request body is not valid JSON: {error}") from error
        if not isinstance(parsed, dict):
            raise BadRequest("request body must be a JSON object")
        return parsed

    def _prepare_or_400(self, text: object) -> str:
        """Validate one query string (plans are cached, so nothing is wasted)."""
        if not isinstance(text, str) or not text.strip():
            raise BadRequest("'query' must be a non-empty string")
        try:
            self.service.prepare(text)
        except ValueError as error:
            raise BadRequest(f"cannot parse query {text!r}: {error}") from error
        return text

    def _shed_if_saturated(self, incoming: int) -> Optional[Tuple[int, str, bytes]]:
        """The bounded-queue check: a 503 response when *incoming* more
        queries would push the executor backlog past ``max_queue``."""
        if self._inflight_queries + incoming > self.max_queue:
            self.metrics.sheds["queue"] += 1
            return self._json_error(
                503,
                f"server saturated ({self._inflight_queries} queries in flight, "
                f"max_queue={self.max_queue}); retry later",
            )
        return None

    async def _handle_query(self, body: bytes) -> Tuple[int, str, bytes]:
        payload = self._parse_json(body)
        if "query" not in payload:
            raise BadRequest("missing 'query' field")
        text = self._prepare_or_400(payload["query"])
        shed = self._shed_if_saturated(1)
        if shed is not None:
            return shed
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        self._inflight_queries += 1
        try:
            if obs.enabled():
                # run_in_executor does not carry context variables into the pool
                # thread; copy the context so the service's spans nest under this
                # request's root span and inherit its request id.
                context = contextvars.copy_context()
                result = await loop.run_in_executor(
                    self._executor, context.run, self.service.run, text
                )
            else:
                result = await loop.run_in_executor(self._executor, self.service.run, text)
        finally:
            self._inflight_queries -= 1
        return self._json_ok({"query": text, "result": result_to_dict(result)})

    async def _handle_batch(self, body: bytes, request_id: str) -> Tuple[int, str, bytes]:
        payload = self._parse_json(body)
        if "queries" not in payload or not isinstance(payload["queries"], list):
            raise BadRequest("missing 'queries' field (a JSON list of query strings)")
        texts = [self._prepare_or_400(text) for text in payload["queries"]]
        shed = self._shed_if_saturated(len(texts))
        if shed is not None:
            return shed
        assert self._batcher is not None
        self._inflight_queries += len(texts)
        try:
            results = await self._batcher.submit(texts, request_id=request_id)
        finally:
            self._inflight_queries -= len(texts)
        return self._json_ok({
            "count": len(results),
            "results": [
                {"query": text, "result": result_to_dict(result)}
                for text, result in zip(texts, results)
            ],
        })

    def _log_server_error(self, path: str, request_id: str, error: BaseException) -> None:
        """One structured line per 500: request id, error, full traceback.

        Goes to the tracer's sinks (the ``--trace-log`` JSONL file) when
        tracing is on, to the ``repro.serve`` logger otherwise -- never into
        the HTTP response.
        """
        self._server_errors += 1
        detail = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )
        if obs.enabled():
            obs.get_tracer().emit({
                "kind": "error",
                "request_id": request_id,
                "path": path,
                "error": repr(error),
                "traceback": detail,
                "ts": time.time(),
            })
        else:
            _LOG.error(
                "request %s to %s failed: %r\n%s", request_id, path, error, detail
            )

    def _handle_debug_trace(self, query_string: str) -> Tuple[int, str, bytes]:
        if not obs.enabled():
            return self._json_ok({"enabled": False, "traces": []})
        params = parse_qs(query_string)
        raw = params.get("n", ["16"])[-1]
        try:
            n = int(raw)
        except ValueError as error:
            raise BadRequest(f"'n' must be an integer, got {raw!r}") from error
        if n < 1:
            raise BadRequest(f"'n' must be >= 1, got {n}")
        tracer = obs.get_tracer()
        traces = tracer.last(n)
        return self._json_ok({
            "enabled": True,
            "count": len(traces),
            "traces_finished": tracer.traces_finished,
            "traces": traces,
        })

    def _handle_stats(self) -> Tuple[int, str, bytes]:
        stats = self.service.stats().as_dict()
        server_block: Dict[str, object] = {
            "uptime_seconds": time.time() - self._started_at,
            "draining": self._draining,
            "connections": {
                "open": len(self._connections),
                "peak": self.metrics.connections_peak,
                "max": self.max_connections,
            },
            "sheds": dict(self.metrics.sheds),
            "timeouts": dict(self.metrics.timeouts),
            "protocol_errors": self.metrics.protocol_errors,
            "idle_closed": self.metrics.idle_closed,
            "inflight_queries": self._inflight_queries,
            "limits": {
                "header_timeout": self.header_timeout,
                "request_timeout": self.request_timeout,
                "write_timeout": self.write_timeout,
                "max_connections": self.max_connections,
                "max_queue": self.max_queue,
                "drain_timeout": self.drain_timeout,
                "max_header_bytes": self.max_header_bytes,
                "max_body_bytes": self.max_body_bytes,
            },
            "endpoints": {
                path: {
                    "requests": endpoint.requests,
                    "errors": endpoint.errors,
                    "latency": endpoint.latency.percentiles(),
                }
                for path, endpoint in self.metrics.endpoints.items()
            },
        }
        if self._batcher is not None:
            server_block["batcher"] = {
                "flushes": self._batcher.flushes,
                "queries_batched": self._batcher.queries_batched,
                "flush_window": self._batcher.flush_window,
                "max_batch": self._batcher.max_batch,
            }
        tracing: Dict[str, object] = {"enabled": obs.enabled(), "errors": self._server_errors}
        if obs.enabled():
            tracer = obs.get_tracer()
            tracing.update({
                "traces_finished": tracer.traces_finished,
                "sink_errors": tracer.sink_errors,
                "slow_ms": tracer.slow_ms,
                "slow_queries": list(tracer.slow_queries),
            })
        server_block["tracing"] = tracing
        return self._json_ok({"flavor": self.flavor, "service": stats, "server": server_block})

    def _handle_healthz(self) -> Tuple[int, str, bytes]:
        """Liveness -- 503 + ``"draining"`` once a graceful drain started,
        so load balancers stop routing while in-flight work finishes."""
        draining = self._draining
        payload = {
            "status": "draining" if draining else "ok",
            "flavor": self.flavor,
            "index": self.index_path,
            "uptime_seconds": time.time() - self._started_at,
        }
        status = 503 if draining else 200
        return status, _JSON, json.dumps(payload).encode("utf-8")

    def _handle_metrics(self) -> Tuple[int, str, bytes]:
        body = self.metrics.render(
            self.service,
            self._batcher,
            draining=self._draining,
            connections_open=len(self._connections),
        )
        return 200, _PROMETHEUS, body.encode("utf-8")


# ----------------------------------------------------------------------
# Running a server from synchronous code (tests, loadgen, examples)
# ----------------------------------------------------------------------
class ServerThread:
    """Runs a :class:`QueryServer` on its own event loop in a daemon thread.

    The constructor arguments are those of :class:`QueryServer`.  ``start``
    blocks until the socket is bound (so ``url`` is valid) and re-raises
    any bind error in the caller's thread; ``stop`` shuts the loop down and
    joins the thread; ``drain`` runs the graceful-drain sequence first.
    The service is NOT owned: close it after ``stop``.
    """

    def __init__(self, service: QueryService, **kwargs: object):
        self._server = QueryServer(service, **kwargs)  # type: ignore[arg-type]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def server(self) -> QueryServer:
        return self._server

    @property
    def url(self) -> str:
        return self._server.url

    @property
    def port(self) -> int:
        return self._server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):  # pragma: no cover - defensive
            raise RuntimeError("server failed to start within the timeout")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop_signal = loop.create_future()
        self._stop_signal = stop_signal
        try:
            loop.run_until_complete(self._server.start())
        except BaseException as error:  # bind failures surface in start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(stop_signal)
            loop.run_until_complete(self._server.stop())
        finally:
            loop.close()

    def drain(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """Run the server's graceful drain on its loop; blocks until done.

        The loop keeps running afterwards (so ``stop`` still joins it);
        returns the drain summary.  *timeout* bounds the wait and should
        exceed the server's ``drain_timeout``.
        """
        loop = self._loop
        if loop is None or not self._thread or not self._thread.is_alive():
            return {"drain_seconds": 0.0, "forced_connections": 0, "completed": False}
        future = asyncio.run_coroutine_threadsafe(self._server.drain(), loop)
        budget = timeout if timeout is not None else self._server.drain_timeout + 10.0
        return future.result(budget)

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not self._thread or not self._thread.is_alive():
            return
        loop.call_soon_threadsafe(
            lambda: self._stop_signal.done() or self._stop_signal.set_result(None)
        )
        self._thread.join(timeout=10.0)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def open_server(index_path: str, **kwargs: object) -> Tuple[QueryService, ServerThread]:
    """Open *index_path* for serving and start a background server over it.

    Returns ``(service, running ServerThread)``; the caller stops the
    thread first, then closes the service.  Dispatches on the manifest like
    :meth:`QueryService.open`, so plain, sharded and live indexes all work.
    """
    service = QueryService.open(index_path)
    try:
        thread = ServerThread(service, index_path=index_path, **kwargs).start()
    except BaseException:
        service.close()
        raise
    return service, thread
