"""A stdlib-only asyncio HTTP front end over any query-service flavor.

``QueryServer`` speaks just enough HTTP/1.1 (request line, headers,
``Content-Length`` bodies, keep-alive) over ``asyncio`` streams to serve
five JSON/text endpoints:

``POST /query``
    ``{"query": "NP(DT)(NN)"}`` -> one result (matches per tree, stats);
``POST /query/batch``
    ``{"queries": [...]}`` -> results in input order.  Queries are
    micro-batched through :class:`~repro.serve.batch.MicroBatcher`: every
    query pending within one flush window -- across concurrent requests --
    shares a single ``run_many`` call;
``GET /stats``
    the merged service-stats shape (identical keys for plain / sharded /
    live services) plus server-side counters;
``GET /healthz``
    liveness: flavor, index path, uptime;
``GET /metrics``
    Prometheus text: per-endpoint request/error counters and latency
    histograms (log-spaced buckets + derived p50/p95/p99), cache hit
    rates, service and batcher counters.

Query execution is synchronous, CPU-bound work, so handlers push it onto a
thread pool (the services are thread-safe by design) and the event loop
stays free to accept and batch further requests.  The server owns nothing:
pass an open service, close it yourself -- or use :func:`open_server` /
``repro serve`` which open and close the service around the server.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import logging
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro import obs
from repro.exec.executor import QueryResult
from repro.obs.sinks import JsonlSink
from repro.serve.batch import MicroBatcher
from repro.serve.metrics import LatencyHistogram, prometheus_line, render_families, render_histogram
from repro.service.live import LiveQueryService
from repro.service.service import QueryService
from repro.service.sharded import ShardedQueryService

#: Routes the server knows, in display order.
ENDPOINTS = ("/query", "/query/batch", "/stats", "/healthz", "/metrics", "/debug/trace")

_LOG = logging.getLogger("repro.serve")

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def _header_safe(value: str) -> str:
    """A client-supplied id made safe to echo in a response header."""
    return "".join(ch for ch in value if 32 <= ord(ch) < 127)[:128]


def service_flavor(service: QueryService) -> str:
    """The wire name of a service's flavor: ``plain`` / ``sharded`` / ``live``."""
    if isinstance(service, LiveQueryService):
        return "live"
    if isinstance(service, ShardedQueryService):
        return "sharded"
    return "plain"


def result_to_dict(result: QueryResult) -> Dict[str, object]:
    """The JSON form of one :class:`QueryResult` (tids are string keys)."""
    stats = result.stats
    return {
        "total_matches": result.total_matches,
        "matched_tids": result.matched_tids,
        "matches_per_tree": {str(tid): count for tid, count in sorted(result.matches_per_tree.items())},
        "stats": {
            "coding": stats.coding,
            "strategy": stats.strategy,
            "cover_size": stats.cover_size,
            "join_count": stats.join_count,
            "postings_fetched": stats.postings_fetched,
            "candidates_filtered": stats.candidates_filtered,
            "elapsed_seconds": stats.elapsed_seconds,
        },
    }


class BadRequest(ValueError):
    """A client error the handler converts into a 400 JSON response."""


class EndpointMetrics:
    """Request/error counters and a latency histogram for one endpoint."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def record(self, status: int, seconds: float) -> None:
        self.requests += 1
        if status >= 400:
            self.errors += 1
        self.latency.observe(seconds)


class ServerMetrics:
    """Per-endpoint metrics plus the Prometheus renderer."""

    def __init__(self) -> None:
        self.endpoints: Dict[str, EndpointMetrics] = {path: EndpointMetrics() for path in ENDPOINTS}
        self._unmatched = EndpointMetrics()  # 404s / bad routes, aggregated

    def for_endpoint(self, path: str) -> EndpointMetrics:
        return self.endpoints.get(path, self._unmatched)

    # ------------------------------------------------------------------
    def render(self, service: QueryService, batcher: Optional[MicroBatcher]) -> str:
        """The full exposition body: server, batcher and service families."""
        stats = service.stats().as_dict()  # one shape for every flavor
        request_lines: List[str] = []
        error_lines: List[str] = []
        latency_lines: List[str] = []
        labelled = list(self.endpoints.items()) + [("other", self._unmatched)]
        for path, endpoint in labelled:
            labels = {"endpoint": path}
            request_lines.append(prometheus_line("repro_http_requests_total", endpoint.requests, labels))
            error_lines.append(prometheus_line("repro_http_errors_total", endpoint.errors, labels))
            # Never-hit endpoints render too: all-zero buckets and 0.0
            # quantiles, so scrapers see every series from the first scrape.
            latency_lines.extend(
                render_histogram("repro_http_request_duration_seconds", endpoint.latency, labels)
            )

        caches = stats["caches"]  # type: ignore[index]
        cache_lines: List[str] = []
        hit_rate_lines: List[str] = []
        for name, counters in caches.items():  # type: ignore[union-attr]
            labels = {"cache": name}
            cache_lines.append(prometheus_line("repro_cache_lookups_total", counters["lookups"], labels))
            cache_lines.append(prometheus_line("repro_cache_hits_total", counters["hits"], labels))
            hit_rate_lines.append(prometheus_line("repro_cache_hit_rate", counters["hit_rate"], labels))

        probes = stats["probes"]  # type: ignore[index]
        families = [
            (
                "repro_http_requests_total", "counter",
                "HTTP requests received, by endpoint.", request_lines,
            ),
            (
                "repro_http_errors_total", "counter",
                "HTTP responses with a 4xx/5xx status, by endpoint.", error_lines,
            ),
            (
                "repro_http_request_duration_seconds", "histogram",
                "Request latency by endpoint (log-spaced buckets; _quantile lines are "
                "server-side p50/p95/p99 estimates).", latency_lines,
            ),
            (
                "repro_queries_total", "counter",
                "Queries evaluated by the service (batch members included).",
                [prometheus_line("repro_queries_total", stats["queries"])],  # type: ignore[arg-type]
            ),
            (
                "repro_batches_total", "counter",
                "run_many batches executed by the service.",
                [prometheus_line("repro_batches_total", stats["batches"])],  # type: ignore[arg-type]
            ),
            (
                "repro_cache_lookups_total", "counter",
                "Cache lookups and hits, by cache layer.", cache_lines,
            ),
            (
                "repro_cache_hit_rate", "gauge",
                "Hit rate per cache layer (0 when never probed).", hit_rate_lines,
            ),
            (
                "repro_index_probes_total", "counter",
                "Index lookups and actual B+Tree descents.",
                [
                    prometheus_line("repro_index_probes_total", probes["gets"]),  # type: ignore[index]
                    prometheus_line("repro_index_tree_descents_total", probes["tree_descents"]),  # type: ignore[index]
                ],
            ),
        ]
        if batcher is not None:
            families.append((
                "repro_batcher_flushes_total", "counter",
                "Micro-batch flushes executed and queries they carried.",
                [
                    prometheus_line("repro_batcher_flushes_total", batcher.flushes),
                    prometheus_line("repro_batcher_queries_total", batcher.queries_batched),
                ],
            ))
        return render_families(families)


class QueryServer:
    """The asyncio HTTP server over one open query service."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_window: float = 0.002,
        max_batch: int = 64,
        max_workers: int = 4,
        index_path: Optional[str] = None,
        trace: bool = False,
        trace_log: Optional[str] = None,
        slow_ms: Optional[float] = None,
        trace_buffer: int = 256,
    ):
        if not 0 <= port <= 65535:
            raise ValueError(f"port must be in 0..65535, got {port}")
        if max_workers < 1:
            raise ValueError(f"max workers must be >= 1, got {max_workers}")
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port on start()
        self.flush_window = flush_window
        self.max_batch = max_batch
        self.max_workers = max_workers
        self.index_path = index_path
        # Any tracing knob turns tracing on for the server's lifetime.
        self.trace = bool(trace or trace_log or slow_ms is not None)
        self.trace_log = trace_log
        self.slow_ms = slow_ms
        self.trace_buffer = trace_buffer
        self.metrics = ServerMetrics()
        self.flavor = service_flavor(service)
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._batcher: Optional[MicroBatcher] = None
        self._connections: set = set()
        self._started_at = 0.0
        self._trace_sink: Optional[JsonlSink] = None
        self._owns_tracer = False
        self._server_errors = 0

    @property
    def url(self) -> str:
        """The served base URL (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already running")
        if self.trace and not obs.enabled():
            sinks = []
            if self.trace_log:
                self._trace_sink = JsonlSink(self.trace_log)
                sinks.append(self._trace_sink)
            obs.enable(
                obs.Tracer(sinks=sinks, slow_ms=self.slow_ms, capacity=self.trace_buffer)
            )
            self._owns_tracer = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-serve"
        )
        self._batcher = MicroBatcher(
            self.service, self._executor, flush_window=self.flush_window, max_batch=self.max_batch
        )
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        return self

    async def stop(self) -> None:
        """Stop accepting, drain pending batches, shut the pool down."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Idle keep-alive connections sit in readline() forever; cancel them
        # so no task outlives the loop.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._batcher is not None:
            await self._batcher.drain()
            self._batcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_tracer:
            obs.disable()
            self._owns_tracer = False
        if self._trace_sink is not None:
            self._trace_sink.close()
            self._trace_sink = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, keep_alive, body, query_string, client_rid = request
                # Request ids always flow, traced or not: take the client's
                # X-Request-ID, mint one otherwise, echo it on the response.
                request_id = client_rid or obs.new_request_id()
                started = time.perf_counter()
                status, content_type, payload = await self._serve_request(
                    method, path, body, query_string, request_id
                )
                self.metrics.for_endpoint(path).record(status, time.perf_counter() - started)
                writer.write(
                    self._encode_response(
                        status, content_type, payload, keep_alive, request_id
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away or sent garbage beyond limits; drop the connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform dependent
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bool, bytes, str, Optional[str]]]:
        """Parse one request; None on a cleanly closed connection.

        Returns ``(method, path, keep-alive, body, query string, client
        X-Request-ID or None)``.
        """
        request_line = await reader.readline()
        if not request_line or not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return ("GET", "/_malformed", False, b"", "", None)
        method, target, version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        body = await reader.readexactly(length) if length > 0 else b""
        path, _, query_string = target.partition("?")
        connection = headers.get("connection", "").lower()
        keep_alive = version != "HTTP/1.0" and connection != "close"
        client_rid = headers.get("x-request-id", "").strip() or None
        return method.upper(), path, keep_alive, body, query_string, client_rid

    def _encode_response(
        self,
        status: int,
        content_type: str,
        payload: bytes,
        keep_alive: bool,
        request_id: Optional[str] = None,
    ) -> bytes:
        reason = _STATUS_REASONS.get(status, "Unknown")
        request_id_header = (
            f"X-Request-ID: {_header_safe(request_id)}\r\n" if request_id else ""
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{request_id_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + payload

    # ------------------------------------------------------------------
    # Routing and handlers
    # ------------------------------------------------------------------
    async def _serve_request(
        self, method: str, path: str, body: bytes, query_string: str, request_id: str
    ) -> Tuple[int, str, bytes]:
        """Dispatch one request, under a traced root span when tracing is on."""
        if not obs.enabled():
            return await self._dispatch(method, path, body, query_string, request_id)
        token = obs.set_request_id(request_id)
        try:
            with obs.trace("http_request", method=method, path=path) as span:
                status, content_type, payload = await self._dispatch(
                    method, path, body, query_string, request_id
                )
                span.set(status=status)
                return status, content_type, payload
        finally:
            obs.reset_request_id(token)

    async def _dispatch(
        self, method: str, path: str, body: bytes, query_string: str, request_id: str
    ) -> Tuple[int, str, bytes]:
        try:
            if path == "/query":
                if method != "POST":
                    return self._json_error(405, "POST a JSON body to /query")
                return await self._handle_query(body)
            if path == "/query/batch":
                if method != "POST":
                    return self._json_error(405, "POST a JSON body to /query/batch")
                return await self._handle_batch(body, request_id)
            if path == "/stats":
                if method != "GET":
                    return self._json_error(405, "/stats is GET-only")
                return self._handle_stats()
            if path == "/healthz":
                if method != "GET":
                    return self._json_error(405, "/healthz is GET-only")
                return self._handle_healthz()
            if path == "/metrics":
                if method != "GET":
                    return self._json_error(405, "/metrics is GET-only")
                return self._handle_metrics()
            if path == "/debug/trace":
                if method != "GET":
                    return self._json_error(405, "/debug/trace is GET-only")
                return self._handle_debug_trace(query_string)
            return self._json_error(404, f"unknown path {path!r} (endpoints: {', '.join(ENDPOINTS)})")
        except BadRequest as error:
            return self._json_error(400, str(error))
        except Exception as error:  # noqa: BLE001 - the server must not die on a handler bug
            # The traceback goes to the structured log only; the response
            # body stays generic so internals never leak to clients.
            self._log_server_error(path, request_id, error)
            return self._json_error(500, "internal server error")

    def _json_error(self, status: int, message: str) -> Tuple[int, str, bytes]:
        return status, _JSON, json.dumps({"error": message}).encode("utf-8")

    def _json_ok(self, payload: Dict[str, object]) -> Tuple[int, str, bytes]:
        return 200, _JSON, json.dumps(payload).encode("utf-8")

    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, object]:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"request body is not valid JSON: {error}") from error
        if not isinstance(parsed, dict):
            raise BadRequest("request body must be a JSON object")
        return parsed

    def _prepare_or_400(self, text: object) -> str:
        """Validate one query string (plans are cached, so nothing is wasted)."""
        if not isinstance(text, str) or not text.strip():
            raise BadRequest("'query' must be a non-empty string")
        try:
            self.service.prepare(text)
        except ValueError as error:
            raise BadRequest(f"cannot parse query {text!r}: {error}") from error
        return text

    async def _handle_query(self, body: bytes) -> Tuple[int, str, bytes]:
        payload = self._parse_json(body)
        if "query" not in payload:
            raise BadRequest("missing 'query' field")
        text = self._prepare_or_400(payload["query"])
        loop = asyncio.get_running_loop()
        assert self._executor is not None
        if obs.enabled():
            # run_in_executor does not carry context variables into the pool
            # thread; copy the context so the service's spans nest under this
            # request's root span and inherit its request id.
            context = contextvars.copy_context()
            result = await loop.run_in_executor(
                self._executor, context.run, self.service.run, text
            )
        else:
            result = await loop.run_in_executor(self._executor, self.service.run, text)
        return self._json_ok({"query": text, "result": result_to_dict(result)})

    async def _handle_batch(self, body: bytes, request_id: str) -> Tuple[int, str, bytes]:
        payload = self._parse_json(body)
        if "queries" not in payload or not isinstance(payload["queries"], list):
            raise BadRequest("missing 'queries' field (a JSON list of query strings)")
        texts = [self._prepare_or_400(text) for text in payload["queries"]]
        assert self._batcher is not None
        results = await self._batcher.submit(texts, request_id=request_id)
        return self._json_ok({
            "count": len(results),
            "results": [
                {"query": text, "result": result_to_dict(result)}
                for text, result in zip(texts, results)
            ],
        })

    def _log_server_error(self, path: str, request_id: str, error: BaseException) -> None:
        """One structured line per 500: request id, error, full traceback.

        Goes to the tracer's sinks (the ``--trace-log`` JSONL file) when
        tracing is on, to the ``repro.serve`` logger otherwise -- never into
        the HTTP response.
        """
        self._server_errors += 1
        detail = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )
        if obs.enabled():
            obs.get_tracer().emit({
                "kind": "error",
                "request_id": request_id,
                "path": path,
                "error": repr(error),
                "traceback": detail,
                "ts": time.time(),
            })
        else:
            _LOG.error(
                "request %s to %s failed: %r\n%s", request_id, path, error, detail
            )

    def _handle_debug_trace(self, query_string: str) -> Tuple[int, str, bytes]:
        if not obs.enabled():
            return self._json_ok({"enabled": False, "traces": []})
        params = parse_qs(query_string)
        raw = params.get("n", ["16"])[-1]
        try:
            n = int(raw)
        except ValueError as error:
            raise BadRequest(f"'n' must be an integer, got {raw!r}") from error
        if n < 1:
            raise BadRequest(f"'n' must be >= 1, got {n}")
        tracer = obs.get_tracer()
        traces = tracer.last(n)
        return self._json_ok({
            "enabled": True,
            "count": len(traces),
            "traces_finished": tracer.traces_finished,
            "traces": traces,
        })

    def _handle_stats(self) -> Tuple[int, str, bytes]:
        stats = self.service.stats().as_dict()
        server_block: Dict[str, object] = {
            "uptime_seconds": time.time() - self._started_at,
            "endpoints": {
                path: {
                    "requests": endpoint.requests,
                    "errors": endpoint.errors,
                    "latency": endpoint.latency.percentiles(),
                }
                for path, endpoint in self.metrics.endpoints.items()
            },
        }
        if self._batcher is not None:
            server_block["batcher"] = {
                "flushes": self._batcher.flushes,
                "queries_batched": self._batcher.queries_batched,
                "flush_window": self._batcher.flush_window,
                "max_batch": self._batcher.max_batch,
            }
        tracing: Dict[str, object] = {"enabled": obs.enabled(), "errors": self._server_errors}
        if obs.enabled():
            tracer = obs.get_tracer()
            tracing.update({
                "traces_finished": tracer.traces_finished,
                "sink_errors": tracer.sink_errors,
                "slow_ms": tracer.slow_ms,
                "slow_queries": list(tracer.slow_queries),
            })
        server_block["tracing"] = tracing
        return self._json_ok({"flavor": self.flavor, "service": stats, "server": server_block})

    def _handle_healthz(self) -> Tuple[int, str, bytes]:
        return self._json_ok({
            "status": "ok",
            "flavor": self.flavor,
            "index": self.index_path,
            "uptime_seconds": time.time() - self._started_at,
        })

    def _handle_metrics(self) -> Tuple[int, str, bytes]:
        body = self.metrics.render(self.service, self._batcher)
        return 200, _PROMETHEUS, body.encode("utf-8")


# ----------------------------------------------------------------------
# Running a server from synchronous code (tests, loadgen, examples)
# ----------------------------------------------------------------------
class ServerThread:
    """Runs a :class:`QueryServer` on its own event loop in a daemon thread.

    The constructor arguments are those of :class:`QueryServer`.  ``start``
    blocks until the socket is bound (so ``url`` is valid) and re-raises
    any bind error in the caller's thread; ``stop`` shuts the loop down and
    joins the thread.  The service is NOT owned: close it after ``stop``.
    """

    def __init__(self, service: QueryService, **kwargs: object):
        self._server = QueryServer(service, **kwargs)  # type: ignore[arg-type]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def server(self) -> QueryServer:
        return self._server

    @property
    def url(self) -> str:
        return self._server.url

    @property
    def port(self) -> int:
        return self._server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-serve-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):  # pragma: no cover - defensive
            raise RuntimeError("server failed to start within the timeout")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop_signal = loop.create_future()
        self._stop_signal = stop_signal
        try:
            loop.run_until_complete(self._server.start())
        except BaseException as error:  # bind failures surface in start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(stop_signal)
            loop.run_until_complete(self._server.stop())
        finally:
            loop.close()

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not self._thread or not self._thread.is_alive():
            return
        loop.call_soon_threadsafe(
            lambda: self._stop_signal.done() or self._stop_signal.set_result(None)
        )
        self._thread.join(timeout=10.0)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def open_server(index_path: str, **kwargs: object) -> Tuple[QueryService, ServerThread]:
    """Open *index_path* for serving and start a background server over it.

    Returns ``(service, running ServerThread)``; the caller stops the
    thread first, then closes the service.  Dispatches on the manifest like
    :meth:`QueryService.open`, so plain, sharded and live indexes all work.
    """
    service = QueryService.open(index_path)
    try:
        thread = ServerThread(service, index_path=index_path, **kwargs).start()
    except BaseException:
        service.close()
        raise
    return service, thread
