"""Closed- and open-loop load generation against a running query server.

``run_load`` drives ``concurrency`` worker threads, each owning one
keep-alive :class:`http.client.HTTPConnection` and issuing ``POST /query``
requests back-to-back (closed loop: a worker sends its next request only
after the previous response lands, so offered load adapts to what the
server sustains instead of queueing unboundedly).  Workers walk a shared
query mix round-robin from staggered offsets, so at any instant the server
sees a blend of repeated (cache-friendly) and fresh queries -- the shape
the WH + FB workloads of the paper's experiments produce.

``run_open_loop`` is the honest overload instrument: requests are issued
at a *fixed* arrival rate (Poisson or uniform arrivals) regardless of how
fast responses come back, the way independent users hit a service.  A
closed loop slows down when the server does, which **hides latency under
overload** (coordinated omission); the open loop keeps offering load, so
queueing delay shows up in the percentiles and the server's load-shedding
(503 + ``Retry-After``) is measured rather than masked.  Virtual clients
are unbounded: each arrival grabs an idle keep-alive connection or opens a
new one, and per-request latency is measured from the *scheduled* arrival
instant, so dispatch lag counts against the server, not for it.

Latencies are recorded per request as raw samples; the report computes
exact percentiles from the sorted series (unlike the server's ``/metrics``
histogram, which estimates them from log-spaced buckets -- comparing the
two is a useful sanity check of the bucket resolution).

An optional ``expected`` mapping (query text -> result dict, as produced by
``result_to_dict``) makes every worker verify each response against the
in-process ground truth; mismatches are counted in the report.  Compared
are the *answer* fields -- ``total_matches``, ``matched_tids``,
``matches_per_tree`` -- not the per-execution telemetry under ``stats``
(``elapsed_seconds`` differs on every run by construction).  This is the
served-vs-direct equivalence check the bench experiment relies on.
"""

from __future__ import annotations

import http.client
import json
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.serve.metrics import REPORTED_QUANTILES, percentile_of_sorted

#: The result fields that constitute the answer (vs per-execution telemetry).
ANSWER_FIELDS = ("total_matches", "matched_tids", "matches_per_tree")


def answer_of(result: Dict[str, object]) -> Tuple[object, ...]:
    """The comparable answer of one ``result_to_dict`` payload."""
    return tuple(result.get(field) for field in ANSWER_FIELDS)


@dataclass
class LoadgenReport:
    """What one closed-loop run measured."""

    concurrency: int
    duration_seconds: float  # measured wall time, not the requested duration
    requests: int
    errors: int
    #: Responses that differed from the expected (in-process) result.
    mismatches: int
    #: Per-request latencies in seconds, sorted ascending.
    latencies: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Completed requests per second of wall time."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    def percentile(self, q: float) -> Optional[float]:
        """The exact q-th latency percentile in seconds (None if no samples)."""
        return percentile_of_sorted(self.latencies, q)

    def percentiles_ms(self) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in milliseconds."""
        out: Dict[str, Optional[float]] = {}
        for q in REPORTED_QUANTILES:
            value = self.percentile(q)
            out[f"p{int(q * 100)}"] = None if value is None else value * 1000.0
        return out

    def as_dict(self) -> Dict[str, object]:
        """The JSON-friendly summary (raw samples reduced to percentiles)."""
        return {
            "concurrency": self.concurrency,
            "duration_seconds": self.duration_seconds,
            "requests": self.requests,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "qps": self.qps,
            "latency_ms": self.percentiles_ms(),
        }


class _Worker(threading.Thread):
    """One closed-loop client: connect, fire, record, repeat until deadline."""

    def __init__(
        self,
        host: str,
        port: int,
        queries: Sequence[str],
        offset: int,
        barrier: threading.Barrier,
        deadline_holder: List[float],
        expected: Optional[Dict[str, Dict[str, object]]],
        timeout: float,
    ):
        super().__init__(name=f"loadgen-{offset}", daemon=True)
        self._host = host
        self._port = port
        self._queries = queries
        self._position = offset % len(queries)
        self._barrier = barrier
        self._deadline_holder = deadline_holder
        self._expected = expected
        self._timeout = timeout
        self.latencies: List[float] = []
        self.errors = 0
        self.mismatches = 0
        self.failure: Optional[BaseException] = None

    def run(self) -> None:  # pragma: no cover - exercised via run_load
        try:
            connection = http.client.HTTPConnection(self._host, self._port, timeout=self._timeout)
            connection.connect()  # fail fast: a refused connection aborts the run
            try:
                self._barrier.wait()
                deadline = self._deadline_holder[0]
                while time.perf_counter() < deadline:
                    self._one_request(connection)
            finally:
                connection.close()
        except BaseException as error:  # noqa: BLE001 - reported by run_load
            self.failure = error
            self._barrier.abort()  # release everyone blocked on the start line

    def _one_request(self, connection: http.client.HTTPConnection) -> None:
        text = self._queries[self._position]
        self._position = (self._position + 1) % len(self._queries)
        body = json.dumps({"query": text})
        started = time.perf_counter()
        try:
            connection.request(
                "POST", "/query", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = response.read()
            status = response.status
        except (OSError, http.client.HTTPException):
            self.errors += 1
            connection.close()  # reconnect lazily on the next request
            return
        self.latencies.append(time.perf_counter() - started)
        if status != 200:
            self.errors += 1
            return
        if self._expected is not None:
            try:
                result = json.loads(payload)["result"]
            except (json.JSONDecodeError, KeyError, UnicodeDecodeError):
                self.mismatches += 1
                return
            reference = self._expected.get(text)
            if reference is None or answer_of(result) != answer_of(reference):
                self.mismatches += 1


def parse_base_url(url: str) -> Tuple[str, int]:
    """``host, port`` from a base URL like ``http://127.0.0.1:8321``."""
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"only http:// URLs are supported, got {url!r}")
    if not parts.hostname:
        raise ValueError(f"cannot extract a host from {url!r}")
    return parts.hostname, parts.port or 80


def run_load(
    url: str,
    queries: Sequence[str],
    concurrency: int,
    duration: float,
    expected: Optional[Dict[str, Dict[str, object]]] = None,
    timeout: float = 30.0,
) -> LoadgenReport:
    """Drive a closed loop of *concurrency* clients for *duration* seconds.

    All workers connect first, then start together behind a barrier, so the
    measured window contains no connection-setup ramp.  Raises the first
    worker-level failure (e.g. refused connection) rather than reporting a
    silently empty run.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if not queries:
        raise ValueError("the query mix is empty")
    host, port = parse_base_url(url)

    deadline_holder = [0.0]
    barrier = threading.Barrier(concurrency + 1)
    stagger = max(1, len(queries) // max(concurrency, 1))
    workers = [
        _Worker(
            host, port, queries, offset * stagger, barrier, deadline_holder, expected, timeout
        )
        for offset in range(concurrency)
    ]
    for worker in workers:
        worker.start()
    # The deadline must be written before the barrier releases the workers;
    # the skew (main reaches the barrier last if workers connect instantly)
    # only shortens the run, never lets a worker see a stale deadline.
    deadline_holder[0] = time.perf_counter() + duration
    try:
        barrier.wait()  # releases every connected worker at once
    except threading.BrokenBarrierError:
        pass  # a worker failed before the start line; its failure is raised below
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    failures = [worker.failure for worker in workers if worker.failure is not None]
    for failure in failures:  # prefer the root cause over broken-barrier fallout
        if not isinstance(failure, threading.BrokenBarrierError):
            raise failure
    if failures:
        raise failures[0]

    latencies: List[float] = []
    errors = 0
    mismatches = 0
    for worker in workers:
        latencies.extend(worker.latencies)
        errors += worker.errors
        mismatches += worker.mismatches
    latencies.sort()
    return LoadgenReport(
        concurrency=concurrency,
        duration_seconds=elapsed,
        requests=len(latencies),
        errors=errors,
        mismatches=mismatches,
        latencies=latencies,
    )


# ----------------------------------------------------------------------
# Query-mix profiles
# ----------------------------------------------------------------------
#: Named blends of the WH (wh-question patterns, cache-friendly repeats)
#: and FB (frequency-based, heavier joins) query sets: fraction of each
#: slot drawn from the FB set.
PROFILES: Dict[str, float] = {"wh": 0.0, "balanced": 0.5, "fb_heavy": 0.8}


def profile_mix(
    wh_queries: Sequence[str],
    fb_queries: Sequence[str],
    profile: str = "balanced",
    length: int = 256,
    seed: int = 0,
) -> List[str]:
    """A deterministic shuffled query mix blending WH and FB queries.

    *profile* names a blend from :data:`PROFILES` (``wh`` / ``balanced`` /
    ``fb_heavy``).  Sampling is with replacement from each set, seeded, so
    the same (queries, profile, seed) always produces the same mix -- load
    runs stay reproducible.  With an empty FB set the mix degrades to WH
    only (and vice versa) rather than failing.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r} (choose from {sorted(PROFILES)})")
    if not wh_queries and not fb_queries:
        raise ValueError("both query sets are empty")
    if length < 1:
        raise ValueError(f"mix length must be >= 1, got {length}")
    fb_fraction = PROFILES[profile]
    rng = random.Random(seed)
    mix: List[str] = []
    for _ in range(length):
        use_fb = fb_queries and (not wh_queries or rng.random() < fb_fraction)
        source = fb_queries if use_fb else wh_queries
        mix.append(source[rng.randrange(len(source))])
    return mix


# ----------------------------------------------------------------------
# Open-loop (fixed-rate) load generation
# ----------------------------------------------------------------------
@dataclass
class OpenLoopReport:
    """What one open-loop run measured.

    ``offered`` counts scheduled arrivals that were dispatched; responses
    split into ``accepted`` (200, verified against ground truth),
    ``shed`` (503 load-shedding -- the server protecting itself, *not* an
    error) and ``errors`` (every other status plus transport failures).
    ``latencies`` holds accepted-response latencies measured from the
    scheduled arrival instant (queueing delay included), sorted ascending.
    """

    rate: float
    arrivals: str
    duration_seconds: float
    offered: int
    accepted: int
    shed: int
    errors: int
    mismatches: int
    #: Arrivals never dispatched because ``max_clients`` was exhausted -- a
    #: load-generator limit, reported separately so it is never mistaken
    #: for a server-side failure.
    overflowed: int
    #: Peak number of concurrently live virtual clients.
    clients_peak: int
    latencies: List[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Requests that received a non-error HTTP response (accepted + shed)."""
        return self.accepted + self.shed

    def percentile(self, q: float) -> Optional[float]:
        """Exact q-th accepted-latency percentile in seconds (None if none)."""
        return percentile_of_sorted(self.latencies, q)

    def percentiles_ms(self) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in milliseconds."""
        out: Dict[str, Optional[float]] = {}
        for q in REPORTED_QUANTILES:
            value = self.percentile(q)
            out[f"p{int(q * 100)}"] = None if value is None else value * 1000.0
        return out

    def as_dict(self) -> Dict[str, object]:
        """The JSON-friendly summary (raw samples reduced to percentiles)."""
        return {
            "rate": self.rate,
            "arrivals": self.arrivals,
            "duration_seconds": self.duration_seconds,
            "offered": self.offered,
            "accepted": self.accepted,
            "shed": self.shed,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "overflowed": self.overflowed,
            "clients_peak": self.clients_peak,
            "latency_ms": self.percentiles_ms(),
        }


class _OpenClient(threading.Thread):
    """One virtual client: a keep-alive connection fed scheduled requests.

    The dispatcher hands it ``(query text, scheduled start)`` pairs through
    an inbox queue; after each response the client parks itself back on the
    idle stack.  ``None`` in the inbox ends the thread.
    """

    def __init__(
        self,
        host: str,
        port: int,
        idle: List["_OpenClient"],
        idle_lock: threading.Lock,
        expected: Optional[Dict[str, Dict[str, object]]],
        timeout: float,
        name: str,
    ):
        super().__init__(name=name, daemon=True)
        self._host = host
        self._port = port
        self._idle = idle
        self._idle_lock = idle_lock
        self._expected = expected
        self._timeout = timeout
        self.inbox: "queue.Queue" = queue.Queue()
        self._connection: Optional[http.client.HTTPConnection] = None
        self.latencies: List[float] = []
        self.accepted = 0
        self.shed = 0
        self.errors = 0
        self.mismatches = 0

    def run(self) -> None:  # pragma: no cover - exercised via run_open_loop
        while True:
            item = self.inbox.get()
            if item is None:
                break
            text, scheduled = item
            self._one_request(text, scheduled)
            with self._idle_lock:
                self._idle.append(self)
        if self._connection is not None:
            self._connection.close()

    def _one_request(self, text: str, scheduled: float) -> None:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        body = json.dumps({"query": text})
        try:
            self._connection.request(
                "POST", "/query", body=body, headers={"Content-Type": "application/json"}
            )
            response = self._connection.getresponse()
            payload = response.read()
            status = response.status
            if response.will_close:
                self._connection.close()
                self._connection = None
        except (OSError, http.client.HTTPException):
            self.errors += 1
            if self._connection is not None:
                self._connection.close()
            self._connection = None  # reconnect on the next request
            return
        finished = time.perf_counter()
        if status == 503:
            self.shed += 1  # the server protecting its queue; not an error
            return
        if status != 200:
            self.errors += 1
            return
        self.accepted += 1
        # Open-loop latency runs from the *scheduled* arrival: time the
        # request spent waiting to be dispatched counts too (that is the
        # latency a real user at that arrival instant would have seen).
        self.latencies.append(finished - scheduled)
        if self._expected is not None:
            try:
                result = json.loads(payload)["result"]
            except (json.JSONDecodeError, KeyError, UnicodeDecodeError):
                self.mismatches += 1
                return
            reference = self._expected.get(text)
            if reference is None or answer_of(result) != answer_of(reference):
                self.mismatches += 1


def run_open_loop(
    url: str,
    queries: Sequence[str],
    rate: float,
    duration: float,
    arrivals: str = "poisson",
    seed: int = 0,
    expected: Optional[Dict[str, Dict[str, object]]] = None,
    timeout: float = 30.0,
    max_clients: int = 192,
) -> OpenLoopReport:
    """Offer *rate* requests/second for *duration* seconds, come what may.

    Arrival instants are pre-generated from a seeded RNG -- ``poisson``
    (exponential gaps, bursty like independent users) or ``uniform``
    (evenly spaced) -- and each arrival is dispatched to an idle virtual
    client, or a fresh one if all are busy (up to *max_clients*; beyond
    that the arrival is counted in ``overflowed`` rather than silently
    skipped, so generator saturation is never hidden -- and never blamed
    on the server).  The default cap sits below ``QueryServer``'s default
    ``max_connections`` (256) on purpose: a fleet larger than the server's
    connection budget is shed at accept with ``Connection: close``, and
    the reconnect churn can overflow the listen backlog into client-side
    resets that would read as server errors.  Unlike the closed loop, a slow or
    overloaded server does **not** slow the offered load down: queueing
    and shedding become visible instead of being absorbed by the client.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if arrivals not in ("poisson", "uniform"):
        raise ValueError(f"arrivals must be 'poisson' or 'uniform', got {arrivals!r}")
    if not queries:
        raise ValueError("the query mix is empty")
    if max_clients < 1:
        raise ValueError(f"max_clients must be >= 1, got {max_clients}")
    host, port = parse_base_url(url)

    # Pre-generate the arrival schedule so RNG work never skews pacing.
    rng = random.Random(seed)
    offsets: List[float] = []
    instant = 0.0
    gap = 1.0 / rate
    while instant < duration:
        offsets.append(instant)
        instant += rng.expovariate(rate) if arrivals == "poisson" else gap

    idle: List[_OpenClient] = []
    idle_lock = threading.Lock()
    clients: List[_OpenClient] = []
    overflowed = 0
    started = time.perf_counter()
    for position, offset in enumerate(offsets):
        scheduled = started + offset
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        with idle_lock:
            client = idle.pop() if idle else None
        if client is None:
            if len(clients) >= max_clients:
                overflowed += 1
                continue
            client = _OpenClient(
                host, port, idle, idle_lock, expected, timeout,
                name=f"openloop-{len(clients)}",
            )
            client.start()
            clients.append(client)
        client.inbox.put((queries[position % len(queries)], scheduled))
    for client in clients:
        client.inbox.put(None)  # finish in-flight work, then exit
    for client in clients:
        client.join()
    elapsed = time.perf_counter() - started

    latencies: List[float] = []
    accepted = shed = errors = mismatches = 0
    for client in clients:
        latencies.extend(client.latencies)
        accepted += client.accepted
        shed += client.shed
        errors += client.errors
        mismatches += client.mismatches
    latencies.sort()
    return OpenLoopReport(
        rate=rate,
        arrivals=arrivals,
        duration_seconds=elapsed,
        offered=len(offsets),
        accepted=accepted,
        shed=shed,
        errors=errors,
        mismatches=mismatches,
        overflowed=overflowed,
        clients_peak=len(clients),
        latencies=latencies,
    )
