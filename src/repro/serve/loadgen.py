"""Closed-loop load generation against a running query server.

``run_load`` drives ``concurrency`` worker threads, each owning one
keep-alive :class:`http.client.HTTPConnection` and issuing ``POST /query``
requests back-to-back (closed loop: a worker sends its next request only
after the previous response lands, so offered load adapts to what the
server sustains instead of queueing unboundedly).  Workers walk a shared
query mix round-robin from staggered offsets, so at any instant the server
sees a blend of repeated (cache-friendly) and fresh queries -- the shape
the WH + FB workloads of the paper's experiments produce.

Latencies are recorded per request as raw samples; the report computes
exact percentiles from the sorted series (unlike the server's ``/metrics``
histogram, which estimates them from log-spaced buckets -- comparing the
two is a useful sanity check of the bucket resolution).

An optional ``expected`` mapping (query text -> result dict, as produced by
``result_to_dict``) makes every worker verify each response against the
in-process ground truth; mismatches are counted in the report.  Compared
are the *answer* fields -- ``total_matches``, ``matched_tids``,
``matches_per_tree`` -- not the per-execution telemetry under ``stats``
(``elapsed_seconds`` differs on every run by construction).  This is the
served-vs-direct equivalence check the bench experiment relies on.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.serve.metrics import REPORTED_QUANTILES, percentile_of_sorted

#: The result fields that constitute the answer (vs per-execution telemetry).
ANSWER_FIELDS = ("total_matches", "matched_tids", "matches_per_tree")


def answer_of(result: Dict[str, object]) -> Tuple[object, ...]:
    """The comparable answer of one ``result_to_dict`` payload."""
    return tuple(result.get(field) for field in ANSWER_FIELDS)


@dataclass
class LoadgenReport:
    """What one closed-loop run measured."""

    concurrency: int
    duration_seconds: float  # measured wall time, not the requested duration
    requests: int
    errors: int
    #: Responses that differed from the expected (in-process) result.
    mismatches: int
    #: Per-request latencies in seconds, sorted ascending.
    latencies: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Completed requests per second of wall time."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    def percentile(self, q: float) -> Optional[float]:
        """The exact q-th latency percentile in seconds (None if no samples)."""
        return percentile_of_sorted(self.latencies, q)

    def percentiles_ms(self) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in milliseconds."""
        out: Dict[str, Optional[float]] = {}
        for q in REPORTED_QUANTILES:
            value = self.percentile(q)
            out[f"p{int(q * 100)}"] = None if value is None else value * 1000.0
        return out

    def as_dict(self) -> Dict[str, object]:
        """The JSON-friendly summary (raw samples reduced to percentiles)."""
        return {
            "concurrency": self.concurrency,
            "duration_seconds": self.duration_seconds,
            "requests": self.requests,
            "errors": self.errors,
            "mismatches": self.mismatches,
            "qps": self.qps,
            "latency_ms": self.percentiles_ms(),
        }


class _Worker(threading.Thread):
    """One closed-loop client: connect, fire, record, repeat until deadline."""

    def __init__(
        self,
        host: str,
        port: int,
        queries: Sequence[str],
        offset: int,
        barrier: threading.Barrier,
        deadline_holder: List[float],
        expected: Optional[Dict[str, Dict[str, object]]],
        timeout: float,
    ):
        super().__init__(name=f"loadgen-{offset}", daemon=True)
        self._host = host
        self._port = port
        self._queries = queries
        self._position = offset % len(queries)
        self._barrier = barrier
        self._deadline_holder = deadline_holder
        self._expected = expected
        self._timeout = timeout
        self.latencies: List[float] = []
        self.errors = 0
        self.mismatches = 0
        self.failure: Optional[BaseException] = None

    def run(self) -> None:  # pragma: no cover - exercised via run_load
        try:
            connection = http.client.HTTPConnection(self._host, self._port, timeout=self._timeout)
            connection.connect()  # fail fast: a refused connection aborts the run
            try:
                self._barrier.wait()
                deadline = self._deadline_holder[0]
                while time.perf_counter() < deadline:
                    self._one_request(connection)
            finally:
                connection.close()
        except BaseException as error:  # noqa: BLE001 - reported by run_load
            self.failure = error
            self._barrier.abort()  # release everyone blocked on the start line

    def _one_request(self, connection: http.client.HTTPConnection) -> None:
        text = self._queries[self._position]
        self._position = (self._position + 1) % len(self._queries)
        body = json.dumps({"query": text})
        started = time.perf_counter()
        try:
            connection.request(
                "POST", "/query", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = response.read()
            status = response.status
        except (OSError, http.client.HTTPException):
            self.errors += 1
            connection.close()  # reconnect lazily on the next request
            return
        self.latencies.append(time.perf_counter() - started)
        if status != 200:
            self.errors += 1
            return
        if self._expected is not None:
            try:
                result = json.loads(payload)["result"]
            except (json.JSONDecodeError, KeyError, UnicodeDecodeError):
                self.mismatches += 1
                return
            reference = self._expected.get(text)
            if reference is None or answer_of(result) != answer_of(reference):
                self.mismatches += 1


def parse_base_url(url: str) -> Tuple[str, int]:
    """``host, port`` from a base URL like ``http://127.0.0.1:8321``."""
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"only http:// URLs are supported, got {url!r}")
    if not parts.hostname:
        raise ValueError(f"cannot extract a host from {url!r}")
    return parts.hostname, parts.port or 80


def run_load(
    url: str,
    queries: Sequence[str],
    concurrency: int,
    duration: float,
    expected: Optional[Dict[str, Dict[str, object]]] = None,
    timeout: float = 30.0,
) -> LoadgenReport:
    """Drive a closed loop of *concurrency* clients for *duration* seconds.

    All workers connect first, then start together behind a barrier, so the
    measured window contains no connection-setup ramp.  Raises the first
    worker-level failure (e.g. refused connection) rather than reporting a
    silently empty run.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if not queries:
        raise ValueError("the query mix is empty")
    host, port = parse_base_url(url)

    deadline_holder = [0.0]
    barrier = threading.Barrier(concurrency + 1)
    stagger = max(1, len(queries) // max(concurrency, 1))
    workers = [
        _Worker(
            host, port, queries, offset * stagger, barrier, deadline_holder, expected, timeout
        )
        for offset in range(concurrency)
    ]
    for worker in workers:
        worker.start()
    # The deadline must be written before the barrier releases the workers;
    # the skew (main reaches the barrier last if workers connect instantly)
    # only shortens the run, never lets a worker see a stale deadline.
    deadline_holder[0] = time.perf_counter() + duration
    try:
        barrier.wait()  # releases every connected worker at once
    except threading.BrokenBarrierError:
        pass  # a worker failed before the start line; its failure is raised below
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started

    failures = [worker.failure for worker in workers if worker.failure is not None]
    for failure in failures:  # prefer the root cause over broken-barrier fallout
        if not isinstance(failure, threading.BrokenBarrierError):
            raise failure
    if failures:
        raise failures[0]

    latencies: List[float] = []
    errors = 0
    mismatches = 0
    for worker in workers:
        latencies.extend(worker.latencies)
        errors += worker.errors
        mismatches += worker.mismatches
    latencies.sort()
    return LoadgenReport(
        concurrency=concurrency,
        duration_seconds=elapsed,
        requests=len(latencies),
        errors=errors,
        mismatches=mismatches,
        latencies=latencies,
    )
