"""repro.serve: HTTP serving and load testing over the query services.

The package splits into four small modules:

``metrics``
    latency histograms with log-spaced buckets, quantile estimation and
    Prometheus text rendering;
``batch``
    the micro-batcher that coalesces concurrent queries into ``run_many``;
``server``
    the stdlib-only asyncio HTTP server (``/query``, ``/query/batch``,
    ``/stats``, ``/healthz``, ``/metrics``) plus helpers for running it
    from synchronous code;
``loadgen``
    the closed-loop load generator behind ``repro loadtest`` and the
    ``serve_http_throughput`` bench experiment.
"""

from repro.serve.batch import MicroBatcher
from repro.serve.loadgen import LoadgenReport, parse_base_url, run_load
from repro.serve.metrics import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    percentile_of_sorted,
    render_families,
)
from repro.serve.server import (
    ENDPOINTS,
    QueryServer,
    ServerThread,
    open_server,
    result_to_dict,
    service_flavor,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "ENDPOINTS",
    "LatencyHistogram",
    "LoadgenReport",
    "MicroBatcher",
    "QueryServer",
    "ServerThread",
    "open_server",
    "parse_base_url",
    "percentile_of_sorted",
    "render_families",
    "result_to_dict",
    "run_load",
    "service_flavor",
]
