"""The live-index manifest: the openable catalogue of immutable segments.

A live index on disk is a set of immutable base segments (each a complete
``SubtreeIndex`` + ``TreeStore`` pair, exactly like a shard), one
write-ahead log, and this manifest tying them together::

    {
      "format": "repro-live-index",
      "version": 1,
      "mss": 3,
      "coding": "root-split",
      "epoch": 4,
      "next_tid": 1240,
      "next_segment_id": 6,
      "segments": [
        {"segment_id": 0, "index_path": "corpus.seg000",
         "data_path": "corpus.seg000.data", "tree_count": 1200,
         "key_count": 9120, "posting_count": 60233, "build_seconds": 0.95,
         "min_tid": 0, "max_tid": 1199},
        ...
      ]
    }

The manifest is the unit of atomicity: every compaction writes the new
segment files first, then replaces the manifest in one :func:`os.replace`
with the epoch bumped.  Readers opening the index see either the old epoch
(plus the still-intact old WAL) or the new one -- never a half state.
Segment ids are never reused, so a rewritten segment gets fresh filenames
and the files named by the *old* manifest stay valid until the swap.

Paths are stored relative to the manifest's directory, so the whole bundle
(manifest + segments + WAL) can be moved or copied as one, mirroring the
sharded manifest's convention.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import List, Tuple

#: Identifies a live-index manifest file regardless of its filename.
LIVE_FORMAT = "repro-live-index"
LIVE_VERSION = 1
#: Conventional filename suffix of a live manifest.
LIVE_SUFFIX = ".live.json"


class LiveIndexError(RuntimeError):
    """A live-index file is missing, corrupt, or inconsistent with its manifest."""


@dataclass
class SegmentEntry:
    """One immutable segment's files and counters, as the manifest records them."""

    segment_id: int
    index_path: str  # relative to the manifest directory
    data_path: str   # relative to the manifest directory
    tree_count: int
    key_count: int
    posting_count: int
    build_seconds: float
    min_tid: int
    max_tid: int


@dataclass
class LiveManifest:
    """The parsed contents of a live-index manifest file."""

    mss: int
    coding: str
    epoch: int
    next_tid: int
    next_segment_id: int
    segments: List[SegmentEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "format": LIVE_FORMAT,
            "version": LIVE_VERSION,
            "mss": self.mss,
            "coding": self.coding,
            "epoch": self.epoch,
            "next_tid": self.next_tid,
            "next_segment_id": self.next_segment_id,
            "segments": [asdict(entry) for entry in self.segments],
        }
        return json.dumps(payload, indent=2) + "\n"

    def save_atomic(self, path: str) -> None:
        """Write the manifest durably: temp file, fsync, then one rename."""
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "LiveManifest":
        """Read and validate a manifest written by :meth:`save_atomic`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            raise LiveIndexError(f"cannot read live manifest {path!r}: {error}") from error
        if payload.get("format") != LIVE_FORMAT:
            raise LiveIndexError(f"{path!r} is not a live-index manifest")
        version = payload.get("version")
        if version != LIVE_VERSION:
            raise LiveIndexError(
                f"unsupported live-manifest version {version!r} in {path!r} "
                f"(this build reads version {LIVE_VERSION})"
            )
        return cls(
            mss=payload["mss"],
            coding=payload["coding"],
            epoch=payload["epoch"],
            next_tid=payload["next_tid"],
            next_segment_id=payload["next_segment_id"],
            segments=[SegmentEntry(**entry) for entry in payload["segments"]],
        )

    # ------------------------------------------------------------------
    @property
    def tree_count(self) -> int:
        """Total trees across all base segments (the delta is not on disk)."""
        return sum(entry.tree_count for entry in self.segments)

    def resolve(self, manifest_path: str, relative: str) -> str:
        """Resolve a segment-relative path against the manifest's directory."""
        return os.path.join(os.path.dirname(os.path.abspath(manifest_path)), relative)


def is_live_manifest(path: str) -> bool:
    """``True`` when *path* names an existing live-index manifest.

    Sniffs the content rather than trusting the filename, matching
    :func:`repro.shard.manifest.is_manifest`.
    """
    if not os.path.isfile(path):
        return False
    try:
        with open(path, "rb") as handle:
            head = handle.read(512)
    except OSError:
        return False
    return LIVE_FORMAT.encode("ascii") in head


def live_stem(manifest_path: str) -> str:
    """The manifest's filename without :data:`LIVE_SUFFIX` (segment/WAL prefix)."""
    base = os.path.basename(manifest_path)
    if base.endswith(LIVE_SUFFIX):
        base = base[: -len(LIVE_SUFFIX)]
    return base


def segment_file_names(manifest_path: str, segment_id: int) -> Tuple[str, str]:
    """The conventional (index, data) filenames of one segment.

    ``corpus.live.json`` -> ``corpus.seg000`` / ``corpus.seg000.data``; both
    relative to the manifest's directory.  Segment ids are never reused, so
    these names are unique for the lifetime of the index.
    """
    index_name = f"{live_stem(manifest_path)}.seg{segment_id:03d}"
    return index_name, index_name + ".data"


def wal_file_path(manifest_path: str) -> str:
    """The write-ahead-log path conventionally stored next to the manifest."""
    directory = os.path.dirname(os.path.abspath(manifest_path))
    return os.path.join(directory, live_stem(manifest_path) + ".wal")
