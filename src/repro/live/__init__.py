"""A mutable ("live") subtree index over a growing, changing corpus.

The paper's index is immutable: any corpus change meant a full rebuild.
This package adds the standard LSM-flavoured update path behind the same
read API (cf. Clarke's *Annotative Indexing*, 2024):

* :mod:`repro.live.wal` -- the checksummed, fsynced write-ahead log every
  mutation hits before it is applied; replayed on open, truncated (and
  epoch-bumped) by compaction.
* :mod:`repro.live.delta` -- :class:`DeltaSegment`, the in-memory
  SubtreeIndex-shaped memtable over recently added trees.
* :mod:`repro.live.manifest` -- the epoch-stamped JSON manifest listing the
  immutable base segments; swapped atomically by compaction.
* :mod:`repro.live.live` -- :class:`LiveIndex`: the full ``SubtreeIndex``
  read API over segments + delta with tombstone filtering, plus
  ``add_tree`` / ``delete_tree`` / ``compact`` and crash recovery.

The serving layer lives with the other services
(:class:`repro.service.live.LiveQueryService`), and ``SubtreeIndex.open`` /
``QueryService.open`` / the CLI all dispatch here when pointed at a live
manifest.
"""

from repro.live.delta import DeltaSegment
from repro.live.live import CompactionStats, LiveIndex, LiveSegment, LiveTreeStore, open_live
from repro.live.manifest import (
    LIVE_SUFFIX,
    LiveIndexError,
    LiveManifest,
    SegmentEntry,
    is_live_manifest,
    wal_file_path,
)
from repro.live.wal import WalError, WalOp, WriteAheadLog

__all__ = [
    "LiveIndex",
    "LiveSegment",
    "LiveTreeStore",
    "CompactionStats",
    "open_live",
    "DeltaSegment",
    "LiveManifest",
    "SegmentEntry",
    "LiveIndexError",
    "is_live_manifest",
    "wal_file_path",
    "LIVE_SUFFIX",
    "WriteAheadLog",
    "WalOp",
    "WalError",
]
