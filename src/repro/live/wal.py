"""The write-ahead log of a live index.

Every mutation (``add_tree`` / ``delete_tree``) is appended -- and fsynced --
to the WAL *before* it is applied to the in-memory delta segment, so a crash
after an acknowledged write can never lose it: reopening the index replays
the log into an identical delta.  Compaction folds the delta into an
immutable on-disk segment and then starts a fresh log, so the WAL only ever
holds the ops since the last compaction.

Format: a text file of one record per line.  The first line is a header
naming the format and the *epoch* the log belongs to; every line (header
included) is prefixed with the CRC-32 of its JSON payload::

    <crc32 hex> {"format": "repro-live-wal", "version": 1, "epoch": 3}
    <crc32 hex> {"op": "add", "tid": 1200, "tree": "(ROOT (S ...))"}
    <crc32 hex> {"op": "delete", "tid": 17}

The CRC turns a torn final write (power loss mid-append) into a detectable
truncation: replay stops at the first record that fails its checksum, and
:meth:`WriteAheadLog.open` truncates the file back to the last good record.
A bad checksum *followed by more valid data* is not a torn tail but silent
corruption, and raises :class:`WalError` instead of dropping user writes.

The epoch in the header ties a log to the manifest generation it extends.
Compaction writes the new (empty, epoch N+1) log to a side file and renames
it over the old one only *after* the new manifest is in place; if the
process dies between those two steps, the surviving log's epoch is older
than the manifest's, which :meth:`repro.live.live.LiveIndex.open` detects
and treats as "already compacted" -- replaying it would duplicate every op.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import IO, List, Optional, Tuple

#: Identifies a WAL header record.
WAL_FORMAT = "repro-live-wal"
WAL_VERSION = 1


class WalError(RuntimeError):
    """The write-ahead log is corrupt or inconsistent with its manifest."""


@dataclass(frozen=True)
class WalOp:
    """One replayable mutation: an ``add`` (with the tree) or a ``delete``."""

    op: str  # "add" | "delete"
    tid: int
    tree: Optional[str] = None  # Penn-bracket text, present for adds


def _encode_record(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return b"%08x " % zlib.crc32(body) + body + b"\n"


def _decode_record(line: bytes) -> Optional[dict]:
    """Parse one WAL line; ``None`` when the checksum or syntax fails."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:-1]
    if zlib.crc32(body) != expected:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class WriteAheadLog:
    """An append-only, checksummed, fsynced log of live-index mutations."""

    def __init__(self, path: str, epoch: int, handle: IO[bytes], op_count: int, fsync: bool):
        self.path = path
        self.epoch = epoch
        self.op_count = op_count
        self._file = handle
        self._fsync = fsync

    # ------------------------------------------------------------------
    # Creation and recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str, epoch: int, fsync: bool = True) -> "WriteAheadLog":
        """Start a fresh log at *path* (truncating any existing file)."""
        handle = open(path, "wb")
        handle.write(
            _encode_record({"format": WAL_FORMAT, "version": WAL_VERSION, "epoch": epoch})
        )
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        return cls(path, epoch, handle, op_count=0, fsync=fsync)

    @classmethod
    def open(cls, path: str, fsync: bool = True) -> Tuple["WriteAheadLog", List[WalOp]]:
        """Open an existing log, replaying and returning its ops.

        A torn final record (the tail of a crashed append) is truncated away;
        corruption anywhere else raises :class:`WalError`.  The returned log
        is positioned for further appends.
        """
        ops: List[WalOp] = []
        valid_bytes = 0
        torn = False
        with open(path, "rb") as reader:
            header_line = reader.readline()
            header = _decode_record(header_line)
            if (
                header is None
                or header.get("format") != WAL_FORMAT
                or header.get("version") != WAL_VERSION
            ):
                raise WalError(f"{path!r} is not a live-index write-ahead log")
            epoch = int(header["epoch"])
            valid_bytes = len(header_line)
            for line in reader:
                payload = _decode_record(line)
                if payload is None:
                    torn = True
                    break
                if payload.get("op") not in ("add", "delete"):
                    raise WalError(f"unknown WAL op {payload.get('op')!r} in {path!r}")
                ops.append(
                    WalOp(op=payload["op"], tid=int(payload["tid"]), tree=payload.get("tree"))
                )
                valid_bytes += len(line)
            if torn and reader.read(1):
                # Valid-looking data after the bad record: not a torn tail.
                raise WalError(
                    f"write-ahead log {path!r} is corrupt mid-file "
                    f"(bad checksum at byte {valid_bytes}, more data follows)"
                )
        if torn:
            with open(path, "r+b") as fixer:
                fixer.truncate(valid_bytes)
        handle = open(path, "ab")
        return cls(path, epoch, handle, op_count=len(ops), fsync=fsync), ops

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append(self, payload: dict) -> None:
        self._file.write(_encode_record(payload))
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self.op_count += 1

    def append_add(self, tid: int, penn_text: str) -> None:
        """Durably record the addition of one tree."""
        self._append({"op": "add", "tid": tid, "tree": penn_text})

    def append_delete(self, tid: int) -> None:
        """Durably record the deletion of one tree."""
        self._append({"op": "delete", "tid": tid})

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Current size of the log file in bytes."""
        self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        """Close the log file handle."""
        if self._file is not None:
            self._file.close()
            self._file = None  # type: ignore[assignment]

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
