"""The live index: a mutable subtree index that never blocks reads.

The paper indexes a static treebank; growing the corpus meant rebuilding
from scratch.  :class:`LiveIndex` makes the index mutable with the standard
LSM recipe:

* **immutable base segments** on disk -- each a complete
  :class:`~repro.core.index.SubtreeIndex` + :class:`~repro.corpus.store.TreeStore`
  pair over a disjoint tid range, exactly the shape of a shard;
* an **in-memory delta segment** (:class:`~repro.live.delta.DeltaSegment`)
  holding the trees added since the last compaction, plus a **tombstone set**
  of deleted tids;
* a **write-ahead log** (:class:`~repro.live.wal.WriteAheadLog`): every
  mutation is fsynced to the log before it is applied, so reopening after a
  crash replays the delta exactly -- zero lost, zero duplicated ops;
* an explicit :meth:`compact`: the delta is flushed into a fresh immutable
  segment via the existing builder, base segments containing tombstoned
  trees are rewritten without them, and the epoch-stamped manifest is
  swapped atomically before the WAL is truncated.

Reads present the full ``SubtreeIndex`` read API: a key's posting list is
the tid-ordered k-way merge of the per-segment lists and the delta's
(reusing the merge machinery of :class:`~repro.shard.sharded.ShardedIndex`),
with tombstoned tids filtered out.  Tids are assigned monotonically and
never reused, so segment and delta posting lists stay disjoint and
tid-ascending -- merged results are byte-identical to a fresh rebuild over
the surviving corpus, which ``tests/live/`` asserts over the full WH + FB
workloads for all three codings.

Mutations take a writer lock (one writer at a time); readers are never
blocked and never crash: posting lists are published copy-on-write (a list
a reader holds is a stable snapshot), a visible posting always names a
fetchable tree, and segments replaced by a compaction are retired -- kept
open until :meth:`LiveIndex.close` -- so in-flight queries finish on the
old epoch's files.  A query that *overlaps* a mutation may still observe
it partially (the new tree on some keys, not yet on others); callers
needing strict snapshot isolation should serialise queries with mutations
externally.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from dataclasses import dataclass
from itertools import groupby
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.coding.base import CodingScheme, get_coding
from repro.core.index import IndexMetadata, SubtreeIndex
from repro.core.keys import SubtreeKey, decode_key
from repro.corpus.store import Corpus, TreeStore
from repro.live.delta import DeltaSegment
from repro.live.manifest import (
    LIVE_SUFFIX,
    LiveIndexError,
    LiveManifest,
    SegmentEntry,
    is_live_manifest,
    segment_file_names,
    wal_file_path,
)
from repro.live.wal import WriteAheadLog
from repro.shard.sharded import ShardedIndex
from repro.storage.bptree import ProbeStats, ValueCache
from repro.trees.node import Node, ParseTree
from repro.trees.penn import parse_penn, to_penn


@dataclass
class LiveSegment:
    """One opened base segment: manifest entry, index and data file."""

    segment_id: int
    entry: SegmentEntry
    index: SubtreeIndex
    store: TreeStore


@dataclass
class _DeltaHandle:
    """Adapts the delta to the ``.index`` / ``.store`` shape fan-out expects."""

    index: DeltaSegment
    store: Corpus


@dataclass
class CompactionStats:
    """What one :meth:`LiveIndex.compact` call did."""

    epoch: int
    flushed_trees: int = 0
    purged_tombstones: int = 0
    segments_rewritten: int = 0
    segments_dropped: int = 0
    wal_bytes_truncated: int = 0
    seconds: float = 0.0
    noop: bool = False


class LiveTreeStore:
    """Tid-routed read view over the segments' data files plus the delta.

    Presents the parts of :class:`~repro.corpus.store.TreeStore` the query
    path and the CLI use.  Tombstoned trees are gone: ``get`` raises
    ``KeyError`` for them and iteration skips them.
    """

    def __init__(self, live: "LiveIndex"):
        self._live = live

    def get(self, tid: int) -> ParseTree:
        live = self._live
        if tid not in live._tombstones:
            tree = live._delta.trees.get(tid)
            if tree is not None:
                return tree
            for segment in live.segments:
                if tid in segment.store:
                    return segment.store.get(tid)
        raise KeyError(f"no tree with tid {tid}")

    def get_many(self, tids: Sequence[int]) -> List[ParseTree]:
        return [self.get(tid) for tid in sorted(tids)]

    def __contains__(self, tid: int) -> bool:
        live = self._live
        if tid in live._tombstones:
            return False
        return tid in live._delta.trees or any(tid in s.store for s in live.segments)

    def __len__(self) -> int:
        return self._live.tree_count

    def tids(self) -> List[int]:
        live = self._live
        all_tids: List[int] = []
        for segment in live.segments:
            all_tids.extend(segment.store.tids())
        all_tids.extend(live._delta.tids())
        return sorted(tid for tid in all_tids if tid not in live._tombstones)

    def __iter__(self) -> Iterator[ParseTree]:
        for tid in self.tids():
            yield self.get(tid)


class LiveIndex:
    """A mutable subtree index: base segments + delta + tombstones + WAL."""

    def __init__(
        self,
        manifest_path: str,
        manifest: LiveManifest,
        segments: Sequence[LiveSegment],
        wal: WriteAheadLog,
        fsync: bool = True,
    ):
        self.manifest_path = manifest_path
        self.manifest = manifest
        self.segments: List[LiveSegment] = list(segments)
        self.coding: CodingScheme = get_coding(manifest.coding)
        self._wal = wal
        self._fsync = fsync
        self._delta = DeltaSegment(manifest.mss, self.coding)
        self._delta_corpus = Corpus()
        self._tombstones: Set[int] = set()
        self._next_tid = manifest.next_tid
        self._mutations = 0
        #: Segments replaced/dropped by a compaction, kept open (their files
        #: may already be unlinked) until close() so in-flight readers that
        #: snapshotted segment_handles() finish on the old epoch.
        self._retired: List[LiveSegment] = []
        self._write_lock = threading.Lock()
        self.store = LiveTreeStore(self)
        self._postings_cache: Optional[ValueCache] = None
        self.probe_stats = ProbeStats()

    # ------------------------------------------------------------------
    # Creation and recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        mss: int,
        coding: CodingScheme | str,
        trees: Optional[Sequence[ParseTree]] = None,
        fsync: bool = True,
    ) -> "LiveIndex":
        """Create a live index at *path*, optionally seeded with base *trees*.

        *path* gets the ``.live.json`` suffix when missing.  Seed trees (with
        ascending tids, assigned sequentially when unset) become segment 0;
        without them the index starts empty and grows through
        :meth:`add_tree`.  Returns the index opened for use.
        """
        coding_name = coding if isinstance(coding, str) else coding.name
        get_coding(coding_name)  # validate the name before writing anything
        if mss < 1:
            raise ValueError(f"mss must be at least 1, got {mss}")
        if not path.endswith(LIVE_SUFFIX):
            path = path + LIVE_SUFFIX
        manifest_dir = os.path.dirname(os.path.abspath(path))
        os.makedirs(manifest_dir, exist_ok=True)

        entries: List[SegmentEntry] = []
        next_tid = 0
        next_segment_id = 0
        seed = list(trees) if trees is not None else []
        if seed:
            for position, tree in enumerate(seed):
                if tree.tid < 0:
                    tree.tid = position
            tids = [tree.tid for tree in seed]
            if tids != sorted(set(tids)):
                raise ValueError("seed trees must have strictly ascending unique tids")
            entries.append(
                _build_segment(path, manifest_dir, 0, mss, coding_name, seed, keep_open=False)[0]
            )
            next_tid = tids[-1] + 1
            next_segment_id = 1

        manifest = LiveManifest(
            mss=mss,
            coding=coding_name,
            epoch=0,
            next_tid=next_tid,
            next_segment_id=next_segment_id,
            segments=entries,
        )
        manifest.save_atomic(path)
        WriteAheadLog.create(wal_file_path(path), epoch=0, fsync=fsync).close()
        return cls.open(path, fsync=fsync)

    @classmethod
    def open(cls, path: str, fsync: bool = True) -> "LiveIndex":
        """Open a live index, replaying the write-ahead log into the delta.

        A WAL whose epoch is older than the manifest's is the footprint of a
        crash between a compaction's manifest swap and its log truncation:
        every op in it is already folded into the segments, so it is
        discarded rather than replayed (replaying would duplicate them).
        """
        if not os.path.exists(path):
            raise FileNotFoundError(f"no such live index: {path}")
        manifest = LiveManifest.load(path)
        segments: List[LiveSegment] = []
        try:
            for entry in manifest.segments:
                index_path = manifest.resolve(path, entry.index_path)
                if not os.path.exists(index_path):
                    raise LiveIndexError(
                        f"segment {entry.segment_id} is missing its index file "
                        f"{index_path!r} (listed in {path!r})"
                    )
                try:
                    index = SubtreeIndex.open(index_path)
                except Exception as error:
                    raise LiveIndexError(
                        f"segment {entry.segment_id} is unreadable at "
                        f"{index_path!r}: {error}"
                    ) from error
                if index.mss != manifest.mss or index.coding.name != manifest.coding:
                    index.close()
                    raise LiveIndexError(
                        f"segment {entry.segment_id} at {index_path!r} was built with "
                        f"mss={index.mss} coding={index.coding.name}, but the manifest "
                        f"says mss={manifest.mss} coding={manifest.coding}"
                    )
                data_path = manifest.resolve(path, entry.data_path)
                if not os.path.exists(data_path):
                    index.close()
                    raise LiveIndexError(
                        f"segment {entry.segment_id} is missing its data file {data_path!r}"
                    )
                segments.append(LiveSegment(entry.segment_id, entry, index, TreeStore(data_path)))
        except Exception:
            for segment in segments:
                segment.index.close()
                segment.store.close()
            raise

        wal_path = wal_file_path(path)
        leftover = wal_path + ".next"  # side file of an aborted compaction
        if os.path.exists(leftover):
            os.remove(leftover)
        if os.path.exists(wal_path):
            wal, ops = WriteAheadLog.open(wal_path, fsync=fsync)
            if wal.epoch > manifest.epoch:
                wal.close()
                raise LiveIndexError(
                    f"write-ahead log epoch {wal.epoch} is newer than manifest "
                    f"epoch {manifest.epoch} in {path!r}"
                )
            if wal.epoch < manifest.epoch:  # stale: its ops are already compacted
                wal.close()
                wal = WriteAheadLog.create(wal_path, epoch=manifest.epoch, fsync=fsync)
                ops = []
        else:
            wal = WriteAheadLog.create(wal_path, epoch=manifest.epoch, fsync=fsync)
            ops = []

        live = cls(path, manifest, segments, wal, fsync=fsync)
        for op in ops:
            if op.op == "add":
                tree = ParseTree(parse_penn(op.tree), tid=op.tid)
                live._delta.add_tree(tree)
                live._delta_corpus.add(tree)
                live._next_tid = max(live._next_tid, op.tid + 1)
            else:
                live._tombstones.add(op.tid)
        return live

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_tree(self, tree: ParseTree | Node | str) -> int:
        """Add one tree; returns its assigned tid.

        Accepts a :class:`ParseTree`, a bare root :class:`Node` or a
        Penn-bracket string.  The op is fsynced to the WAL before it is
        applied, so an acknowledged add survives any crash.
        """
        if isinstance(tree, str):
            root = parse_penn(tree)
        elif isinstance(tree, Node):
            root = tree
        else:
            root = tree.root
        with self._write_lock:
            tid = self._next_tid
            added = ParseTree(root, tid=tid)
            with obs.trace("wal.append", op="add", tid=tid):
                self._wal.append_add(tid, to_penn(root))
            # Corpus before postings: any posting a concurrent reader can
            # see must name a tree the filtering phase can fetch.
            self._delta_corpus.add(added)
            self._delta.add_tree(added)
            self._next_tid = tid + 1
            self._bump()
        return tid

    def delete_tree(self, tid: int) -> None:
        """Delete the tree with identifier *tid* (a tombstone until compaction)."""
        with self._write_lock:
            if tid in self._tombstones or (
                tid not in self._delta.trees
                and not any(tid in segment.store for segment in self.segments)
            ):
                raise KeyError(f"no tree with tid {tid}")
            with obs.trace("wal.append", op="delete", tid=tid):
                self._wal.append_delete(tid)
            self._tombstones.add(tid)
            self._bump()

    def _bump(self) -> None:
        """Version bump + posting-cache invalidation after any mutation."""
        self._mutations += 1
        cache = self._postings_cache
        if cache is not None:
            clear = getattr(cache, "clear", None)
            if clear is not None:
                clear()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> CompactionStats:
        """Fold the delta and tombstones into immutable segments.

        Delta trees are flushed into a fresh segment via the existing
        builder; base segments holding tombstoned trees are rewritten
        without them (dropped entirely when nothing survives).  The order of
        durability is: new segment files first, then the epoch-bumped
        manifest in one atomic rename, then the WAL swap, then old-file
        cleanup -- a crash at any point leaves a consistent index (see
        :meth:`open` for how a stale WAL is recognised).
        """
        if not obs.enabled():
            return self._compact_impl()
        with obs.trace("live.compact") as span:
            stats = self._compact_impl()
            span.set(
                epoch=stats.epoch,
                noop=stats.noop,
                flushed_trees=stats.flushed_trees,
                purged_tombstones=stats.purged_tombstones,
            )
            return stats

    def _compact_impl(self) -> CompactionStats:
        started = time.perf_counter()
        with self._write_lock:
            if (
                self._wal.op_count == 0
                and not self._tombstones
                and self._delta.tree_count == 0
            ):
                return CompactionStats(epoch=self.epoch, noop=True)

            manifest_dir = os.path.dirname(os.path.abspath(self.manifest_path))
            new_epoch = self.epoch + 1
            next_segment_id = self.manifest.next_segment_id
            kept: List[LiveSegment] = []
            replaced: List[LiveSegment] = []
            new_segments: List[LiveSegment] = []
            entries: List[SegmentEntry] = []
            obsolete_files: List[str] = []
            rewritten = dropped = 0

            for segment in self.segments:
                dead = {tid for tid in self._tombstones if tid in segment.store}
                if not dead:
                    kept.append(segment)
                    entries.append(segment.entry)
                    continue
                replaced.append(segment)
                obsolete_files.append(self.manifest.resolve(self.manifest_path, segment.entry.index_path))
                obsolete_files.append(self.manifest.resolve(self.manifest_path, segment.entry.data_path))
                survivors = [tree for tree in segment.store if tree.tid not in dead]
                if not survivors:
                    dropped += 1
                    continue
                entry, handle = _build_segment(
                    self.manifest_path, manifest_dir, next_segment_id,
                    self.mss, self.coding.name, survivors,
                )
                next_segment_id += 1
                rewritten += 1
                entries.append(entry)
                new_segments.append(handle)

            flushed = [
                tree for tid, tree in self._delta.trees.items() if tid not in self._tombstones
            ]
            if flushed:
                entry, handle = _build_segment(
                    self.manifest_path, manifest_dir, next_segment_id,
                    self.mss, self.coding.name, flushed,
                )
                next_segment_id += 1
                entries.append(entry)
                new_segments.append(handle)

            manifest = LiveManifest(
                mss=self.mss,
                coding=self.coding.name,
                epoch=new_epoch,
                next_tid=self._next_tid,
                next_segment_id=next_segment_id,
                segments=entries,
            )

            # Durability order: fresh WAL to a side file, manifest swap
            # (the commit point), then the WAL rename.  A crash between the
            # last two leaves a stale-epoch WAL that open() discards.
            wal_path = wal_file_path(self.manifest_path)
            old_wal_bytes = self._wal.size_bytes()
            next_wal = WriteAheadLog.create(wal_path + ".next", new_epoch, fsync=self._fsync)
            manifest.save_atomic(self.manifest_path)
            os.replace(wal_path + ".next", wal_path)
            next_wal.path = wal_path
            self._wal.close()
            self._wal = next_wal

            # Swap the in-memory state over to the new epoch.  Replaced
            # segments are retired, not closed: a reader that snapshotted
            # segment_handles() before the swap keeps valid file handles
            # (the unlinked files stay readable until the handles close).
            self._retired.extend(replaced)
            self.segments = kept + new_segments
            self.segments.sort(key=lambda segment: segment.entry.min_tid)
            purged = len(self._tombstones)
            self._tombstones.clear()
            flushed_count = self._delta.tree_count
            self._delta = DeltaSegment(self.mss, self.coding)
            self._delta_corpus = Corpus()
            self.manifest = manifest
            self._bump()

            for stale in obsolete_files:  # after the swap: best-effort cleanup
                try:
                    os.remove(stale)
                except OSError:
                    pass

            return CompactionStats(
                epoch=new_epoch,
                flushed_trees=flushed_count,
                purged_tombstones=purged,
                segments_rewritten=rewritten,
                segments_dropped=dropped,
                wal_bytes_truncated=old_wal_bytes,
                seconds=time.perf_counter() - started,
            )

    # ------------------------------------------------------------------
    # The SubtreeIndex read API
    # ------------------------------------------------------------------
    _CACHE_MISS = object()

    def lookup(self, key: bytes | str | SubtreeKey | Node) -> List[object]:
        """The live posting list of *key*: segments + delta merged by tid,
        tombstoned trees filtered out.  Accepts the same key forms as
        :meth:`SubtreeIndex.lookup`."""
        self.probe_stats.gets += 1
        encoded = SubtreeIndex._normalise_key(key)
        cache = self._postings_cache
        if cache is not None:
            cached = cache.get(encoded, self._CACHE_MISS)
            if cached is not self._CACHE_MISS:
                self.probe_stats.cache_hits += 1
                return cached  # type: ignore[return-value]
        self.probe_stats.tree_descents += 1
        if obs.enabled():
            with obs.trace("live.merge", sources=len(self.segments) + 1) as span:
                merged = self._merged_lookup(encoded)
                span.set(postings=len(merged))
        else:
            merged = self._merged_lookup(encoded)
        if cache is not None:
            cache.put(encoded, merged)
        return merged

    def _merged_lookup(self, encoded: bytes) -> List[object]:
        per_source = [segment.index.lookup(encoded) for segment in self.segments]
        per_source.append(self._delta.lookup(encoded))
        merged = ShardedIndex._merge_postings(per_source)
        if self._tombstones:
            dead = self._tombstones
            merged = [posting for posting in merged if posting.tid not in dead]
        return merged

    def has_key(self, key: bytes | str | SubtreeKey | Node) -> bool:
        """``True`` when *key* has at least one surviving posting."""
        encoded = SubtreeIndex._normalise_key(key)
        if self._tombstones:
            return bool(self.lookup(encoded))
        return self._delta.has_key(encoded) or any(
            segment.index.has_key(encoded) for segment in self.segments
        )

    def posting_list_length(self, key: bytes | str | SubtreeKey | Node) -> int:
        """Length of the surviving posting list of *key* (0 when absent)."""
        return len(self.lookup(key))

    def items(self) -> Iterator[Tuple[bytes, List[object]]]:
        """Yield ``(key bytes, merged posting list)`` in global key order.

        Tombstoned postings are filtered; keys left with no postings are
        skipped -- the stream is exactly what a fresh rebuild would store.
        """
        streams = [segment.index.items() for segment in self.segments]
        streams.append(self._delta.items())
        merged = heapq.merge(*streams, key=lambda item: item[0])
        dead = self._tombstones
        for key, group in groupby(merged, key=lambda item: item[0]):
            postings = ShardedIndex._merge_postings([plist for _, plist in group])
            if dead:
                postings = [posting for posting in postings if posting.tid not in dead]
            if postings:
                yield key, postings

    def keys(self) -> Iterator[SubtreeKey]:
        """Yield every surviving distinct key as a parsed :class:`SubtreeKey`."""
        for key, _ in self.items():
            yield decode_key(key)

    # ------------------------------------------------------------------
    # Probe accounting and the read-through posting cache
    # ------------------------------------------------------------------
    def reset_probe_stats(self) -> ProbeStats:
        """Zero the lookup counters (segments' included); returns the snapshot."""
        snapshot = self.probe_stats.snapshot()
        self.probe_stats.reset()
        for segment in self.segments:
            segment.index.reset_probe_stats()
        return snapshot

    def attach_postings_cache(self, cache: Optional[ValueCache]) -> None:
        """Install a read-through cache of merged, tombstone-filtered lists.

        Unlike the immutable indexes, the live index *owns* invalidation:
        every mutation and compaction clears the attached cache, so stale
        postings can never be served.
        """
        self._postings_cache = cache

    @property
    def postings_cache(self) -> Optional[ValueCache]:
        """The currently attached posting cache, if any."""
        return self._postings_cache

    # ------------------------------------------------------------------
    # Fan-out support
    # ------------------------------------------------------------------
    def segment_handles(self) -> List[object]:
        """Per-source handles (``.index`` / ``.store``) for fan-out execution.

        Base segments plus, when non-empty, the delta.  All sources hold
        disjoint tids, so per-source join results merge exactly like shard
        results -- the caller filters tombstoned tids from the merged
        matches (see :func:`repro.exec.fanout.merge_shard_results`).
        """
        handles: List[object] = list(self.segments)
        if self._delta.tree_count:
            handles.append(_DeltaHandle(index=self._delta, store=self._delta_corpus))
        return handles

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> Tuple[int, int]:
        """``(epoch, mutation counter)``: changes on every add/delete/compact."""
        return (self.manifest.epoch, self._mutations)

    @property
    def epoch(self) -> int:
        """Manifest generation; bumped by every compaction."""
        return self.manifest.epoch

    @property
    def mss(self) -> int:
        """Maximum subtree size every segment (and the delta) indexes."""
        return self.manifest.mss

    @property
    def tree_count(self) -> int:
        """Number of live (non-tombstoned) trees."""
        return (
            sum(segment.entry.tree_count for segment in self.segments)
            + self._delta.tree_count
            - len(self._tombstones)
        )

    @property
    def key_count(self) -> int:
        """Sum of per-source distinct-key counts (>= the global distinct count)."""
        return sum(s.entry.key_count for s in self.segments) + self._delta.key_count

    @property
    def posting_count(self) -> int:
        """Total stored postings, tombstoned ones included until compaction."""
        return sum(s.entry.posting_count for s in self.segments) + self._delta.posting_count

    @property
    def segment_count(self) -> int:
        """Number of immutable base segments."""
        return len(self.segments)

    @property
    def delta(self) -> DeltaSegment:
        """The in-memory delta segment (read-only access)."""
        return self._delta

    @property
    def tombstones(self) -> frozenset:
        """The deleted tids awaiting compaction."""
        return frozenset(self._tombstones)

    @property
    def wal(self) -> WriteAheadLog:
        """The write-ahead log (for size/op introspection)."""
        return self._wal

    @property
    def metadata(self) -> IndexMetadata:
        """Aggregate metadata in the shape SubtreeIndex consumers expect."""
        return IndexMetadata(
            mss=self.mss,
            coding=self.coding.name,
            tree_count=self.tree_count,
            key_count=self.key_count,
            posting_count=self.posting_count,
            build_seconds=0.0,
        )

    def size_bytes(self) -> int:
        """Total size of the segment index files on disk."""
        return sum(segment.index.size_bytes() for segment in self.segments)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush every segment (the WAL is fsynced per append)."""
        for segment in self.segments:
            segment.index.flush()
            segment.store.flush()

    def close(self) -> None:
        """Close every segment (retired ones included), the WAL, and drop
        the posting cache."""
        if self._postings_cache is not None:
            clear = getattr(self._postings_cache, "clear", None)
            if clear is not None:
                clear()
            self._postings_cache = None
        for segment in self.segments + self._retired:
            segment.index.close()
            segment.store.close()
        self._retired.clear()
        self._wal.close()

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _build_segment(
    manifest_path: str,
    manifest_dir: str,
    segment_id: int,
    mss: int,
    coding_name: str,
    trees: Sequence[ParseTree],
    keep_open: bool = True,
) -> Tuple[SegmentEntry, Optional[LiveSegment]]:
    """Build one immutable segment (index + data file) over *trees*.

    Returns the manifest entry and, with ``keep_open``, the opened handle.
    """
    started = time.perf_counter()
    index_name, data_name = segment_file_names(manifest_path, segment_id)
    index_path = os.path.join(manifest_dir, index_name)
    if os.path.exists(index_path):  # ids are never reused; stale leftovers only
        os.remove(index_path)
    index = SubtreeIndex.build(trees, mss=mss, coding=coding_name, path=index_path)
    store = TreeStore.build(os.path.join(manifest_dir, data_name), trees)
    entry = SegmentEntry(
        segment_id=segment_id,
        index_path=index_name,
        data_path=data_name,
        tree_count=index.metadata.tree_count,
        key_count=index.metadata.key_count,
        posting_count=index.metadata.posting_count,
        build_seconds=time.perf_counter() - started,
        min_tid=trees[0].tid,
        max_tid=trees[-1].tid,
    )
    if not keep_open:
        index.close()
        store.close()
        return entry, None
    return entry, LiveSegment(segment_id, entry, index, store)


def open_live(path: str, fsync: bool = True) -> LiveIndex:
    """Open *path* as a live index (the dispatch target of ``SubtreeIndex.open``)."""
    if not is_live_manifest(path):
        raise LiveIndexError(f"{path!r} is not a live-index manifest")
    return LiveIndex.open(path, fsync=fsync)
