"""The in-memory delta segment: a SubtreeIndex-shaped memtable.

Recently added trees live here until :meth:`repro.live.live.LiveIndex.compact`
flushes them into an immutable on-disk segment.  The delta stores exactly
what a freshly built :class:`~repro.core.index.SubtreeIndex` over the same
trees would store -- per-tree key occurrences run through the *same*
enumeration (:func:`repro.core.enumeration.enumerate_key_occurrences`) and
the *same* coding scheme -- so merging delta postings with base-segment
postings by tid is byte-identical to a full rebuild.

Trees must be added in ascending tid order (the live index assigns
monotonically increasing tids and never reuses one), which keeps every
posting list tid-ascending by construction -- the invariant the k-way merge
and the join operators rely on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.coding.base import CodingScheme
from repro.core.enumeration import enumerate_key_occurrences
from repro.trees.node import ParseTree


class DeltaSegment:
    """An in-memory subtree index over the trees added since the last compaction."""

    def __init__(self, mss: int, coding: CodingScheme):
        self.mss = mss
        self.coding = coding
        #: tid -> tree, in insertion (= ascending tid) order.
        self.trees: Dict[int, ParseTree] = {}
        self._postings: Dict[bytes, List[object]] = {}
        self.posting_count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_tree(self, tree: ParseTree) -> None:
        """Index one tree; its tid must exceed every tid already present.

        Publication is copy-on-write per key: the new posting list is built
        aside and swapped in with one rebind, so a concurrent reader holding
        the list :meth:`lookup` returned sees a stable snapshot -- never a
        half-extended one.  (Readers racing the *whole* add may still see
        the new tree on some keys and not yet on others; see
        :class:`repro.live.live.LiveIndex` for the visibility contract.)
        """
        if tree.tid < 0:
            raise ValueError("delta trees need an assigned tid")
        if self.trees and tree.tid <= next(reversed(self.trees)):
            raise ValueError(
                f"delta tids must be ascending: got {tree.tid} after "
                f"{next(reversed(self.trees))}"
            )
        per_key: Dict[bytes, List] = {}
        for key, occurrence in enumerate_key_occurrences(tree, self.mss):
            per_key.setdefault(key, []).append(occurrence)
        self.trees[tree.tid] = tree  # the tree before its postings: a posting
        # a reader can see must always name a fetchable tree
        for key, occurrences in per_key.items():
            postings = self.coding.postings_from_occurrences(occurrences)
            existing = self._postings.get(key)
            self._postings[key] = postings if existing is None else existing + postings
            self.posting_count += len(postings)

    # ------------------------------------------------------------------
    # The SubtreeIndex-shaped read surface
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> List[object]:
        """The delta's posting list of *key* (empty when absent)."""
        return self._postings.get(key, [])

    def has_key(self, key: bytes) -> bool:
        """``True`` when any delta tree contains *key*."""
        return key in self._postings

    def items(self) -> Iterator[Tuple[bytes, List[object]]]:
        """Yield ``(key bytes, posting list)`` pairs in ascending key order."""
        for key in sorted(self._postings):
            yield key, self._postings[key]

    # ------------------------------------------------------------------
    @property
    def tree_count(self) -> int:
        """Number of trees in the delta (tombstoned ones included)."""
        return len(self.trees)

    @property
    def key_count(self) -> int:
        """Number of distinct keys the delta indexes."""
        return len(self._postings)

    def tids(self) -> List[int]:
        """All delta tids in ascending order."""
        return list(self.trees)

    def clear(self) -> None:
        """Drop every tree and posting (after a compaction flushed them)."""
        self.trees.clear()
        self._postings.clear()
        self.posting_count = 0
