"""In-memory representation of syntactically annotated trees.

A syntactically annotated tree (Definition 1 in the paper) is a rooted,
labelled, ordered tree.  Although query matching treats children as
*unordered*, the data trees themselves carry the surface order of the
sentence, which is preserved for reconstruction and display.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence


class Node:
    """A single node of a parse tree.

    Parameters
    ----------
    label:
        The node label -- a Penn Treebank constituent tag (``NP``, ``VP``),
        a part-of-speech tag (``NN``, ``VBZ``) or a lexical token for leaf
        nodes (``agouti``).
    children:
        The ordered children of the node.  Leaves have no children.
    """

    __slots__ = ("label", "children", "parent")

    def __init__(self, label: str, children: Optional[Sequence["Node"]] = None):
        self.label = label
        self.children: List[Node] = list(children) if children else []
        self.parent: Optional[Node] = None
        for child in self.children:
            child.parent = self

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_child(self, child: "Node") -> "Node":
        """Append *child* to this node's children and return the child."""
        child.parent = self
        self.children.append(child)
        return child

    def copy(self) -> "Node":
        """Return a deep copy of the subtree rooted at this node."""
        return Node(self.label, [child.copy() for child in self.children])

    # ------------------------------------------------------------------
    # Basic structure queries
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """``True`` when the node has no children."""
        return not self.children

    @property
    def degree(self) -> int:
        """Branching factor (number of children) of this node."""
        return len(self.children)

    def size(self) -> int:
        """Number of nodes in the subtree rooted at this node."""
        return 1 + sum(child.size() for child in self.children)

    def height(self) -> int:
        """Height of the subtree rooted at this node (a leaf has height 1)."""
        if not self.children:
            return 1
        return 1 + max(child.height() for child in self.children)

    def depth(self) -> int:
        """Depth of this node from the root (the root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator["Node"]:
        """Yield the nodes of this subtree in pre-order (depth-first)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def postorder(self) -> Iterator["Node"]:
        """Yield the nodes of this subtree in post-order."""
        for child in self.children:
            yield from child.postorder()
        yield self

    def leaves(self) -> Iterator["Node"]:
        """Yield the leaf nodes of this subtree, left to right."""
        for node in self.preorder():
            if node.is_leaf:
                yield node

    def internal_nodes(self) -> Iterator["Node"]:
        """Yield the non-leaf nodes of this subtree in pre-order."""
        for node in self.preorder():
            if not node.is_leaf:
                yield node

    def descendants(self) -> Iterator["Node"]:
        """Yield all proper descendants of this node in pre-order."""
        for child in self.children:
            yield from child.preorder()

    def ancestors(self) -> Iterator["Node"]:
        """Yield the proper ancestors of this node, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # ------------------------------------------------------------------
    # Label utilities
    # ------------------------------------------------------------------
    def labels(self) -> Iterator[str]:
        """Yield the labels of all nodes in this subtree in pre-order."""
        for node in self.preorder():
            yield node.label

    def tokens(self) -> List[str]:
        """Return the surface tokens (leaf labels) of this subtree."""
        return [leaf.label for leaf in self.leaves()]

    def find(self, predicate: Callable[["Node"], bool]) -> Iterator["Node"]:
        """Yield nodes of this subtree satisfying *predicate*, in pre-order."""
        for node in self.preorder():
            if predicate(node):
                yield node

    def find_label(self, label: str) -> Iterator["Node"]:
        """Yield nodes of this subtree whose label equals *label*."""
        return self.find(lambda node: node.label == label)

    # ------------------------------------------------------------------
    # Comparison and representation
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "Node", ordered: bool = True) -> bool:
        """Return ``True`` when two subtrees have identical structure.

        With ``ordered=False`` children are compared as multisets, which is
        the equality notion used for index keys (the paper treats subtrees
        as unordered when they are indexed).
        """
        if self.label != other.label or len(self.children) != len(other.children):
            return False
        if ordered:
            return all(
                a.structurally_equal(b, ordered=True)
                for a, b in zip(self.children, other.children)
            )
        remaining = list(other.children)
        for child in self.children:
            for index, candidate in enumerate(remaining):
                if child.structurally_equal(candidate, ordered=False):
                    del remaining[index]
                    break
            else:
                return False
        return True

    def to_compact_string(self) -> str:
        """Render this subtree in the paper's compact notation, e.g. ``A(B)(C(D))``."""
        if not self.children:
            return self.label
        rendered = "".join(
            "(" + child.to_compact_string() + ")" for child in self.children
        )
        return self.label + rendered

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Node({self.to_compact_string()!r})"


class ParseTree:
    """A syntactically annotated tree with a corpus-level identity.

    Wraps a root :class:`Node` together with the tree identifier (``tid``)
    used throughout the index and posting-list machinery.
    """

    __slots__ = ("tid", "root")

    def __init__(self, root: Node, tid: int = -1):
        self.root = root
        self.tid = tid

    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of nodes in the tree."""
        return self.root.size()

    def height(self) -> int:
        """Height of the tree."""
        return self.root.height()

    def preorder(self) -> Iterator[Node]:
        """Yield nodes in pre-order."""
        return self.root.preorder()

    def leaves(self) -> Iterator[Node]:
        """Yield leaves left to right."""
        return self.root.leaves()

    def tokens(self) -> List[str]:
        """Return the sentence tokens of the tree."""
        return self.root.tokens()

    def labels(self) -> Iterable[str]:
        """Yield labels in pre-order."""
        return self.root.labels()

    def copy(self) -> "ParseTree":
        """Return a deep copy of the tree (same ``tid``)."""
        return ParseTree(self.root.copy(), tid=self.tid)

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ParseTree(tid={self.tid}, root={self.root.to_compact_string()!r})"


def build_tree(spec: object) -> Node:
    """Build a :class:`Node` tree from a nested ``(label, [children])`` spec.

    This is a convenience constructor used pervasively in tests::

        build_tree(("A", [("B", []), ("C", [("D", [])])]))

    Strings are accepted as a shorthand for leaves.
    """
    if isinstance(spec, str):
        return Node(spec)
    if isinstance(spec, Node):
        return spec
    label, children = spec  # type: ignore[misc]
    return Node(str(label), [build_tree(child) for child in children])
