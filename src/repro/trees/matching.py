"""Exact query-tree matching over data trees (Definition 3 of the paper).

This module implements the reference matching semantics used in three places:

* the *filtering phase* of the filter-based coding (post-validation of
  candidate trees),
* the TGrep2-style full-scan baseline, and
* the test suite, where every index executor is checked against this
  implementation on the same corpus and queries.

Queries are *unordered* trees whose edges carry a navigational axis:
``/`` (parent-child) or ``//`` (ancestor-descendant).  To avoid a circular
dependency on :mod:`repro.query`, this module accepts any object following
the minimal protocol below; :class:`repro.query.model.QueryNode` satisfies it.

Protocol
--------
A *query node* must expose:

``label``
    the node label to match (a string),
``children``
    a sequence of query nodes, and
``child_axes``
    a parallel sequence of axis strings, ``"/"`` or ``"//"``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Protocol, Sequence, Tuple, runtime_checkable

from repro.trees.node import Node, ParseTree

AXIS_CHILD = "/"
AXIS_DESCENDANT = "//"


@runtime_checkable
class QueryLike(Protocol):
    """Structural protocol for query-tree nodes (see module docstring)."""

    label: str
    children: Sequence["QueryLike"]
    child_axes: Sequence[str]


def _candidate_nodes(anchor: Node, axis: str) -> Iterator[Node]:
    """Yield the data nodes reachable from *anchor* along *axis*."""
    if axis == AXIS_CHILD:
        yield from anchor.children
    elif axis == AXIS_DESCENDANT:
        yield from anchor.descendants()
    else:  # pragma: no cover - defensive, parser restricts axes
        raise ValueError(f"unknown axis {axis!r}")


def _match_at(query: QueryLike, data: Node) -> bool:
    """``True`` when *query* matches the data tree with its root mapped to *data*.

    Children of the query are unordered (Definition 2): each query child must
    map to a *distinct* data node satisfying its axis, so the search performs
    a small backtracking assignment over candidate sets.
    """
    if query.label != data.label:
        return False
    if not query.children:
        return True

    # Collect candidate lists per query child, cheapest (fewest candidates) first.
    candidate_lists: List[Tuple[QueryLike, List[Node]]] = []
    for child, axis in zip(query.children, query.child_axes):
        candidates = [node for node in _candidate_nodes(data, axis) if _match_at(child, node)]
        if not candidates:
            return False
        candidate_lists.append((child, candidates))
    candidate_lists.sort(key=lambda pair: len(pair[1]))

    used: set[int] = set()

    def assign(position: int) -> bool:
        if position == len(candidate_lists):
            return True
        _, candidates = candidate_lists[position]
        for node in candidates:
            if id(node) in used:
                continue
            used.add(id(node))
            if assign(position + 1):
                return True
            used.remove(id(node))
        return False

    return assign(0)


def find_matches(query: QueryLike, tree: ParseTree | Node) -> List[Node]:
    """Return the data nodes of *tree* at which *query* matches.

    A "match" is identified by the data node onto which the query root maps,
    which is the result granularity used throughout the paper (number of
    matches per query).
    """
    root = tree.root if isinstance(tree, ParseTree) else tree
    return [node for node in root.preorder() if _match_at(query, node)]


def count_matches(query: QueryLike, tree: ParseTree | Node) -> int:
    """Return the number of nodes of *tree* at which *query* matches."""
    return len(find_matches(query, tree))


def tree_matches_query(query: QueryLike, tree: ParseTree | Node) -> bool:
    """``True`` when *query* matches *tree* at least once."""
    root = tree.root if isinstance(tree, ParseTree) else tree
    return any(_match_at(query, node) for node in root.preorder())


def match_corpus(query: QueryLike, trees: Sequence[ParseTree]) -> Dict[int, int]:
    """Match *query* against every tree of a corpus.

    Returns a mapping ``tid -> number of matches`` containing only trees with
    at least one match.  This is the output format the executors are tested
    against.
    """
    results: Dict[int, int] = {}
    for tree in trees:
        count = count_matches(query, tree)
        if count:
            results[tree.tid] = count
    return results
