"""Shape statistics over parse trees and corpora.

Section 4.1 of the paper motivates the subtree index with shape properties of
syntactically annotated trees: a small average branching factor (about 1.5),
very few nodes with branching factor above 10, and a label alphabet that
barely grows with corpus size.  These statistics are computed here both to
validate the synthetic corpus generator against the paper's figures and to
drive the Figure 2 / Figure 3 experiments.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.trees.node import Node, ParseTree


@dataclass
class TreeShapeStats:
    """Aggregate shape statistics over a collection of trees."""

    tree_count: int = 0
    node_count: int = 0
    internal_node_count: int = 0
    leaf_count: int = 0
    max_branching: int = 0
    total_branching: int = 0
    height_sum: int = 0
    label_counts: Counter = field(default_factory=Counter)
    branching_histogram: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    @property
    def avg_branching_factor(self) -> float:
        """Average branching factor over *internal* nodes (paper: ~1.52)."""
        if not self.internal_node_count:
            return 0.0
        return self.total_branching / self.internal_node_count

    @property
    def avg_tree_size(self) -> float:
        """Average number of nodes per tree."""
        if not self.tree_count:
            return 0.0
        return self.node_count / self.tree_count

    @property
    def avg_height(self) -> float:
        """Average tree height."""
        if not self.tree_count:
            return 0.0
        return self.height_sum / self.tree_count

    @property
    def unique_labels(self) -> int:
        """Size of the node-label alphabet seen so far."""
        return len(self.label_counts)

    def nodes_with_branching_above(self, threshold: int) -> int:
        """Number of nodes whose branching factor exceeds *threshold*."""
        return sum(count for degree, count in self.branching_histogram.items() if degree > threshold)

    # ------------------------------------------------------------------
    def add_tree(self, tree: ParseTree | Node) -> None:
        """Fold a single tree into the running statistics."""
        root = tree.root if isinstance(tree, ParseTree) else tree
        self.tree_count += 1
        self.height_sum += root.height()
        for node in root.preorder():
            self.node_count += 1
            self.label_counts[node.label] += 1
            degree = node.degree
            if degree:
                self.internal_node_count += 1
                self.total_branching += degree
                self.max_branching = max(self.max_branching, degree)
                self.branching_histogram[degree] += 1
            else:
                self.leaf_count += 1

    def merge(self, other: "TreeShapeStats") -> "TreeShapeStats":
        """Merge another statistics object into this one and return ``self``."""
        self.tree_count += other.tree_count
        self.node_count += other.node_count
        self.internal_node_count += other.internal_node_count
        self.leaf_count += other.leaf_count
        self.max_branching = max(self.max_branching, other.max_branching)
        self.total_branching += other.total_branching
        self.height_sum += other.height_sum
        self.label_counts.update(other.label_counts)
        self.branching_histogram.update(other.branching_histogram)
        return self

    def label_frequency_classes(
        self,
        high_quantile: float = 0.10,
        low_quantile: float = 0.50,
    ) -> Dict[str, str]:
        """Partition labels into frequency classes ``H``/``M``/``L``.

        The FB query set of Section 6.1 groups query nodes by the frequency
        of their labels.  Labels whose frequency rank falls within the top
        *high_quantile* fraction are classed ``H``, the bottom *low_quantile*
        fraction ``L``, everything in between ``M``.
        """
        if not self.label_counts:
            return {}
        ranked = [label for label, _ in self.label_counts.most_common()]
        total = len(ranked)
        high_cut = max(1, int(total * high_quantile))
        low_cut = max(1, int(total * low_quantile))
        classes: Dict[str, str] = {}
        for rank, label in enumerate(ranked):
            if rank < high_cut:
                classes[label] = "H"
            elif rank >= total - low_cut:
                classes[label] = "L"
            else:
                classes[label] = "M"
        return classes


def tree_stats(tree: ParseTree | Node) -> TreeShapeStats:
    """Compute shape statistics of a single tree."""
    stats = TreeShapeStats()
    stats.add_tree(tree)
    return stats


def corpus_stats(trees: Iterable[ParseTree]) -> TreeShapeStats:
    """Compute aggregate shape statistics over a corpus of trees."""
    stats = TreeShapeStats()
    for tree in trees:
        stats.add_tree(tree)
    return stats


def branching_factor_histogram(trees: Iterable[ParseTree]) -> Dict[int, int]:
    """Histogram of internal-node branching factors over a corpus."""
    stats = corpus_stats(trees)
    return dict(sorted(stats.branching_histogram.items()))


def size_distribution(trees: Sequence[ParseTree]) -> List[int]:
    """Return the list of tree sizes, useful for sanity-checking a corpus."""
    return [tree.size() for tree in trees]
