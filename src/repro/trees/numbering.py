"""Interval numbering of tree nodes.

Section 3 of the paper describes the classic *(node) interval coding* used to
answer containment queries over trees: each node is assigned a pair of
``pre``/``post`` numbers (the pre- and post-visit ranks of a DFS traversal)
together with its ``level``.  Ancestor/descendant and parent/child
relationships reduce to arithmetic comparisons over these numbers:

* ``u`` is an ancestor of ``v``   iff  ``u.pre < v.pre`` and ``u.post > v.post``
* ``u`` is the parent of ``v``    iff  the above and ``u.level == v.level - 1``

The subtree-interval and root-split codings of Section 4.4 reuse the node
numbers computed here; the ``order`` value (pre-order rank *within an indexed
subtree*) is computed separately at key-extraction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.trees.node import Node, ParseTree


@dataclass(frozen=True)
class IntervalCode:
    """The structural numbers assigned to a single tree node."""

    pre: int
    post: int
    level: int

    def is_ancestor_of(self, other: "IntervalCode") -> bool:
        """``True`` when this node is a proper ancestor of *other*."""
        return self.pre < other.pre and self.post > other.post

    def is_descendant_of(self, other: "IntervalCode") -> bool:
        """``True`` when this node is a proper descendant of *other*."""
        return other.is_ancestor_of(self)

    def is_parent_of(self, other: "IntervalCode") -> bool:
        """``True`` when this node is the parent of *other*."""
        return self.is_ancestor_of(other) and self.level == other.level - 1

    def contains(self, other: "IntervalCode") -> bool:
        """``True`` for ancestor-or-self containment."""
        return self.pre <= other.pre and self.post >= other.post


@dataclass(frozen=True)
class NodeRecord:
    """A fully tagged tree node, mirroring the tuple format of Section 6.1.

    ``(treeId, nodeId, parentId, pre, post, level, label)`` -- this is the
    relational representation used by the node-interval (LPath-style)
    baseline and by the data file.
    """

    tid: int
    node_id: int
    parent_id: int
    pre: int
    post: int
    level: int
    label: str

    @property
    def code(self) -> IntervalCode:
        """The interval code of the node."""
        return IntervalCode(self.pre, self.post, self.level)


def number_tree(tree: ParseTree | Node) -> Dict[int, IntervalCode]:
    """Assign interval codes to every node of *tree*.

    Returns a mapping keyed by ``id(node)`` (object identity) so callers can
    annotate arbitrary traversals without mutating the nodes themselves.
    Pre and post ranks start at 1, matching the usual presentation.
    """
    root = tree.root if isinstance(tree, ParseTree) else tree
    codes: Dict[int, IntervalCode] = {}
    pre_counter = 0
    post_counter = 0

    # Iterative DFS carrying the level; emit post numbers on unwind.
    stack: List[Tuple[Node, int, bool]] = [(root, 0, False)]
    pre_of: Dict[int, int] = {}
    level_of: Dict[int, int] = {}
    while stack:
        node, level, visited = stack.pop()
        if visited:
            post_counter += 1
            codes[id(node)] = IntervalCode(pre_of[id(node)], post_counter, level_of[id(node)])
            continue
        pre_counter += 1
        pre_of[id(node)] = pre_counter
        level_of[id(node)] = level
        stack.append((node, level, True))
        for child in reversed(node.children):
            stack.append((child, level + 1, False))
    return codes


def node_records(tree: ParseTree) -> List[NodeRecord]:
    """Produce the relational node records of *tree* (Section 6.1 format).

    Node ids are pre-order ranks (1-based); the root's parent id is 0.
    Records are returned in increasing ``pre`` order, the sort order required
    by merge-based structural joins.
    """
    codes = number_tree(tree)
    records: List[NodeRecord] = []
    node_ids: Dict[int, int] = {}
    for index, node in enumerate(tree.preorder(), start=1):
        node_ids[id(node)] = index
    for node in tree.preorder():
        code = codes[id(node)]
        parent_id = node_ids[id(node.parent)] if node.parent is not None else 0
        records.append(
            NodeRecord(
                tid=tree.tid,
                node_id=node_ids[id(node)],
                parent_id=parent_id,
                pre=code.pre,
                post=code.post,
                level=code.level,
                label=node.label,
            )
        )
    return records


def iter_label_records(trees: Iterator[ParseTree] | List[ParseTree]) -> Iterator[NodeRecord]:
    """Yield node records for every tree of a corpus, in (tid, pre) order."""
    for tree in trees:
        yield from node_records(tree)
