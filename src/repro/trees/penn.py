"""Reading and writing Penn-Treebank style bracketed parse trees.

The corpus layer stores trees as bracketed strings, the same surface syntax
emitted by the Stanford parser and consumed by TGrep2 / CorpusSearch::

    (ROOT (S (NP (DT The) (NN agouti)) (VP (VBZ is) (NP (DT a) (NN rodent)))))

The reader is tolerant of surrounding whitespace and of an optional empty
outermost label ``( (S ...))`` as produced by some parsers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.trees.node import Node, ParseTree


class PennSyntaxError(ValueError):
    """Raised when a bracketed tree string is malformed."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


def _tokenize(text: str) -> Iterator[tuple[str, int]]:
    """Yield ``(token, position)`` pairs for a bracketed tree string."""
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()":
            yield ch, i
            i += 1
            continue
        j = i
        while j < length and not text[j].isspace() and text[j] not in "()":
            j += 1
        yield text[i:j], i
        i = j


def parse_penn(text: str) -> Node:
    """Parse a single bracketed tree string into a :class:`Node` tree.

    Raises
    ------
    PennSyntaxError
        If the string is not a well-formed bracketed tree.
    """
    tokens = list(_tokenize(text))
    if not tokens:
        raise PennSyntaxError("empty input", 0)

    stack: List[Node] = []
    root: Optional[Node] = None
    index = 0
    total = len(tokens)

    while index < total:
        token, pos = tokens[index]
        if token == "(":
            index += 1
            if index >= total:
                raise PennSyntaxError("unexpected end of input after '('", pos)
            label, label_pos = tokens[index]
            if label == ")":
                raise PennSyntaxError("empty constituent '()'", label_pos)
            if label == "(":
                # Anonymous wrapper such as "( (S ...))"; use a ROOT label.
                node = Node("ROOT")
                index -= 1  # re-process the '(' as the first child
            else:
                node = Node(label)
            if stack:
                stack[-1].add_child(node)
            elif root is None:
                root = node
            else:
                raise PennSyntaxError("multiple root constituents", pos)
            stack.append(node)
            index += 1
        elif token == ")":
            if not stack:
                raise PennSyntaxError("unbalanced ')'", pos)
            stack.pop()
            index += 1
        else:
            if not stack:
                raise PennSyntaxError(f"unexpected token {token!r} outside brackets", pos)
            stack[-1].add_child(Node(token))
            index += 1

    if stack:
        raise PennSyntaxError("unbalanced '(': missing closing bracket", len(text))
    if root is None:
        raise PennSyntaxError("no tree found", 0)
    return root


def parse_penn_corpus(lines: Iterable[str], start_tid: int = 0) -> Iterator[ParseTree]:
    """Parse an iterable of bracketed tree strings into :class:`ParseTree` objects.

    Blank lines and lines starting with ``#`` are skipped.  Tree identifiers
    are assigned sequentially starting at *start_tid*.
    """
    tid = start_tid
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield ParseTree(parse_penn(stripped), tid=tid)
        tid += 1


def to_penn(node: Node, pretty: bool = False, _indent: int = 0) -> str:
    """Serialize a tree back into bracketed Penn notation.

    With ``pretty=True`` the output is indented across lines, one constituent
    per line, which is convenient for eyeballing example output.
    """
    if node.is_leaf:
        return node.label
    if not pretty:
        inner = " ".join(to_penn(child, pretty=False) for child in node.children)
        return f"({node.label} {inner})"
    pad = "  " * _indent
    if all(child.is_leaf for child in node.children):
        inner = " ".join(child.label for child in node.children)
        return f"{pad}({node.label} {inner})"
    parts = [f"{pad}({node.label}"]
    for child in node.children:
        if child.is_leaf:
            parts.append("  " * (_indent + 1) + child.label)
        else:
            parts.append(to_penn(child, pretty=True, _indent=_indent + 1))
    parts[-1] += ")"
    return "\n".join(parts)


def tree_to_line(tree: ParseTree) -> str:
    """Serialize a :class:`ParseTree` as a single bracketed line."""
    return to_penn(tree.root, pretty=False)
