"""Tree data model for syntactically annotated (constituency-parsed) trees.

This package provides the substrate every other layer builds on:

* :class:`~repro.trees.node.Node` / :class:`~repro.trees.node.ParseTree` --
  the in-memory representation of a syntactically annotated tree
  (Definition 1 of the paper).
* :mod:`repro.trees.penn` -- reading and writing Penn-Treebank style
  bracketed strings such as ``(S (NP (DT the) (NN agouti)) (VP (VBZ is)))``.
* :mod:`repro.trees.numbering` -- the interval (pre, post, level, order)
  numbering scheme used by the coding layers (Section 3 of the paper).
* :mod:`repro.trees.matching` -- exact tree-query matching semantics
  (Definition 3); used both for validation phases and as a reference
  implementation against which the index executors are tested.
* :mod:`repro.trees.stats` -- shape statistics (branching factors, label
  frequencies, node counts) used by the corpus generator and experiments.
"""

from repro.trees.node import Node, ParseTree
from repro.trees.penn import parse_penn, parse_penn_corpus, to_penn
from repro.trees.numbering import IntervalCode, NodeRecord, number_tree
from repro.trees.matching import count_matches, find_matches, tree_matches_query
from repro.trees.stats import TreeShapeStats, corpus_stats, tree_stats

__all__ = [
    "Node",
    "ParseTree",
    "parse_penn",
    "parse_penn_corpus",
    "to_penn",
    "IntervalCode",
    "NodeRecord",
    "number_tree",
    "tree_matches_query",
    "find_matches",
    "count_matches",
    "TreeShapeStats",
    "tree_stats",
    "corpus_stats",
]
