"""Grouping query results for the Figure 11 and Figure 12 reports.

Figure 11 bins queries by their total number of matches: fewer than 10,
10--100, 100--1k, 1k--10k and more than 10k.  Figure 12 groups queries by
their size (number of query nodes), restricted to queries with at least 100
matches.  Both groupings are provided here so the benchmark harness and the
report printer share one definition.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

#: The match-count bins of Figure 11 as (label, inclusive lower, exclusive upper).
MATCH_BINS: Tuple[Tuple[str, int, float], ...] = (
    ("<10", 0, 10),
    ("10-100", 10, 100),
    ("100-1k", 100, 1_000),
    ("1k-10k", 1_000, 10_000),
    (">10k", 10_000, float("inf")),
)


def bin_for_match_count(match_count: int) -> str:
    """The Figure 11 bin label for a query with *match_count* matches."""
    if match_count < 0:
        raise ValueError("match counts cannot be negative")
    for label, low, high in MATCH_BINS:
        if low <= match_count < high:
            return label
    return MATCH_BINS[-1][0]  # pragma: no cover - unreachable


def group_by_match_bin(
    entries: Iterable[Tuple[int, float]]
) -> Dict[str, List[float]]:
    """Group ``(match_count, runtime)`` pairs into the Figure 11 bins."""
    grouped: Dict[str, List[float]] = defaultdict(list)
    for match_count, runtime in entries:
        grouped[bin_for_match_count(match_count)].append(runtime)
    return dict(grouped)


def group_by_query_size(
    entries: Iterable[Tuple[int, int, float]],
    min_matches: int = 100,
) -> Dict[int, List[float]]:
    """Group ``(query_size, match_count, runtime)`` triples by query size.

    Only queries with at least *min_matches* matches are retained, mirroring
    Figure 12's restriction to queries with 100 or more matches.
    """
    grouped: Dict[int, List[float]] = defaultdict(list)
    for size, match_count, runtime in entries:
        if match_count >= min_matches:
            grouped[size].append(runtime)
    return dict(sorted(grouped.items()))


def average(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence (0.0 for an empty one)."""
    return sum(values) / len(values) if values else 0.0
