"""The WH query set (Section 6.1).

The paper's WH set was built by rewriting 48 AOL questions (12 each of what,
which, where and who) into declarative matching sentences, parsing them and
dropping the lexical leaves, "leaving only the sentence structure".  The AOL
log is not redistributable, so this module ships 48 hand-written structural
templates with the same flavour: declarative answer-sentence skeletons of
varying size and selectivity, 12 per question group, expressed over the same
Penn tag set the corpus generator produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.query.model import QueryTree
from repro.query.parser import parse_query

#: The four question groups of Table 3.
WH_GROUPS = ("who", "what", "where", "which")

#: Structural templates per group.  Each template is a query string in the
#: syntax of :mod:`repro.query.parser`; lexical leaves are already removed.
_TEMPLATES: Dict[str, List[str]] = {
    # "who is X", "who did X" -> person-subject sentence skeletons.
    "who": [
        "S(NP(NNP))(VP(VBZ)(NP))",
        "S(NP(NNP)(NNP))(VP(VBD)(NP(DT)(NN)))",
        "S(NP(NNP))(VP(VBZ)(NP(DT)(NN)))",
        "S(NP(PRP))(VP(VBD)(NP))",
        "S(NP(NNP))(VP(VBD)(NP)(PP(IN)(NP)))",
        "S(NP(DT)(NN))(VP(VBZ)(NP(NNP)))",
        "S(NP(NNP)(NNP))(VP(VBZ)(ADJP(JJ)))",
        "S(NP(NNP))(VP(MD)(VP(VB)(NP)))",
        "S(NP(NNP))(VP(VBZ)(VP(VBN)(PP(IN)(NP))))",
        "S(NP(DT)(NN)(PP(IN)(NP(NNP))))(VP(VBZ)(NP))",
        "S(NP(NNP))(VP(VBD)(SBAR(IN)(S(NP)(VP))))",
        "S(NP)(VP(VBZ)(NP(NP(DT)(NN))(PP(IN)(NP(NNP)))))",
    ],
    # "what is X", "what does X do" -> definitional skeletons like Figure 1.
    "what": [
        "S(NP(NN))(VP(VBZ)(NP(DT)(NN)))",
        "S(NP(NNS))(VP(VBP)(NP))",
        "S(NP(DT)(NN))(VP(VBZ)(NP(DT)(JJ)(NN)))",
        "S(NP(NN))(VP(VBZ)(NP(DT)(NN))(PP(IN)(NP)))",
        "S(NP(NNS))(VP(VBZ)(ADJP(JJ)))",
        "S(NP(DT)(NN))(VP(VBD)(NP(NN)))",
        "S(NP(NN)(NN))(VP(VBZ)(NP))",
        "S(NP(DT)(JJ)(NN))(VP(VBZ)(NP(NN)))",
        "S(NP(NN))(VP(VBZ)(VP(VBN)(PP(IN)(NP(NN)))))",
        "S(NP(DT)(NN))(VP(VBZ)(SBAR(IN)(S(NP)(VP))))",
        "S(NP(NN))(VP(MD)(VP(VB)(NP(DT)(NN))))",
        "S(NP(NP(NN))(PP(IN)(NP)))(VP(VBZ)(NP))",
    ],
    # "where is X" -> locative prepositional-phrase skeletons.
    "where": [
        "S(NP(NNP))(VP(VBZ)(PP(IN)(NP(NNP))))",
        "S(NP(DT)(NN))(VP(VBZ)(PP(IN)(NP(DT)(NN))))",
        "S(NP(NNS))(VP(VBP)(PP(IN)(NP(NNP))))",
        "S(NP(NN))(VP(VBD)(PP(IN)(NP(NNP))))",
        "S(NP(NNP)(NNP))(VP(VBZ)(PP(IN)(NP)))",
        "S(NP(DT)(NNS))(VP(VBP)(PP(IN)(NP(NN))))",
        "S(NP(NN))(VP(VBZ)(NP(DT)(NN))(PP(IN)(NP(NNP))))",
        "S(PP(IN)(NP))(NP(DT)(NN))(VP(VBZ))",
        "S(NP(NNP))(VP(VBD)(NP)(PP(IN)(NP(DT)(NN))))",
        "S(NP(DT)(NN)(PP(IN)(NP)))(VP(VBZ)(PP(IN)(NP)))",
        "S(NP(PRP))(VP(VBD)(PP(IN)(NP(NNP)(NNP))))",
        "S(NP(NN))(VP(VBZ)(PP(TO)(NP)))",
    ],
    # "which X ..." -> skeletons with marked or relative noun phrases.
    "which": [
        "S(NP(DT)(NN))(VP(VBZ)(NP(NN)))",
        "S(NP(DT)(JJ)(NN))(VP(VBD)(NP))",
        "S(NP(NP(DT)(NN))(SBAR(WHNP(WDT))(S(VP))))(VP(VBZ))",
        "S(NP(DT)(NNS))(VP(VBP)(NP(DT)(NN)))",
        "S(NP(DT)(NN))(VP(VBZ)(ADJP(RB)(JJ)))",
        "S(NP(NN))(VP(VBZ)(NP(QP(CD))(NNS)))",
        "S(NP(DT)(NN)(NN))(VP(VBD)(NP))",
        "S(NP(DT)(NN))(VP(VBZ)(NP(NP(NN))(PP(IN)(NP))))",
        "S(NP(JJ)(NNS))(VP(VBP)(PP(IN)(NP)))",
        "S(NP(DT)(NN))(VP(VBD)(SBAR(WHNP(WP))(S(NP)(VP))))",
        "S(NP(NNS))(VP(VBD)(NP(DT)(JJ)(NN)))",
        "S(NP(DT)(NN))(VP(MD)(VP(VB)(PP(IN)(NP))))",
    ],
}


@dataclass(frozen=True)
class WHQuery:
    """One WH query: its group, its template text and the parsed query tree."""

    group: str
    text: str
    query: QueryTree

    @property
    def size(self) -> int:
        """Number of query nodes."""
        return self.query.size()


def generate_wh_queries() -> List[WHQuery]:
    """Return the 48 WH queries (12 per group), parsed and ready to run."""
    queries: List[WHQuery] = []
    for group in WH_GROUPS:
        templates = _TEMPLATES[group]
        if len(templates) != 12:  # pragma: no cover - guarded by tests
            raise AssertionError(f"group {group!r} must have 12 templates, has {len(templates)}")
        for text in templates:
            queries.append(WHQuery(group=group, text=text, query=parse_query(text)))
    return queries


def wh_queries_by_group() -> Dict[str, List[WHQuery]]:
    """The WH queries grouped by question word (the rows of Table 3)."""
    grouped: Dict[str, List[WHQuery]] = {group: [] for group in WH_GROUPS}
    for item in generate_wh_queries():
        grouped[item.group].append(item)
    return grouped
