"""The FB query set (Section 6.1).

The FB queries are subtrees extracted from parse trees that are *not* part of
the indexed corpus, grouped by the frequency class of their node labels:
high (H), medium (M), low (L) and the mixed classes HM, HL, ML and HML.
For each of the seven classes the paper builds 10 subtrees of sizes 1 to 10.

This module reproduces that construction: label frequency classes are
computed from the indexed corpus, candidate subtrees are harvested from a
held-out generated corpus, classified and sampled per (class, size) cell.
Queries with canonically identical sibling subtrees are skipped (see
DESIGN.md) so every engine agrees on the expected results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.query.model import QueryTree, has_duplicate_siblings, query_from_node
from repro.trees.node import Node, ParseTree
from repro.trees.stats import corpus_stats

#: The seven frequency classes of Table 2, in the paper's display order.
FREQUENCY_CLASSES = ("L", "M", "ML", "H", "HL", "HM", "HML")


@dataclass(frozen=True)
class FBQuery:
    """One FB query: frequency class, target size and the query tree."""

    frequency_class: str
    size: int
    query: QueryTree

    @property
    def text(self) -> str:
        """The query rendered in the textual query syntax."""
        return self.query.to_string()


@dataclass
class FBQuerySet:
    """The generated FB workload, indexable by frequency class."""

    queries: List[FBQuery] = field(default_factory=list)

    def by_class(self, frequency_class: str) -> List[FBQuery]:
        """All queries of one frequency class."""
        return [query for query in self.queries if query.frequency_class == frequency_class]

    def by_size(self, size: int) -> List[FBQuery]:
        """All queries of one size."""
        return [query for query in self.queries if query.size == size]

    def classes(self) -> List[str]:
        """Frequency classes present in the set, in canonical order."""
        present = {query.frequency_class for query in self.queries}
        return [name for name in FREQUENCY_CLASSES if name in present]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)


def _classes_of_subtree(node: Node, label_classes: Dict[str, str]) -> Set[str]:
    """The set of frequency classes of the labels of a subtree."""
    return {label_classes.get(label, "L") for label in node.labels()}


def _candidate_subtrees(trees: Iterable[ParseTree], max_size: int) -> List[Node]:
    """All internal-node-rooted subtrees of the held-out trees up to *max_size* nodes."""
    candidates: List[Node] = []
    for tree in trees:
        for node in tree.preorder():
            if 1 <= node.size() <= max_size:
                candidates.append(node)
    return candidates


def generate_fb_queries(
    indexed_trees: Sequence[ParseTree],
    held_out_trees: Sequence[ParseTree],
    max_size: int = 10,
    per_class: int = 10,
    seed: int = 0,
    classes: Sequence[str] = FREQUENCY_CLASSES,
) -> FBQuerySet:
    """Build the FB query set.

    Parameters
    ----------
    indexed_trees:
        The corpus the index is built over; label frequency classes come from
        its label statistics.
    held_out_trees:
        Trees not included in the index; query subtrees are extracted here.
    max_size:
        Largest query size (the paper uses 10).
    per_class:
        Number of queries per frequency class, one per size ``1..per_class``.
    """
    label_classes = corpus_stats(indexed_trees).label_frequency_classes()
    rng = random.Random(seed)

    # Bucket candidate subtrees by (frequency-class signature, size).
    buckets: Dict[Tuple[str, int], List[Node]] = {}
    for node in _candidate_subtrees(held_out_trees, max_size):
        signature = "".join(sorted(_classes_of_subtree(node, label_classes)))
        signature = _canonical_class_name(signature)
        buckets.setdefault((signature, node.size()), []).append(node)

    queries: List[FBQuery] = []
    for frequency_class in classes:
        sizes = list(range(1, per_class + 1))
        for size in sizes:
            node = _pick_candidate(buckets, frequency_class, size, max_size, rng)
            if node is None:
                continue
            query = QueryTree(query_from_node(node))
            queries.append(FBQuery(frequency_class=frequency_class, size=query.size(), query=query))
    return FBQuerySet(queries=queries)


def _canonical_class_name(signature: str) -> str:
    """Normalise a sorted class signature ('HLM') to the paper's names ('HML')."""
    has_h = "H" in signature
    has_m = "M" in signature
    has_l = "L" in signature
    name = ("H" if has_h else "") + ("M" if has_m else "") + ("L" if has_l else "")
    return name


def _pick_candidate(
    buckets: Dict[Tuple[str, int], List[Node]],
    frequency_class: str,
    size: int,
    max_size: int,
    rng: random.Random,
) -> Optional[Node]:
    """Pick a subtree of the requested class, preferring the requested size.

    When no candidate of the exact size exists, nearby sizes are tried so the
    workload still has ``per_class`` queries per class; duplicate-sibling
    subtrees are skipped.
    """
    for candidate_size in sorted(range(1, max_size + 1), key=lambda s: abs(s - size)):
        candidates = buckets.get((frequency_class, candidate_size), [])
        if not candidates:
            continue
        order = list(range(len(candidates)))
        rng.shuffle(order)
        for index in order:
            node = candidates[index]
            if not has_duplicate_siblings(query_from_node(node)):
                return node
    return None
