"""Query workloads used by the evaluation (Section 6.1).

* :mod:`repro.workloads.wh` -- the WH query set: 48 structural queries
  derived from what/which/where/who questions, with lexical leaves removed.
* :mod:`repro.workloads.fb` -- the FB query set: subtrees extracted from
  held-out parse trees, grouped into 7 label-frequency classes
  (H, M, L, HM, HL, ML, HML) with 10 queries of sizes 1--10 per class.
* :mod:`repro.workloads.binning` -- grouping queries by their number of
  matches (the bins of Figure 11) and by query size (Figure 12).
"""

from repro.workloads.binning import MATCH_BINS, bin_for_match_count, group_by_match_bin, group_by_query_size
from repro.workloads.fb import FBQuery, FBQuerySet, FREQUENCY_CLASSES, generate_fb_queries
from repro.workloads.wh import WHQuery, WH_GROUPS, generate_wh_queries

__all__ = [
    "WHQuery",
    "WH_GROUPS",
    "generate_wh_queries",
    "FBQuery",
    "FBQuerySet",
    "FREQUENCY_CLASSES",
    "generate_fb_queries",
    "MATCH_BINS",
    "bin_for_match_count",
    "group_by_match_bin",
    "group_by_query_size",
]
