"""Query executors for the three coding schemes.

Query matching over a subtree index has two phases (Section 4.3): the
*decomposition* phase picks a cover of the query and fetches the posting list
of each cover subtree, and the *join* phase combines those lists.  What the
join phase looks like depends on the coding scheme:

filter-based
    intersect the tid lists, then run the *filtering phase*: fetch every
    candidate tree from the data file and validate it with the exact matcher.

root-split
    decompose with ``minRC`` (root-split covers), join the root codes of the
    cover subtrees with equality / parent-child / ancestor-descendant
    predicates.  No post-validation is needed.

subtree-interval
    decompose with ``optimalCover``; joins may reference any node stored in a
    posting (all of them), again with no post-validation.

The pipeline is exposed as three separable stages -- :func:`decompose_query`,
:func:`fetch_postings` and :func:`join_postings` -- so a serving layer
(:mod:`repro.service`) can cache the output of one stage and batch another.
:class:`QueryExecutor` is the one-shot convenience wrapper that runs all
three for a single query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro import obs
from repro.coding.base import CodingScheme
from repro.coding.filter_based import FilterBasedCoding
from repro.coding.root_split import RootSplitCoding
from repro.coding.subtree_interval import SubtreeIntervalCoding, SubtreePosting
from repro.core.index import SubtreeIndex
from repro.corpus.store import Corpus, TreeStore
from repro.exec.joins import (
    BindingRow,
    deduplicate_rows,
    intersect_sorted_tid_lists,
    merge_join_bindings,
)
from repro.exec.plan import JoinPlan, build_plan
from repro.query.covers import Cover
from repro.query.decompose import decompose
from repro.query.model import QueryTree
from repro.trees.matching import count_matches


@dataclass
class ExecutionStats:
    """Counters describing how a query was evaluated."""

    coding: str = ""
    strategy: str = ""
    cover_size: int = 0
    join_count: int = 0
    postings_fetched: int = 0
    candidates_filtered: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class QueryResult:
    """The outcome of evaluating one query."""

    matches_per_tree: Dict[int, int] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def total_matches(self) -> int:
        """Total number of matches across all trees."""
        return sum(self.matches_per_tree.values())

    @property
    def matched_tids(self) -> List[int]:
        """Sorted tree identifiers with at least one match."""
        return sorted(self.matches_per_tree)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return self.matches_per_tree == other.matches_per_tree


# ----------------------------------------------------------------------
# Stage 1: decomposition
# ----------------------------------------------------------------------
def default_strategy(coding: CodingScheme) -> str:
    """The paper's cover strategy for *coding*: ``minRC`` for root-split."""
    return "min-rc" if isinstance(coding, RootSplitCoding) else "optimal"


def decompose_query(
    query: QueryTree,
    mss: int,
    strategy: str,
    pad: bool = True,
) -> Cover:
    """Stage 1: pick a cover of *query* (Section 5.2's decomposition phase)."""
    if not obs.enabled():
        return decompose(query, mss, strategy=strategy, pad=pad)
    with obs.trace("decompose", strategy=strategy, mss=mss) as span:
        cover = decompose(query, mss, strategy=strategy, pad=pad)
        span.set(cover_size=len(cover), join_count=cover.join_count)
        return cover


# ----------------------------------------------------------------------
# Stage 2: posting fetch
# ----------------------------------------------------------------------
#: A fetch function maps a canonical cover key to its decoded posting list.
PostingFetcher = Callable[[bytes], List[object]]


def fetch_postings(
    cover: Cover,
    fetch: PostingFetcher,
) -> List[List[object]]:
    """Stage 2: fetch the posting list of each cover subtree.

    *fetch* is any key -> postings function: a bare ``index.lookup``, a
    caching wrapper, or a batch-local memo built by
    :meth:`repro.service.QueryService.run_many`.
    """
    if not obs.enabled():
        return [fetch(subtree.key_bytes()) for subtree in cover.subtrees]
    with obs.trace("fetch_postings", keys=len(cover.subtrees)) as span:
        postings: List[List[object]] = []
        total = 0
        for subtree in cover.subtrees:
            key = subtree.key_bytes()
            with obs.trace("fetch_key", key=key.decode("utf-8", "replace")) as key_span:
                plist = fetch(key)
                key_span.set(postings=len(plist))
            total += len(plist)
            postings.append(plist)
        span.set(postings=total)
        return postings


# ----------------------------------------------------------------------
# Stage 3: joins (and the filter-based filtering phase)
# ----------------------------------------------------------------------
def join_postings(
    query: QueryTree,
    cover: Cover,
    postings: Sequence[Sequence[object]],
    coding: CodingScheme,
    store: Optional[TreeStore | Corpus] = None,
    stats: Optional[ExecutionStats] = None,
) -> QueryResult:
    """Stage 3: combine the cover's posting lists into the final matches.

    Dispatches on the coding scheme: tid intersection plus the filtering
    phase for filter-based coding, structural merge joins otherwise.  When a
    *stats* object is passed it receives the join-phase counters
    (``candidates_filtered``).
    """
    stats = stats if stats is not None else ExecutionStats()
    if not obs.enabled():
        return _dispatch_join(query, cover, postings, coding, store, stats)
    with obs.trace("join", coding=coding.name, cover=len(cover.subtrees)) as span:
        result = _dispatch_join(query, cover, postings, coding, store, stats)
        span.set(matches=result.total_matches)
        return result


def _dispatch_join(
    query: QueryTree,
    cover: Cover,
    postings: Sequence[Sequence[object]],
    coding: CodingScheme,
    store: Optional[TreeStore | Corpus],
    stats: ExecutionStats,
) -> QueryResult:
    if isinstance(coding, FilterBasedCoding):
        return _join_filter_based(query, cover, postings, store, stats)
    if isinstance(coding, (RootSplitCoding, SubtreeIntervalCoding)):
        return _join_structural(query, cover, postings, coding)
    raise TypeError(f"unsupported coding scheme {type(coding).__name__}")


def _join_filter_based(
    query: QueryTree,
    cover: Cover,
    postings: Sequence[Sequence[object]],
    store: Optional[TreeStore | Corpus],
    stats: ExecutionStats,
) -> QueryResult:
    """Filter-based coding: intersect tid lists, then validate candidates."""
    if store is None:
        raise RuntimeError(
            "filter-based execution needs a data file (TreeStore) or Corpus "
            "to run its filtering phase; pass `store=` to QueryExecutor"
        )
    tid_lists = [[posting.tid for posting in plist] for plist in postings]
    candidates = intersect_sorted_tid_lists(tid_lists)
    stats.candidates_filtered = len(candidates)

    matches: Dict[int, int] = {}
    with obs.trace("filter", candidates=len(candidates)) as span:
        for tid in candidates:
            tree = store.get(tid)
            count = count_matches(query.root, tree)
            if count:
                matches[tid] = count
        span.set(matched_trees=len(matches))
    return QueryResult(matches_per_tree=matches)


def _join_structural(
    query: QueryTree,
    cover: Cover,
    postings: Sequence[Sequence[object]],
    coding: CodingScheme,
) -> QueryResult:
    """Root-split / subtree-interval codings: structural merge joins."""
    if len(cover.subtrees) == 1:
        # Single-subtree cover: the key already encodes the whole query, so
        # the matches are simply the distinct roots of its postings.  This
        # skips the binding/join machinery for the very common case of
        # small queries at larger mss (and of single-label queries).
        only = list(postings[0])
        root_pre_of = (
            (lambda posting: posting.root.pre)
            if only and isinstance(only[0], SubtreePosting)
            else (lambda posting: posting.pre)
        )
        per_tree: Dict[int, set] = {}
        for posting in only:
            per_tree.setdefault(posting.tid, set()).add(root_pre_of(posting))
        return QueryResult(
            matches_per_tree={tid: len(pres) for tid, pres in per_tree.items()}
        )
    plan = build_plan(query, cover, postings, coding)
    rows = run_plan(plan)
    return QueryResult(matches_per_tree=count_root_matches(query, rows))


def run_plan(plan: JoinPlan) -> List[BindingRow]:
    """Execute the plan's left-deep join order and return the joined rows."""
    if not plan.relations:
        return []
    if any(relation.cardinality == 0 for relation in plan.relations):
        return []

    order = plan.order or list(range(len(plan.relations)))
    first = plan.relations[order[0]]
    rows: List[BindingRow] = list(first.rows)
    bound: Set[int] = set(first.bound_nodes)

    for index in order[1:]:
        relation = plan.relations[index]
        predicates = plan.predicates_between(bound, relation.bound_nodes)

        def compatible(left, right, _predicates=predicates) -> bool:
            for predicate in _predicates:
                ancestor = left.get(predicate.ancestor_node) or right.get(predicate.ancestor_node)
                descendant = (
                    right.get(predicate.descendant_node)
                    if predicate.descendant_node in right
                    else left.get(predicate.descendant_node)
                )
                if predicate.kind == "equal":
                    ancestor = left.get(predicate.ancestor_node)
                    descendant = right.get(predicate.descendant_node)
                if ancestor is None or descendant is None:
                    continue
                if not predicate.holds(ancestor, descendant):
                    return False
            return True

        rows = merge_join_bindings(rows, relation.rows, compatible)
        if not rows:
            return []
        bound |= relation.bound_nodes
        rows = deduplicate_rows(rows)
    return rows


def count_root_matches(query: QueryTree, rows: Sequence[BindingRow]) -> Dict[int, int]:
    """Count distinct query-root bindings per tree (the paper's match count)."""
    root_id = query.root.node_id
    per_tree: Dict[int, Set[int]] = {}
    for tid, binding in rows:
        code = binding.get(root_id)
        if code is None:  # pragma: no cover - the query root is always bound
            continue
        per_tree.setdefault(tid, set()).add(code.pre)
    return {tid: len(pres) for tid, pres in per_tree.items()}


# ----------------------------------------------------------------------
# One-shot wrapper
# ----------------------------------------------------------------------
class QueryExecutor:
    """Evaluates tree queries against a :class:`~repro.core.index.SubtreeIndex`.

    Runs all three pipeline stages per call, without caching; use
    :class:`repro.service.QueryService` to serve repeated or concurrent
    queries.

    Parameters
    ----------
    index:
        The subtree index to query.
    store:
        The corpus data file (or an in-memory :class:`~repro.corpus.store.Corpus`).
        Required for the filter-based coding, whose filtering phase re-reads
        candidate trees; optional otherwise.
    strategy:
        Cover strategy override; defaults to ``"min-rc"`` for root-split
        coding and ``"optimal"`` for the other codings.
    pad:
        Whether decomposition pads cover subtrees towards ``mss`` (max-covers).
    """

    def __init__(
        self,
        index: SubtreeIndex,
        store: Optional[TreeStore | Corpus] = None,
        strategy: Optional[str] = None,
        pad: bool = True,
    ):
        self.index = index
        self.store = store
        self.pad = pad
        self.strategy = strategy if strategy is not None else default_strategy(index.coding)

    # ------------------------------------------------------------------
    def decompose(self, query: QueryTree) -> Cover:
        """Compute the cover this executor would use for *query*."""
        return decompose_query(query, self.index.mss, self.strategy, pad=self.pad)

    def execute(self, query: QueryTree) -> QueryResult:
        """Evaluate *query* and return its matches and execution statistics."""
        if not obs.enabled():
            return self._execute(query)
        with obs.trace("query", engine="executor", coding=self.index.coding.name) as span:
            result = self._execute(query)
            span.set(matches=result.total_matches)
            return result

    def _execute(self, query: QueryTree) -> QueryResult:
        started = time.perf_counter()
        cover = self.decompose(query)
        postings = fetch_postings(cover, self.index.lookup)

        stats = ExecutionStats(
            coding=self.index.coding.name,
            strategy=self.strategy,
            cover_size=len(cover),
            join_count=cover.join_count,
            postings_fetched=sum(len(plist) for plist in postings),
        )
        result = join_postings(
            query, cover, postings, self.index.coding, store=self.store, stats=stats
        )
        stats.elapsed_seconds = time.perf_counter() - started
        result.stats = stats
        return result
