"""Fan-out query execution over a sharded index.

The merged-lookup path (:meth:`repro.shard.sharded.ShardedIndex.lookup`)
globalises posting lists *before* the join, so one join processes the whole
corpus.  Fan-out inverts that: stage 1 (decomposition) runs once globally --
every shard shares the index's ``mss`` and coding, so the cover is the same
everywhere -- and stages 2 and 3 (fetch + join) run *per shard* over that
shard's much smaller posting lists, on a thread pool.  Per-shard results
have disjoint tree ids, so the global answer is a cheap merge of the final
match dictionaries in ascending tid order; the per-posting k-way merge never
happens.

:func:`execute_on_shards` is the shared machinery; it is parameterised by a
``fetch`` function so :class:`repro.service.sharded.ShardedQueryService` can
route fetches through per-shard caches and batch memos.
:class:`FanoutExecutor` is the uncached one-shot wrapper, the sharded
counterpart of :class:`~repro.exec.executor.QueryExecutor`.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import AbstractSet, Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.coding.base import CodingScheme
from repro.exec.executor import (
    ExecutionStats,
    QueryResult,
    decompose_query,
    default_strategy,
    join_postings,
)
from repro.query.covers import Cover
from repro.query.model import QueryTree

#: Fetches one key's postings *within one shard*: ``(shard, key) -> postings``.
ShardFetcher = Callable[[object, bytes], List[object]]


def make_fanout_pool(
    shard_count: int,
    max_threads: Optional[int] = None,
    thread_name_prefix: str = "fanout",
) -> Optional[ThreadPoolExecutor]:
    """A thread pool sized for per-shard fan-out, or ``None`` when inline
    execution suffices (a single shard, or a width of 1).

    The default width is the shard count capped at 16; both
    :class:`FanoutExecutor` and the sharded service size their pools here so
    the policy cannot diverge.
    """
    width = max_threads if max_threads is not None else min(shard_count, 16)
    if shard_count > 1 and width > 1:
        return ThreadPoolExecutor(max_workers=width, thread_name_prefix=thread_name_prefix)
    return None


def finish_stats(
    stats: ExecutionStats,
    coding: CodingScheme,
    strategy: str,
    started: float,
) -> ExecutionStats:
    """Stamp the plan/timing fields a fan-out execution shares with its caller."""
    stats.coding = coding.name
    stats.strategy = strategy
    stats.elapsed_seconds = time.perf_counter() - started
    return stats


def merge_shard_results(
    results: Sequence[QueryResult],
    exclude_tids: Optional[AbstractSet[int]] = None,
) -> QueryResult:
    """Merge per-shard results into one, ascending in tree id.

    Shards partition the corpus by tid, so the per-shard match dictionaries
    are disjoint; merging is concatenation plus a sort of the (tid, count)
    pairs.  The merged dictionary's insertion order is the global tid order,
    matching what a single-shard execution produces.

    *exclude_tids* drops matches in the named trees -- the live index passes
    its tombstone set here, since a query match lives entirely inside one
    tree and deletes are whole-tree, so filtering merged results is exactly
    equivalent to filtering every posting list up front.
    """
    pairs: List[Tuple[int, int]] = []
    for result in results:
        pairs.extend(result.matches_per_tree.items())
    if exclude_tids:
        pairs = [(tid, count) for tid, count in pairs if tid not in exclude_tids]
    pairs.sort()
    return QueryResult(matches_per_tree=dict(pairs))


def _default_fetch(shard: object, key: bytes) -> List[object]:
    return shard.index.lookup(key)


def _shard_label(shard: object) -> object:
    """A stable display label: shard id, segment id, or ``delta``."""
    shard_id = getattr(shard, "shard_id", None)
    if shard_id is not None:
        return shard_id
    segment_id = getattr(shard, "segment_id", None)
    if segment_id is not None:
        return f"segment-{segment_id}"
    return "delta"


def execute_on_shards(
    query: QueryTree,
    cover: Cover,
    key_bytes: Sequence[bytes],
    shards: Sequence[object],
    coding: CodingScheme,
    pool: Optional[ThreadPoolExecutor] = None,
    fetch: Optional[ShardFetcher] = None,
    exclude_tids: Optional[AbstractSet[int]] = None,
) -> Tuple[QueryResult, ExecutionStats]:
    """Run stages 2+3 on every shard and merge the results.

    *shards* are :class:`~repro.shard.sharded.ShardHandle` objects (anything
    with ``.index`` and ``.store`` works -- live-index segments and the
    delta included).  *fetch* defaults to the shard index's own ``lookup``.
    *exclude_tids* filters the merged matches (tombstoned trees).  Returns
    the merged result plus an :class:`ExecutionStats` carrying the summed
    fetch/filter counters; the caller fills in the timing and plan fields.
    """
    fetcher = fetch if fetch is not None else _default_fetch

    with obs.trace("fanout", shards=len(shards)) as fanout_span:
        # The pool's worker threads do not inherit context variables, so the
        # fan-out span is passed to each per-shard child span explicitly.
        parent = fanout_span if fanout_span is not obs.NOOP_SPAN else None

        def run_shard(shard: object) -> Tuple[QueryResult, int, int]:
            with obs.trace("shard", parent=parent, shard=_shard_label(shard)) as span:
                postings = [fetcher(shard, key) for key in key_bytes]
                stats = ExecutionStats()
                result = join_postings(
                    query, cover, postings, coding, store=shard.store, stats=stats
                )
                fetched = sum(len(plist) for plist in postings)
                span.set(postings=fetched, matches=result.total_matches)
                return result, fetched, stats.candidates_filtered

        if pool is not None and len(shards) > 1:
            per_shard = list(pool.map(run_shard, shards))
        else:
            per_shard = [run_shard(shard) for shard in shards]

        totals = ExecutionStats(
            cover_size=len(cover),
            join_count=cover.join_count,
            postings_fetched=sum(fetched for _, fetched, _ in per_shard),
            candidates_filtered=sum(filtered for _, _, filtered in per_shard),
        )
        with obs.trace("merge_results"):
            merged = merge_shard_results(
                [result for result, _, _ in per_shard], exclude_tids=exclude_tids
            )
        fanout_span.set(matches=merged.total_matches)
    return merged, totals


class FanoutExecutor:
    """Uncached per-shard execution over a :class:`ShardedIndex`.

    Decomposes once, fans stages 2+3 out to a thread pool sized to the shard
    count, and merges.  The sharded analogue of
    :class:`~repro.exec.executor.QueryExecutor`; for cached serving use
    :class:`repro.service.sharded.ShardedQueryService`.

    Parameters
    ----------
    sharded:
        An open :class:`~repro.shard.sharded.ShardedIndex`.
    strategy / pad:
        Decomposition knobs, as on ``QueryExecutor``.
    max_threads:
        Pool width; defaults to the shard count (capped at 16).  A single
        shard runs inline with no pool.
    """

    def __init__(
        self,
        sharded,
        strategy: Optional[str] = None,
        pad: bool = True,
        max_threads: Optional[int] = None,
    ):
        self.sharded = sharded
        self.pad = pad
        self.strategy = strategy if strategy is not None else default_strategy(sharded.coding)
        self._pool = make_fanout_pool(sharded.shard_count, max_threads)

    # ------------------------------------------------------------------
    def decompose(self, query: QueryTree) -> Cover:
        """The (global) cover this executor uses for *query*."""
        return decompose_query(query, self.sharded.mss, self.strategy, pad=self.pad)

    def execute(self, query: QueryTree) -> QueryResult:
        """Evaluate *query* across all shards and return the merged result."""
        started = time.perf_counter()
        cover = self.decompose(query)
        keys = [subtree.key_bytes() for subtree in cover.subtrees]
        result, stats = execute_on_shards(
            query, cover, keys, self.sharded.shards, self.sharded.coding, pool=self._pool
        )
        result.stats = finish_stats(stats, self.sharded.coding, self.strategy, started)
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the thread pool down (the index stays open)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "FanoutExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
