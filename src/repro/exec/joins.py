"""Structural merge joins over posting lists.

The subtree index stores posting lists sorted by tree identifier, so every
join in the system is a merge join on ``tid`` followed by the evaluation of
structural predicates within each tree -- the shape of the
Multi-Predicate MerGe JoiN (MPMGJN) the paper adopts off the shelf
(Section 2).  Three entry points are provided:

* :func:`intersect_sorted_tid_lists` -- k-way intersection of plain tid
  lists (the whole join phase of the filter-based coding);
* :func:`merge_join_bindings` -- merge join between two binding relations
  (intermediate query results) under arbitrary structural predicates;
* :func:`mpmg_join_codes` -- the classic node-level MPMGJN between two
  ``(tid, IntervalCode)`` streams, used by the LPath-style node-index
  baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.trees.numbering import IntervalCode

#: A binding maps query-node ids to the interval code bound for that node.
Binding = Dict[int, IntervalCode]
#: A binding row couples a tree id with a binding.
BindingRow = Tuple[int, Binding]
#: A predicate decides whether two bindings of the same tree are compatible.
BindingPredicate = Callable[[Binding, Binding], bool]


# ----------------------------------------------------------------------
# Plain tid-list intersection (filter-based coding)
# ----------------------------------------------------------------------
def intersect_sorted_tid_lists(lists: Sequence[Sequence[int]]) -> List[int]:
    """Intersect several ascending tid lists.

    The shortest list drives the intersection; the others are probed with a
    galloping merge.  Returns an ascending list of tids present in all lists.
    """
    if not lists:
        return []
    if any(len(single) == 0 for single in lists):
        return []
    ordered = sorted(lists, key=len)
    result = list(ordered[0])
    for other in ordered[1:]:
        result = _intersect_two(result, other)
        if not result:
            return []
    return result


def _intersect_two(left: Sequence[int], right: Sequence[int]) -> List[int]:
    out: List[int] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i], right[j]
        if a == b:
            out.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return out


# ----------------------------------------------------------------------
# Binding-relation merge join (root-split and subtree-interval codings)
# ----------------------------------------------------------------------
def group_rows_by_tid(rows: Iterable[BindingRow]) -> Iterator[Tuple[int, List[Binding]]]:
    """Group an ascending-by-tid row stream into ``(tid, bindings)`` batches."""
    current_tid: int | None = None
    batch: List[Binding] = []
    for tid, binding in rows:
        if current_tid is None or tid != current_tid:
            if current_tid is not None and batch:
                yield current_tid, batch
            current_tid = tid
            batch = []
        batch.append(binding)
    if current_tid is not None and batch:
        yield current_tid, batch


def merge_join_bindings(
    left: Sequence[BindingRow],
    right: Sequence[BindingRow],
    predicate: BindingPredicate,
) -> List[BindingRow]:
    """Merge join two binding relations sorted by tid.

    For every tree id present on both sides, all binding pairs satisfying
    *predicate* are merged into a single binding (right-hand values win ties,
    but predicates are expected to enforce equality on shared nodes).
    """
    left_groups = list(group_rows_by_tid(left))
    right_groups = list(group_rows_by_tid(right))
    out: List[BindingRow] = []
    i = j = 0
    while i < len(left_groups) and j < len(right_groups):
        left_tid, left_batch = left_groups[i]
        right_tid, right_batch = right_groups[j]
        if left_tid == right_tid:
            for left_binding in left_batch:
                for right_binding in right_batch:
                    if predicate(left_binding, right_binding):
                        merged = dict(left_binding)
                        merged.update(right_binding)
                        out.append((left_tid, merged))
            i += 1
            j += 1
        elif left_tid < right_tid:
            i += 1
        else:
            j += 1
    return out


def deduplicate_rows(rows: Sequence[BindingRow]) -> List[BindingRow]:
    """Drop binding rows that bind exactly the same codes for the same tree."""
    seen = set()
    out: List[BindingRow] = []
    for tid, binding in rows:
        fingerprint = (tid, tuple(sorted((node, code.pre) for node, code in binding.items())))
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        out.append((tid, binding))
    return out


# ----------------------------------------------------------------------
# Node-level MPMGJN (LPath-style baseline)
# ----------------------------------------------------------------------
CodeRow = Tuple[int, IntervalCode]


def mpmg_join_codes(
    ancestors: Sequence[CodeRow],
    descendants: Sequence[CodeRow],
    axis: str,
) -> List[Tuple[int, IntervalCode, IntervalCode]]:
    """Multi-predicate merge join between two node-code lists.

    Both inputs must be sorted by ``(tid, pre)``.  Returns all
    ``(tid, ancestor_code, descendant_code)`` triples where the ancestor
    contains the descendant; with ``axis == '/'`` the containment is
    restricted to direct parent-child (level difference of one).

    This is the textbook MPMGJN of Zhang et al. that the paper's node-index
    baseline (and our LPath-style baseline) is built on.
    """
    out: List[Tuple[int, IntervalCode, IntervalCode]] = []
    parent_only = axis == "/"
    i = 0
    for tid, descendant in descendants:
        # Advance the ancestor cursor past trees smaller than this one.
        while i < len(ancestors) and ancestors[i][0] < tid:
            i += 1
        j = i
        while j < len(ancestors) and ancestors[j][0] == tid and ancestors[j][1].pre < descendant.pre:
            ancestor = ancestors[j][1]
            if ancestor.is_ancestor_of(descendant):
                if not parent_only or ancestor.level == descendant.level - 1:
                    out.append((tid, ancestor, descendant))
            j += 1
    return out
