"""Query execution over the subtree index.

* :mod:`repro.exec.joins` -- structural merge joins: the MPMGJN-style
  tid-merge join used between cover-subtree posting lists, and plain sorted
  tid-list intersection for the filter-based coding.
* :mod:`repro.exec.plan` -- join planning: binding maps, join predicates
  derived from the query and the cover, and a greedy connected join order.
* :mod:`repro.exec.executor` -- the per-coding query executors, including the
  filtering (post-validation) phase of the filter-based coding, plus the
  result/statistics containers.
"""

from repro.exec.executor import ExecutionStats, QueryExecutor, QueryResult
from repro.exec.joins import intersect_sorted_tid_lists, merge_join_bindings
from repro.exec.plan import JoinPlan, build_plan

__all__ = [
    "QueryExecutor",
    "QueryResult",
    "ExecutionStats",
    "JoinPlan",
    "build_plan",
    "merge_join_bindings",
    "intersect_sorted_tid_lists",
]
