"""Query execution over the subtree index.

* :mod:`repro.exec.joins` -- structural merge joins: the MPMGJN-style
  tid-merge join used between cover-subtree posting lists, and plain sorted
  tid-list intersection for the filter-based coding.
* :mod:`repro.exec.plan` -- join planning: binding maps, join predicates
  derived from the query and the cover, and a greedy connected join order.
* :mod:`repro.exec.executor` -- the pipeline stages (``decompose_query``,
  ``fetch_postings``, ``join_postings``), the one-shot ``QueryExecutor``
  wrapper around them (including the filtering phase of the filter-based
  coding) and the result/statistics containers.  The stages are separable so
  :mod:`repro.service` can cache and batch them independently.
* :mod:`repro.exec.fanout` -- per-shard execution over a
  :class:`~repro.shard.sharded.ShardedIndex`: decompose once, fetch + join
  on every shard in parallel, merge results in global tid order
  (``FanoutExecutor`` and the shared ``execute_on_shards`` machinery).
"""

from repro.exec.fanout import FanoutExecutor, execute_on_shards, merge_shard_results
from repro.exec.executor import (
    ExecutionStats,
    QueryExecutor,
    QueryResult,
    decompose_query,
    default_strategy,
    fetch_postings,
    join_postings,
)
from repro.exec.joins import intersect_sorted_tid_lists, merge_join_bindings
from repro.exec.plan import JoinPlan, build_plan

__all__ = [
    "QueryExecutor",
    "QueryResult",
    "ExecutionStats",
    "decompose_query",
    "default_strategy",
    "fetch_postings",
    "join_postings",
    "JoinPlan",
    "build_plan",
    "merge_join_bindings",
    "intersect_sorted_tid_lists",
    "FanoutExecutor",
    "execute_on_shards",
    "merge_shard_results",
]
