"""Join planning: predicates, binding relations and join order.

Given a query, a cover and the postings fetched for each cover subtree, the
planner produces a *join plan*:

* a binding relation per cover subtree (which query nodes each posting binds,
  and to which interval codes);
* the set of structural predicates connecting those relations -- equality on
  shared query nodes and the parent-child / ancestor-descendant conditions of
  query edges whose endpoints live in different relations;
* a left-deep join order that starts from the smallest relation and always
  joins a relation connected to what has been joined so far (Section 5.1:
  plans are left-deep trees over the cover's posting-list streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.coding.base import CodingScheme
from repro.coding.filter_based import FilterPosting
from repro.coding.root_split import RootPosting
from repro.coding.subtree_interval import SubtreePosting
from repro.exec.joins import Binding, BindingRow
from repro.query.covers import Cover, CoverSubtree
from repro.query.model import QueryTree
from repro.trees.matching import AXIS_CHILD
from repro.trees.numbering import IntervalCode


@dataclass(frozen=True)
class JoinPredicate:
    """A structural condition between two bound query nodes.

    ``kind`` is one of ``"equal"`` (same query node bound by two relations),
    ``"child"`` (ancestor node must be the parent of the descendant node) or
    ``"descendant"`` (ancestor must properly contain the descendant).
    """

    kind: str
    ancestor_node: int
    descendant_node: int

    def holds(self, ancestor: IntervalCode, descendant: IntervalCode) -> bool:
        """Evaluate the predicate over two interval codes."""
        if self.kind == "equal":
            return ancestor.pre == descendant.pre
        if self.kind == "child":
            return ancestor.is_ancestor_of(descendant) and ancestor.level == descendant.level - 1
        if self.kind == "descendant":
            return ancestor.is_ancestor_of(descendant)
        raise ValueError(f"unknown predicate kind {self.kind!r}")  # pragma: no cover


@dataclass
class Relation:
    """The binding relation of one cover subtree."""

    subtree: CoverSubtree
    key: bytes
    bound_nodes: Set[int]
    rows: List[BindingRow]

    @property
    def cardinality(self) -> int:
        """Number of rows (postings) in the relation."""
        return len(self.rows)


@dataclass
class JoinPlan:
    """A fully planned query: relations, predicates and a join order."""

    query: QueryTree
    cover: Cover
    relations: List[Relation]
    predicates: List[JoinPredicate]
    order: List[int] = field(default_factory=list)

    @property
    def join_count(self) -> int:
        """Number of pairwise joins a left-deep execution performs."""
        return max(0, len(self.relations) - 1)

    def predicates_between(self, bound: Set[int], incoming: Set[int]) -> List[JoinPredicate]:
        """Predicates whose endpoints straddle the already-bound and incoming node sets."""
        out: List[JoinPredicate] = []
        for predicate in self.predicates:
            a, d = predicate.ancestor_node, predicate.descendant_node
            if predicate.kind == "equal":
                if a in bound and a in incoming:
                    out.append(predicate)
            elif (a in bound and d in incoming) or (d in bound and a in incoming):
                out.append(predicate)
        return out


# ----------------------------------------------------------------------
# Building binding relations from postings
# ----------------------------------------------------------------------
def _rows_for_subtree(
    subtree: CoverSubtree, postings: Sequence[object], coding: CodingScheme
) -> Tuple[Set[int], List[BindingRow]]:
    """Convert a cover subtree's postings into binding rows for its bound nodes."""
    key, positions = subtree.key()
    rows: List[BindingRow] = []

    if not postings:
        return set(), rows

    sample = postings[0]
    if isinstance(sample, RootPosting):
        bound = {subtree.root.node_id}
        root_id = subtree.root.node_id
        for posting in postings:
            rows.append((posting.tid, {root_id: posting.code}))
        return bound, rows

    if isinstance(sample, SubtreePosting):
        bound = set(positions)
        for posting in postings:
            binding: Binding = {
                node_id: posting.nodes[position].code
                for node_id, position in positions.items()
            }
            rows.append((posting.tid, binding))
        return bound, rows

    if isinstance(sample, FilterPosting):
        # Filter-based postings bind no structural information at all.
        for posting in postings:
            rows.append((posting.tid, {}))
        return set(), rows

    raise TypeError(f"unsupported posting type {type(sample).__name__}")


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def _build_predicates(query: QueryTree, relations: Sequence[Relation]) -> List[JoinPredicate]:
    """Derive the equality and edge predicates needed to stitch the relations."""
    predicates: List[JoinPredicate] = []

    # Equality on query nodes bound by more than one relation.
    bound_by: Dict[int, int] = {}
    shared: Set[int] = set()
    for relation in relations:
        for node_id in relation.bound_nodes:
            if node_id in bound_by:
                shared.add(node_id)
            bound_by[node_id] = bound_by.get(node_id, 0) + 1
    for node_id in sorted(shared):
        predicates.append(JoinPredicate("equal", node_id, node_id))

    # Structural predicates for every query edge whose endpoints are both
    # bound somewhere.  Edges living entirely inside one cover subtree are
    # already enforced by that subtree's key; the predicate is still listed
    # because it is a necessary condition of the query and evaluating it at a
    # join step can only discard rows that no full embedding could produce.
    all_bound: Set[int] = set()
    for relation in relations:
        all_bound |= relation.bound_nodes
    for parent, child, axis in query.edges():
        if parent.node_id not in all_bound or child.node_id not in all_bound:
            continue
        kind = "child" if axis == AXIS_CHILD else "descendant"
        predicates.append(JoinPredicate(kind, parent.node_id, child.node_id))
    return predicates


# ----------------------------------------------------------------------
# Join order
# ----------------------------------------------------------------------
def _choose_order(relations: Sequence[Relation], predicates: Sequence[JoinPredicate]) -> List[int]:
    """Greedy left-deep order: smallest relation first, stay connected, smallest next."""
    if not relations:
        return []
    remaining = set(range(len(relations)))
    order: List[int] = []
    bound_nodes: Set[int] = set()

    def connected(index: int) -> bool:
        nodes = relations[index].bound_nodes
        if not bound_nodes:
            return True
        if bound_nodes & nodes:
            return True
        for predicate in predicates:
            a, d = predicate.ancestor_node, predicate.descendant_node
            if predicate.kind == "equal":
                if a in bound_nodes and a in nodes:
                    return True
            elif (a in bound_nodes and d in nodes) or (d in bound_nodes and a in nodes):
                return True
        return False

    first = min(remaining, key=lambda index: relations[index].cardinality)
    order.append(first)
    remaining.remove(first)
    bound_nodes |= relations[first].bound_nodes

    while remaining:
        candidates = [index for index in remaining if connected(index)] or list(remaining)
        chosen = min(candidates, key=lambda index: relations[index].cardinality)
        order.append(chosen)
        remaining.remove(chosen)
        bound_nodes |= relations[chosen].bound_nodes
    return order


# ----------------------------------------------------------------------
def build_plan(
    query: QueryTree,
    cover: Cover,
    postings_per_subtree: Sequence[Sequence[object]],
    coding: CodingScheme,
) -> JoinPlan:
    """Assemble a :class:`JoinPlan` from fetched posting lists."""
    relations: List[Relation] = []
    for subtree, postings in zip(cover.subtrees, postings_per_subtree):
        bound, rows = _rows_for_subtree(subtree, list(postings), coding)
        relations.append(
            Relation(subtree=subtree, key=subtree.key_bytes(), bound_nodes=bound, rows=rows)
        )
    predicates = _build_predicates(query, relations)
    order = _choose_order(relations, predicates)
    return JoinPlan(query=query, cover=cover, relations=relations, predicates=predicates, order=order)
