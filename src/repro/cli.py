"""Command-line interface for the subtree index.

Ten subcommands cover the everyday workflow:

``generate``
    sample a synthetic treebank and write it as bracketed Penn lines;
``build``
    build a subtree index (and the data file) over a Penn corpus file --
    optionally sharded (``--shards N``) with parallel worker processes, or
    mutable (``--live``: base segment + write-ahead log);
``query``
    evaluate one or more queries against a built index (plain, sharded or
    live); ``--explain`` prints the cover plan and per-stage posting counts
    without running the join;
``add`` / ``delete`` / ``compact``
    mutate a live index: append trees from a Penn file, tombstone trees by
    tid, and fold the delta + tombstones into immutable segments;
``stats``
    print metadata and key statistics of a built index (``--json`` for a
    machine-readable dump, including per-shard / per-segment breakdowns and
    the live index's delta/WAL sizes);
``bench``
    list and run the registered experiments (text table + machine-readable
    ``BENCH_<experiment>.json`` per run) and gate a result directory
    against a baseline run (``--gate``; exits 1 on regression);
``serve``
    serve a built index (plain, sharded or live) over HTTP: ``/query``,
    ``/query/batch`` (micro-batched), ``/stats``, ``/healthz`` and a
    Prometheus ``/metrics`` endpoint;
``loadtest``
    drive a closed-loop load test of the WH workload against an index --
    self-served on an ephemeral port, or a server started elsewhere
    (``--url``) -- verifying every response against the in-process ground
    truth and writing a schema-valid ``BENCH_serve_http_throughput.json``.

Example session::

    python -m repro.cli generate --sentences 1000 --out corpus.penn
    python -m repro.cli build corpus.penn --mss 3 --coding root-split --out corpus.si
    python -m repro.cli build corpus.penn --shards 4 --workers 4 --out big.si
    python -m repro.cli build corpus.penn --live --out corpus.si
    python -m repro.cli query corpus.si "NP(DT)(NN)" "S(NP)(VP(VBZ))"
    python -m repro.cli query big.si.manifest.json "NP(DT)(NN)"
    python -m repro.cli query corpus.si "NP(DT)(NN)" --repeat 50 --cache-stats
    python -m repro.cli query corpus.si "NP(DT)" "NP(DT)(NN)" --batch
    python -m repro.cli query corpus.si "S(NP)(VP)" --explain
    python -m repro.cli add corpus.si.live.json more.penn
    python -m repro.cli delete corpus.si.live.json 17 42
    python -m repro.cli compact corpus.si.live.json
    python -m repro.cli stats corpus.si --json
    python -m repro.cli serve corpus.si --port 8321
    python -m repro.cli loadtest corpus.si --concurrency 1 4 --duration 2 --out results/
    python -m repro.cli loadtest corpus.si --url http://127.0.0.1:8321
    python -m repro.cli bench list
    python -m repro.cli bench run figure8_index_size --out results/ --scale 0.5
    python -m repro.cli bench --gate baseline/ --current results/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro import obs
from repro.coding.base import coding_names
from repro.core.index import SubtreeIndex
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus, TreeStore, data_file_path
from repro.live import LiveIndex, LiveIndexError, WalError, is_live_manifest
from repro.service.service import QueryService
from repro.shard import ShardedIndex, ShardError, partitioner_names
from repro.storage.bptree import BPlusTreeError
from repro.storage.pager import PageError

#: Exceptions any "open an index/service" step may raise, mapped to exit 2.
_OPEN_ERRORS = (OSError, ValueError, ShardError, LiveIndexError, WalError, BPlusTreeError, PageError)


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a synthetic corpus of parse trees."""
    generator = CorpusGenerator(seed=args.seed)
    corpus = Corpus(generator.generate(args.sentences))
    corpus.save(args.out)
    print(f"wrote {len(corpus)} parse trees ({corpus.total_nodes():,} nodes) to {args.out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Build a (possibly sharded) subtree index over a Penn corpus file."""
    if args.mss < 1:
        print(f"error: --mss must be at least 1, got {args.mss}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be at least 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be at least 1, got {args.workers}", file=sys.stderr)
        return 2
    if not os.path.isfile(args.corpus):
        print(f"error: corpus file not found: {args.corpus!r}", file=sys.stderr)
        return 2
    if args.live and args.shards > 1:
        print("error: --live and --shards cannot be combined", file=sys.stderr)
        return 2
    if args.shards == 1 and not args.live and (
        args.workers is not None or args.partitioner is not None
    ):
        print(
            "warning: --workers/--partitioner only apply to sharded builds; "
            "pass --shards N (> 1) for a parallel build",
            file=sys.stderr,
        )
    corpus = Corpus.load(args.corpus)

    if args.live:
        index = LiveIndex.create(args.out, mss=args.mss, coding=args.coding, trees=list(corpus))
        print(
            f"built live {args.coding} index over {len(corpus)} trees: "
            f"{index.key_count:,} keys, {index.posting_count:,} postings, "
            f"{index.size_bytes():,} bytes, epoch {index.epoch}"
        )
        print(f"manifest: {index.manifest_path}")
        index.close()
        return 0

    if args.shards > 1:
        index = ShardedIndex.build(
            corpus,
            mss=args.mss,
            coding=args.coding,
            path=args.out,
            shards=args.shards,
            workers=args.workers,
            partitioner=args.partitioner or "hash",
        )
        manifest = index.manifest
        print(
            f"built {args.coding} index over {len(corpus)} trees in "
            f"{manifest.shard_count} shards ({manifest.partitioner} partitioner): "
            f"{index.key_count:,} keys, {index.posting_count:,} postings, "
            f"{index.size_bytes():,} bytes, {manifest.build_wall_seconds:.2f}s wall"
        )
        print(f"manifest: {index.manifest_path}")
        index.close()
        return 0

    index = SubtreeIndex.build(corpus, mss=args.mss, coding=args.coding, path=args.out)
    TreeStore.build(data_file_path(args.out), corpus).close()
    print(
        f"built {args.coding} index over {len(corpus)} trees: "
        f"{index.key_count:,} keys, {index.posting_count:,} postings, "
        f"{index.size_bytes():,} bytes, {index.metadata.build_seconds:.2f}s"
    )
    index.close()
    return 0


def _print_result(args: argparse.Namespace, text: str, result, extra: str = "") -> None:
    print(
        f"{text}: {result.total_matches} matches in {len(result.matches_per_tree)} trees "
        f"({result.stats.elapsed_seconds * 1000:.1f} ms, cover={result.stats.cover_size}, "
        f"joins={result.stats.join_count}{extra})"
    )
    if args.show_tids:
        print("  tids:", ", ".join(str(tid) for tid in result.matched_tids[: args.limit]))


def _explain_query(service: QueryService, text: str) -> None:
    """Print the cover plan and per-stage posting counts of one query.

    Runs stages 1 (decomposition) and 2 (posting fetch, for the counts) but
    never stage 3 -- no joins, no filtering phase.
    """
    prepared = service.prepare(text)
    cover = prepared.cover
    index = service.index
    print(f"{text}:")
    print(
        f"  plan: strategy={service.strategy}, mss={index.mss}, "
        f"coding={index.coding.name}"
    )
    print(f"  cover: {len(cover)} subtree(s), {cover.join_count} join(s)")
    total = 0
    for key in prepared.key_bytes:
        count = index.posting_list_length(key)
        total += count
        print(f"    {key.decode('utf-8'):<40s} {count:,} postings")
    print(f"  fetch total: {total:,} postings (join phase not executed)")


def cmd_query(args: argparse.Namespace) -> int:
    """Run queries against a built index through the query service."""
    if args.batch and args.repeat > 1:
        print("error: --batch and --repeat cannot be combined", file=sys.stderr)
        return 2
    if args.explain and (args.batch or args.repeat > 1):
        print("error: --explain cannot be combined with --batch/--repeat", file=sys.stderr)
        return 2
    if args.trace and args.explain:
        print("error: --trace cannot be combined with --explain "
              "(--explain does not execute the query)", file=sys.stderr)
        return 2
    try:
        # With --repeat the point is to measure the plan+posting caches, so
        # disable the result cache; otherwise every repeat after the first
        # would be a ~free result-cache hit and "warm" would mean "hot".
        service = QueryService.open(
            args.index, result_cache_size=0 if args.repeat > 1 else 1024
        )
    except _OPEN_ERRORS as error:
        print(f"error: cannot open index {args.index!r}: {error}", file=sys.stderr)
        return 2

    status = 0
    valid: List[str] = []
    for text in args.queries:
        try:
            service.prepare(text)
        except ValueError as error:
            print(f"error: cannot parse query {text!r}: {error}", file=sys.stderr)
            status = 2
        else:
            valid.append(text)

    tracer: Optional[obs.Tracer] = None
    if args.trace:
        tracer = obs.enable(obs.Tracer())

    def print_last_trace() -> None:
        if tracer is None:
            return
        for record in tracer.last(1):
            print(obs.format_trace(record))

    try:
        if args.explain:
            for text in valid:
                _explain_query(service, text)
        elif args.batch:
            # One batch: distinct cover keys are fetched from the index once.
            # Per-query ms covers each join only; the shared prepare+fetch
            # work is reported in the batch total line below.
            batch_started = time.perf_counter()
            results = service.run_many(valid)
            batch_ms = (time.perf_counter() - batch_started) * 1000
            for text, result in zip(valid, results):
                _print_result(args, text, result)
            print(f"batch: {len(valid)} queries in {batch_ms:.1f} ms total")
            print_last_trace()
        else:
            for text in valid:
                result = service.run(text)
                if args.repeat > 1:
                    cold_ms = result.stats.elapsed_seconds * 1000
                    warm_started = time.perf_counter()
                    for _ in range(args.repeat - 1):
                        result = service.run(text)
                    warm_ms = (time.perf_counter() - warm_started) * 1000 / (args.repeat - 1)
                    extra = f", cold={cold_ms:.1f} ms, warm avg={warm_ms:.2f} ms x{args.repeat - 1}"
                    _print_result(args, text, result, extra)
                else:
                    _print_result(args, text, result)
                # The most recent execution's span tree (with --repeat,
                # that is the final warm run).
                print_last_trace()
        if args.cache_stats:
            stats = service.stats()
            print(
                f"cache: plans {stats.plans.hits}/{stats.plans.lookups} hits, "
                f"postings {stats.postings.hits}/{stats.postings.lookups} hits, "
                f"index probes {stats.probes.gets} "
                f"({stats.probes.tree_descents} tree descents)"
            )
    except RuntimeError as error:
        # e.g. filter-based coding without its .data file next to the index
        print(f"error: {error}", file=sys.stderr)
        status = 2
    finally:
        if tracer is not None:
            obs.disable()
        service.close()
    return status


# ----------------------------------------------------------------------
# Live-index mutation commands
# ----------------------------------------------------------------------
def _open_live(path: str) -> Optional[LiveIndex]:
    """Open *path* as a live index; prints a friendly error and returns None."""
    try:
        if not is_live_manifest(path):
            raise LiveIndexError(
                f"{path!r} is not a live index (build one with 'build --live')"
            )
        return LiveIndex.open(path)
    except _OPEN_ERRORS as error:
        print(f"error: cannot open live index {path!r}: {error}", file=sys.stderr)
        return None


def cmd_add(args: argparse.Namespace) -> int:
    """Append trees from a Penn-bracket file to a live index."""
    if not os.path.isfile(args.corpus):
        print(f"error: corpus file not found: {args.corpus!r}", file=sys.stderr)
        return 2
    live = _open_live(args.index)
    if live is None:
        return 2
    try:
        try:
            corpus = Corpus.load(args.corpus)
        except (OSError, ValueError) as error:  # e.g. a malformed Penn line
            print(f"error: cannot read corpus {args.corpus!r}: {error}", file=sys.stderr)
            return 2
        tids = [live.add_tree(tree.root) for tree in corpus]
        if tids:
            print(
                f"added {len(tids)} trees (tids {tids[0]}..{tids[-1]}): "
                f"delta {live.delta.tree_count} trees / "
                f"{live.delta.posting_count:,} postings, "
                f"wal {live.wal.op_count} ops / {live.wal.size_bytes():,} bytes"
            )
        else:
            print(f"no trees in {args.corpus!r}; nothing added")
    finally:
        live.close()
    return 0


def cmd_delete(args: argparse.Namespace) -> int:
    """Tombstone trees of a live index by tid."""
    live = _open_live(args.index)
    if live is None:
        return 2
    status = 0
    deleted = 0
    try:
        for tid in args.tids:
            try:
                live.delete_tree(tid)
            except KeyError:
                print(f"error: no tree with tid {tid}", file=sys.stderr)
                status = 2
            else:
                deleted += 1
        print(
            f"deleted {deleted} of {len(args.tids)} trees: "
            f"{len(live.tombstones)} tombstones pending compaction, "
            f"{live.tree_count:,} trees live"
        )
    finally:
        live.close()
    return status


def cmd_compact(args: argparse.Namespace) -> int:
    """Fold a live index's delta and tombstones into immutable segments."""
    live = _open_live(args.index)
    if live is None:
        return 2
    try:
        stats = live.compact()
        if stats.noop:
            print(f"nothing to compact (epoch stays {stats.epoch})")
        else:
            print(
                f"compacted to epoch {stats.epoch} in {stats.seconds:.2f}s: "
                f"flushed {stats.flushed_trees} delta trees, "
                f"purged {stats.purged_tombstones} tombstones, "
                f"rewrote {stats.segments_rewritten} and dropped "
                f"{stats.segments_dropped} segment(s), "
                f"truncated {stats.wal_bytes_truncated:,} WAL bytes"
            )
            print(f"segments now: {live.segment_count}, trees: {live.tree_count:,}")
    finally:
        live.close()
    return 0


def _stats_payload(path: str, index) -> dict:
    """The machine-readable metadata of *index* (plain or sharded)."""
    meta = index.metadata
    payload = {
        "index": path,
        "coding": meta.coding,
        "mss": meta.mss,
        "tree_count": meta.tree_count,
        "key_count": meta.key_count,
        "posting_count": meta.posting_count,
        "size_bytes": index.size_bytes(),
        "build_seconds": meta.build_seconds,
        "sharded": isinstance(index, ShardedIndex),
        "live": isinstance(index, LiveIndex),
        # A key indexed by k shards/segments counts k times in that index's
        # key_count; "distinct" means the global unique-subtree count.
        "key_count_semantics": (
            "per-shard-sum"
            if isinstance(index, ShardedIndex)
            else "per-source-sum" if isinstance(index, LiveIndex) else "distinct"
        ),
    }
    if isinstance(index, LiveIndex):
        payload["epoch"] = index.epoch
        payload["segment_count"] = index.segment_count
        payload["segments"] = [
            {
                "segment_id": segment.segment_id,
                "index_path": segment.entry.index_path,
                "tree_count": segment.entry.tree_count,
                "key_count": segment.entry.key_count,
                "posting_count": segment.entry.posting_count,
                "size_bytes": segment.index.size_bytes(),
                "min_tid": segment.entry.min_tid,
                "max_tid": segment.entry.max_tid,
            }
            for segment in index.segments
        ]
        payload["delta"] = {
            "tree_count": index.delta.tree_count,
            "key_count": index.delta.key_count,
            "posting_count": index.delta.posting_count,
        }
        payload["tombstones"] = len(index.tombstones)
        payload["wal"] = {
            "ops": index.wal.op_count,
            "size_bytes": index.wal.size_bytes(),
            "epoch": index.wal.epoch,
        }
    if isinstance(index, ShardedIndex):
        manifest = index.manifest
        payload["partitioner"] = manifest.partitioner
        payload["shard_count"] = manifest.shard_count
        payload["shards"] = [
            {
                "shard_id": shard.shard_id,
                "index_path": shard.entry.index_path,
                "tree_count": shard.entry.tree_count,
                "key_count": shard.entry.key_count,
                "posting_count": shard.entry.posting_count,
                "size_bytes": shard.index.size_bytes(),
                "build_seconds": shard.entry.build_seconds,
            }
            for shard in index.shards
        ]
    return payload


def cmd_stats(args: argparse.Namespace) -> int:
    """Print metadata and the largest posting lists of an index."""
    try:
        index = SubtreeIndex.open(args.index)  # dispatches to Sharded/LiveIndex
    except _OPEN_ERRORS as error:
        print(f"error: cannot open index {args.index!r}: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(_stats_payload(args.index, index), indent=2))
        index.close()
        return 0

    meta = index.metadata
    sharded = isinstance(index, ShardedIndex)
    live = isinstance(index, LiveIndex)
    print(f"index file      : {args.index}")
    if live:
        print(f"kind            : live (epoch {index.epoch})")
    print(f"coding          : {meta.coding}")
    print(f"mss             : {meta.mss}")
    print(f"trees indexed   : {meta.tree_count:,}")
    if sharded:
        # A key indexed by several shards counts once per shard.
        print(f"keys (shard sum): {meta.key_count:,}")
    elif live:
        print(f"keys (src sum)  : {meta.key_count:,}")
    else:
        print(f"unique keys     : {meta.key_count:,}")
    print(f"total postings  : {meta.posting_count:,}")
    print(f"size on disk    : {index.size_bytes():,} bytes")
    if not live:
        print(f"build time      : {meta.build_seconds:.2f} s")
    if live:
        print(f"segments        : {index.segment_count}")
        print("  id   trees    keys      postings   bytes        tids")
        for segment in index.segments:
            entry = segment.entry
            print(
                f"  {segment.segment_id:<4d} {entry.tree_count:<8,} {entry.key_count:<9,} "
                f"{entry.posting_count:<10,} {segment.index.size_bytes():<12,} "
                f"{entry.min_tid}-{entry.max_tid}"
            )
        print(
            f"delta           : {index.delta.tree_count} trees, "
            f"{index.delta.key_count:,} keys, {index.delta.posting_count:,} postings"
        )
        print(f"tombstones      : {len(index.tombstones)}")
        print(f"wal             : {index.wal.op_count} ops, {index.wal.size_bytes():,} bytes")
    if sharded:
        manifest = index.manifest
        print(f"shards          : {manifest.shard_count} ({manifest.partitioner} partitioner)")
        print("  id  trees    keys      postings   bytes        build s")
        for shard in index.shards:
            entry = shard.entry
            print(
                f"  {shard.shard_id:<3d} {entry.tree_count:<8,} {entry.key_count:<9,} "
                f"{entry.posting_count:<10,} {shard.index.size_bytes():<12,} "
                f"{entry.build_seconds:.2f}"
            )
    if args.top:
        ranked = sorted(
            ((len(postings), key) for key, postings in index.items()), reverse=True
        )[: args.top]
        print(f"top {args.top} keys by posting-list length:")
        for length, key in ranked:
            print(f"  {key.decode('utf-8'):40s} {length:,}")
    index.close()
    return 0


# ----------------------------------------------------------------------
# HTTP serving and load testing
# ----------------------------------------------------------------------
def _validate_serve_knobs(args: argparse.Namespace) -> Optional[str]:
    """The first invalid server knob as an error message, or None."""
    if not 0 <= args.port <= 65535:
        return f"--port must be in 0..65535 (0 = ephemeral), got {args.port}"
    if args.flush_window < 0:
        return f"--flush-window must be >= 0, got {args.flush_window}"
    if args.max_batch < 1:
        return f"--max-batch must be at least 1, got {args.max_batch}"
    if args.workers < 1:
        return f"--workers must be at least 1, got {args.workers}"
    if args.header_timeout <= 0:
        return f"--header-timeout must be positive, got {args.header_timeout}"
    if args.request_timeout <= 0:
        return f"--request-timeout must be positive, got {args.request_timeout}"
    if args.write_timeout <= 0:
        return f"--write-timeout must be positive, got {args.write_timeout}"
    if args.max_connections < 1:
        return f"--max-connections must be at least 1, got {args.max_connections}"
    if args.max_queue < 1:
        return f"--max-queue must be at least 1, got {args.max_queue}"
    if args.drain_timeout < 0:
        return f"--drain-timeout must be >= 0, got {args.drain_timeout}"
    return None


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve an index over HTTP until interrupted, then drain gracefully."""
    import asyncio
    import signal

    from repro.serve.server import ENDPOINTS, QueryServer, service_flavor

    problem = _validate_serve_knobs(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    try:
        service = QueryService.open(args.index)
    except _OPEN_ERRORS as error:
        print(f"error: cannot open index {args.index!r}: {error}", file=sys.stderr)
        return 2

    server = QueryServer(
        service,
        host=args.host,
        port=args.port,
        flush_window=args.flush_window,
        max_batch=args.max_batch,
        max_workers=args.workers,
        header_timeout=args.header_timeout,
        request_timeout=args.request_timeout,
        write_timeout=args.write_timeout,
        max_connections=args.max_connections,
        max_queue=args.max_queue,
        drain_timeout=args.drain_timeout,
        index_path=args.index,
        trace=args.trace,
        trace_log=args.trace_log,
        slow_ms=args.slow_ms,
    )

    async def _serve() -> None:
        await server.start()
        print(f"serving {service_flavor(service)} index {args.index!r} on {server.url}", flush=True)
        print(f"endpoints: {', '.join(ENDPOINTS)} (SIGTERM/ctrl-c drains and exits)", flush=True)
        if server.trace:
            detail = f" -> {args.trace_log}" if args.trace_log else ""
            slow = f", slow-query threshold {args.slow_ms} ms" if args.slow_ms is not None else ""
            print(f"tracing: enabled{detail}{slow}")
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except NotImplementedError:  # pragma: no cover - non-Unix event loops
                pass
        if not installed:  # pragma: no cover - non-Unix event loops
            await server.serve_forever()
            return
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
        print("draining: listener closed, finishing in-flight requests ...", flush=True)
        summary = await server.drain()
        forced = summary["forced_connections"]
        detail = f", {forced} connections force-closed" if forced else ""
        print(f"drained in {summary['drain_seconds']:.2f}s{detail}", flush=True)

    try:
        asyncio.run(_serve())
    except OSError as error:  # e.g. the port is already bound
        print(f"error: cannot serve on {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - SIGINT before the handler lands
        pass
    finally:
        service.close()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Closed- or open-loop load test of the WH workload against an index."""
    from dataclasses import replace

    from repro.bench.registry import get_config
    from repro.bench.results import ExperimentResult
    from repro.bench.runner import build_document, write_artifacts
    from repro.serve.loadgen import parse_base_url, run_load, run_open_loop
    from repro.serve.server import ServerThread, result_to_dict
    from repro.workloads.wh import generate_wh_queries

    if any(level < 1 for level in args.concurrency):
        print(
            f"error: --concurrency levels must be at least 1, got {args.concurrency}",
            file=sys.stderr,
        )
        return 2
    if args.mode == "open" and any(rate <= 0 for rate in args.rate):
        print(f"error: --rate values must be positive, got {args.rate}", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print(f"error: --duration must be positive, got {args.duration}", file=sys.stderr)
        return 2
    if args.url is not None:
        try:
            parse_base_url(args.url)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        service = QueryService.open(args.index)
    except _OPEN_ERRORS as error:
        print(f"error: cannot open index {args.index!r}: {error}", file=sys.stderr)
        return 2

    # The registered experiment defines the column semantics (key columns,
    # gated metrics, timing columns); only the parameters differ -- the
    # index under test comes from the user, not the bench context.  The
    # traced-pass columns stay out: tracing cannot be toggled in a server
    # reached over --url, so the load test measures the untraced path only.
    if args.mode == "open":
        registered = get_config("serve_overload")
        config = replace(
            registered,
            params={
                "index": args.index,
                "url": args.url,
                "rates": tuple(args.rate),
                "duration_seconds": args.duration,
                "arrivals": args.arrivals,
            },
        )
        result = ExperimentResult(
            name="Serve overload",
            description=f"Open-loop WH-workload ({args.arrivals} arrivals) against {args.index!r}",
            columns=[
                "load",
                "rate_qps",
                "duration_seconds",
                "offered",
                "accepted",
                "shed",
                "errors",
                "mismatches",
                "overflowed",
                "p50_ms",
                "p99_ms",
            ],
        )
    else:
        registered = get_config("serve_http_throughput")
        config = replace(
            registered,
            params={
                "index": args.index,
                "url": args.url,
                "concurrency_levels": tuple(args.concurrency),
                "duration_seconds": args.duration,
            },
            timing_columns=tuple(
                column
                for column in registered.timing_columns
                if column not in ("qps_traced", "trace_overhead_pct")
            ),
        )
        result = ExperimentResult(
            name="Serve HTTP throughput",
            description=f"Closed-loop WH-workload throughput against {args.index!r}",
            columns=[
                "concurrency",
                "duration_seconds",
                "requests",
                "errors",
                "mismatches",
                "qps",
                "p50_ms",
                "p95_ms",
                "p99_ms",
            ],
        )

    texts = [item.text for item in generate_wh_queries()]
    thread = None
    wall_started = time.perf_counter()
    try:
        # Warm the caches, then snapshot the in-process ground truth every
        # response is verified against.
        service.run_many(texts)
        expected = {
            text: json.loads(json.dumps(result_to_dict(service.run(text)))) for text in texts
        }
        if args.url is None:
            thread = ServerThread(service, flush_window=args.flush_window).start()
            url = thread.url
            print(f"serving {args.index!r} on {url} for the duration of the test")
        else:
            url = args.url
        if args.mode == "open":
            for rate in args.rate:
                try:
                    report = run_open_loop(
                        url, texts, rate=rate, duration=args.duration,
                        arrivals=args.arrivals, expected=expected,
                    )
                except OSError as error:
                    print(f"error: load test against {url} failed: {error}", file=sys.stderr)
                    return 2
                latency = report.percentiles_ms()
                result.add_row(
                    f"{rate:g}qps",
                    rate,
                    report.duration_seconds,
                    report.offered,
                    report.accepted,
                    report.shed,
                    report.errors,
                    report.mismatches,
                    report.overflowed,
                    latency["p50"] or 0.0,
                    latency["p99"] or 0.0,
                )
                print(
                    f"rate {rate:g}/s: offered {report.offered:,}, "
                    f"accepted {report.accepted:,}, shed {report.shed:,}, "
                    f"{report.errors} errors, {report.mismatches} mismatches, "
                    f"p50 {latency['p50'] or 0.0:.2f} ms, p99 {latency['p99'] or 0.0:.2f} ms"
                )
        else:
            for concurrency in args.concurrency:
                try:
                    report = run_load(
                        url, texts, concurrency=concurrency, duration=args.duration,
                        expected=expected,
                    )
                except OSError as error:
                    print(f"error: load test against {url} failed: {error}", file=sys.stderr)
                    return 2
                latency = report.percentiles_ms()
                result.add_row(
                    concurrency,
                    report.duration_seconds,
                    report.requests,
                    report.errors,
                    report.mismatches,
                    report.qps,
                    latency["p50"],
                    latency["p95"],
                    latency["p99"],
                )
                print(
                    f"concurrency {concurrency}: {report.qps:,.0f} qps "
                    f"({report.requests:,} requests, {report.errors} errors, "
                    f"{report.mismatches} mismatches), "
                    f"p50 {latency['p50']:.2f} ms, p95 {latency['p95']:.2f} ms, "
                    f"p99 {latency['p99']:.2f} ms"
                )
    finally:
        if thread is not None:
            thread.stop()
        service.close()

    result.add_note(f"driven by 'repro loadtest' against {args.index!r}")
    document = build_document(
        config, result, wall_seconds=time.perf_counter() - wall_started
    )
    _, json_path = write_artifacts(args.out, config, result, document)
    print(f"wrote {json_path}")
    total_errors = sum(row["errors"] for row in result.as_dicts())
    total_mismatches = sum(row["mismatches"] for row in result.as_dicts())
    if total_mismatches:
        print(
            f"error: {total_mismatches} responses differed from QueryService.run",
            file=sys.stderr,
        )
        return 1
    if total_errors:
        print(f"error: {total_errors} requests failed", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Experiment orchestration (bench list / run / gate)
# ----------------------------------------------------------------------
def _bench_list(args: argparse.Namespace) -> int:
    from repro.bench.registry import all_configs

    configs = all_configs()
    if args.json:
        print(json.dumps([config.as_dict() for config in configs], indent=2))
        return 0
    width = max(len(config.name) for config in configs)
    for config in configs:
        print(f"{config.name:<{width}s}  {config.title:<16s} {config.description}")
    print(f"{len(configs)} experiments registered")
    return 0


def _bench_run(args: argparse.Namespace) -> int:
    from repro.bench.registry import UnknownExperimentError, experiment_names
    from repro.bench.runner import ExperimentRunner

    names = args.names or experiment_names()
    runner = ExperimentRunner(
        workdir=args.workdir, out_dir=args.out, seed=args.seed, scale=args.scale,
        trace=args.trace,
    )
    documents = []
    try:
        for name in names:
            try:
                report = runner.run(name)
            except UnknownExperimentError as error:
                print(f"error: {error.args[0]}", file=sys.stderr)
                return 2
            documents.append(report.document)
            if args.json:
                continue
            trace_note = f" (+ {report.trace_path})" if report.trace_path else ""
            print(
                f"{report.config.name}: {len(report.result.rows)} rows in "
                f"{report.wall_seconds:.2f}s -> {report.json_path}{trace_note}"
            )
    finally:
        runner.close()
    if args.json:
        print(json.dumps(documents if len(documents) != 1 else documents[0], indent=2))
    return 0


def _bench_gate(args: argparse.Namespace, baseline_dir: str, current_dir: str) -> int:
    from repro.bench.gate import GateError, GateOptions, compare_directories

    options = GateOptions()
    if args.tolerance is not None:
        try:
            options = GateOptions(
                tolerance=args.tolerance,
                ci_tolerance=max(args.tolerance, options.ci_tolerance),
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        report = compare_directories(baseline_dir, current_dir, options)
    except GateError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(
            {
                "ok": report.ok,
                "tolerance": report.tolerance,
                "ci_guard": report.ci_guard,
                "new_experiments": report.new_experiments,
                "missing_experiments": report.missing_experiments,
                "experiments": [
                    {
                        "experiment": comparison.experiment,
                        "ok": comparison.ok,
                        "failures": comparison.failures,
                        "verdicts": [
                            {
                                "metric": verdict.metric,
                                "direction": verdict.direction,
                                "status": verdict.status,
                                "ratio": verdict.ratio,
                                "rows_compared": verdict.rows_compared,
                                "detail": verdict.detail,
                            }
                            for verdict in comparison.verdicts
                        ],
                    }
                    for comparison in report.comparisons
                ],
            },
            indent=2,
        ))
    else:
        print(report.to_text())
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """Dispatch `bench list` / `bench run` / `bench gate` (or `--gate DIR`)."""
    if args.gate_dir is not None:
        if args.action not in (None, "gate") or args.names:
            print("error: --gate cannot be combined with an action", file=sys.stderr)
            return 2
        return _bench_gate(args, args.gate_dir, args.current)
    if args.action == "list":
        if args.names:
            print("error: 'bench list' takes no experiment names", file=sys.stderr)
            return 2
        return _bench_list(args)
    if args.action == "run":
        return _bench_run(args)
    if args.action == "gate":
        if not args.names:
            print("error: 'bench gate' needs a baseline directory", file=sys.stderr)
            return 2
        if len(args.names) > 2:
            print("error: 'bench gate' takes BASELINE [CURRENT]", file=sys.stderr)
            return 2
        current = args.names[1] if len(args.names) == 2 else args.current
        return _bench_gate(args, args.names[0], current)
    print("error: pass an action (list, run, gate) or --gate BASELINE_DIR", file=sys.stderr)
    return 2


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subtree indexing and querying over syntactically annotated trees",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic parsed corpus")
    generate.add_argument("--sentences", type=int, default=1000, help="number of sentences")
    generate.add_argument("--seed", type=int, default=0, help="random seed")
    generate.add_argument("--out", required=True, help="output Penn-bracket file")
    generate.set_defaults(func=cmd_generate)

    build = subparsers.add_parser("build", help="build a subtree index over a corpus file")
    build.add_argument("corpus", help="Penn-bracket corpus file (one tree per line)")
    build.add_argument("--mss", type=int, default=3, help="maximum subtree size")
    build.add_argument("--coding", choices=coding_names(), default="root-split")
    build.add_argument("--out", required=True, help="output index file (manifest when sharded)")
    build.add_argument(
        "--shards", type=int, default=1,
        help="partition the index into N shards (writes <out>.manifest.json + shard files)",
    )
    build.add_argument(
        "--workers", type=int, default=None,
        help="parallel build processes (default: one per shard, capped at the core count)",
    )
    build.add_argument(
        "--partitioner", choices=partitioner_names(), default=None,
        help="tid -> shard policy for --shards > 1 (default: hash)",
    )
    build.add_argument(
        "--live", action="store_true",
        help="build a mutable live index (writes <out>.live.json + segment + WAL files; "
             "grow it later with 'add'/'delete'/'compact')",
    )
    build.set_defaults(func=cmd_build)

    query = subparsers.add_parser("query", help="evaluate queries against an index")
    query.add_argument("index", help="index file built with the 'build' command")
    query.add_argument("queries", nargs="+", help="queries, e.g. 'NP(DT)(NN)' or 'S//NN'")
    query.add_argument("--show-tids", action="store_true", help="print matching tree ids")
    query.add_argument("--limit", type=int, default=20, help="max tree ids to print")
    query.add_argument(
        "--repeat", type=int, default=1,
        help="run each query N times through the service caches and report cold vs warm latency",
    )
    query.add_argument(
        "--batch", action="store_true",
        help="evaluate all queries as one batch (distinct cover keys are fetched once)",
    )
    query.add_argument(
        "--cache-stats", action="store_true",
        help="print plan/posting cache hit rates and index probe counters",
    )
    query.add_argument(
        "--explain", action="store_true",
        help="print the decomposition/cover plan and per-stage posting counts "
             "without executing the join",
    )
    query.add_argument(
        "--trace", action="store_true",
        help="trace each execution and print its per-stage span tree "
             "(parse/decompose, fetch, join, filter) after the results",
    )
    query.set_defaults(func=cmd_query)

    add = subparsers.add_parser("add", help="append trees to a live index")
    add.add_argument("index", help="live-index manifest built with 'build --live'")
    add.add_argument("corpus", help="Penn-bracket file of trees to append (one per line)")
    add.set_defaults(func=cmd_add)

    delete = subparsers.add_parser("delete", help="delete trees from a live index by tid")
    delete.add_argument("index", help="live-index manifest built with 'build --live'")
    delete.add_argument("tids", nargs="+", type=int, help="tree ids to tombstone")
    delete.set_defaults(func=cmd_delete)

    compact = subparsers.add_parser(
        "compact", help="fold a live index's delta and tombstones into immutable segments"
    )
    compact.add_argument("index", help="live-index manifest built with 'build --live'")
    compact.set_defaults(func=cmd_compact)

    bench = subparsers.add_parser(
        "bench", help="run registered experiments and gate results against a baseline"
    )
    bench.add_argument(
        "action", nargs="?", choices=("list", "run", "gate"),
        help="list experiments, run some/all, or gate a run against a baseline",
    )
    bench.add_argument(
        "names", nargs="*",
        help="experiment names for 'run' (default: all); BASELINE [CURRENT] for 'gate'",
    )
    bench.add_argument(
        "--gate", dest="gate_dir", metavar="BASELINE_DIR", default=None,
        help="shorthand for 'bench gate BASELINE_DIR' (exits 1 on regression)",
    )
    bench.add_argument(
        "--out", default="benchmarks/results",
        help="directory for <name>.txt and BENCH_<name>.json artefacts (run mode)",
    )
    bench.add_argument(
        "--current", default="benchmarks/results",
        help="current result directory to gate (gate mode; default: benchmarks/results)",
    )
    bench.add_argument(
        "--workdir", default=None,
        help="directory for corpora/indexes built while running (default: a temp dir)",
    )
    bench.add_argument(
        "--scale", type=float, default=None,
        help="corpus-size multiplier (default: REPRO_BENCH_SCALE or 1.0)",
    )
    bench.add_argument("--seed", type=int, default=17, help="experiment-context seed")
    bench.add_argument(
        "--tolerance", type=float, default=None,
        help="gate tolerance band around a ratio of 1.0 (default 0.35; CI guard 0.60)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of human-readable output",
    )
    bench.add_argument(
        "--trace", action="store_true",
        help="trace each measured run and write TRACE_<name>.json "
             "(Chrome-trace format + per-stage totals) next to the bench artifacts",
    )
    bench.set_defaults(func=cmd_bench)

    stats = subparsers.add_parser("stats", help="print statistics of a built index")
    stats.add_argument("index", help="index file or sharded-index manifest")
    stats.add_argument("--top", type=int, default=0, help="show the N longest posting lists")
    stats.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON (with a per-shard breakdown when sharded)",
    )
    stats.set_defaults(func=cmd_stats)

    serve = subparsers.add_parser("serve", help="serve an index over HTTP")
    serve.add_argument("index", help="index file, sharded manifest or live manifest")
    serve.add_argument("--host", default="127.0.0.1", help="address to bind (default: loopback)")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="port to bind (0 picks an ephemeral port; default: 8321)",
    )
    serve.add_argument(
        "--flush-window", type=float, default=0.002,
        help="seconds /query/batch waits to coalesce concurrent queries into one "
             "run_many batch (default: 0.002)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a pending micro-batch once it reaches this many queries",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="worker threads executing queries off the event loop (default: 4)",
    )
    serve.add_argument(
        "--header-timeout", type=float, default=10.0, metavar="S",
        help="seconds a connection may take to deliver a complete request head "
             "before it is reaped with 408 (default: 10)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="S",
        help="seconds a single request may spend executing before 504 (default: 30)",
    )
    serve.add_argument(
        "--write-timeout", type=float, default=15.0, metavar="S",
        help="seconds a response write may stall on a slow client before the "
             "connection is aborted (default: 15)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=256,
        help="open-connection cap; excess connections get an immediate 503 "
             "(default: 256)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=128,
        help="in-flight query cap; requests beyond it are shed with 503 + "
             "Retry-After instead of queueing (default: 128)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="seconds SIGTERM/SIGINT shutdown waits for in-flight requests "
             "before force-closing stragglers (default: 10)",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="trace every request (adds /debug/trace and request-id tagging)",
    )
    serve.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="append one JSON line per request trace (and per 500 error) to PATH; "
             "implies --trace",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None, metavar="N",
        help="log queries slower than N ms to the slow-query log "
             "(surfaced in /stats); implies --trace",
    )
    serve.set_defaults(func=cmd_serve)

    loadtest = subparsers.add_parser(
        "loadtest", help="closed-loop load test of the WH workload against an index"
    )
    loadtest.add_argument("index", help="index to test (used for the ground-truth check)")
    loadtest.add_argument(
        "--url", default=None,
        help="base URL of an already-running server (default: self-serve the index "
             "on an ephemeral port)",
    )
    loadtest.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: N clients each waiting for a response; open: requests "
             "arrive on a fixed schedule regardless of responses (default: closed)",
    )
    loadtest.add_argument(
        "--concurrency", type=int, nargs="+", default=[1, 2, 4],
        help="closed-loop client counts to sweep (default: 1 2 4)",
    )
    loadtest.add_argument(
        "--rate", type=float, nargs="+", default=[200.0], metavar="QPS",
        help="open-loop arrival rates to sweep, in requests/second (default: 200)",
    )
    loadtest.add_argument(
        "--arrivals", choices=("poisson", "uniform"), default="poisson",
        help="open-loop inter-arrival distribution (default: poisson)",
    )
    loadtest.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds to drive load at each concurrency level (default: 2)",
    )
    loadtest.add_argument(
        "--flush-window", type=float, default=0.002,
        help="micro-batch flush window of the self-served server (default: 0.002)",
    )
    loadtest.add_argument(
        "--out", default=".",
        help="directory for the BENCH_serve_http_throughput.json (closed) or "
             "BENCH_serve_overload.json (open) artefact (default: .)",
    )
    loadtest.set_defaults(func=cmd_loadtest)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
