"""Command-line interface for the subtree index.

Four subcommands cover the everyday workflow:

``generate``
    sample a synthetic treebank and write it as bracketed Penn lines;
``build``
    build a subtree index (and the data file) over a Penn corpus file;
``query``
    evaluate one or more queries against a built index;
``stats``
    print metadata and key statistics of a built index.

Example session::

    python -m repro.cli generate --sentences 1000 --out corpus.penn
    python -m repro.cli build corpus.penn --mss 3 --coding root-split --out corpus.si
    python -m repro.cli query corpus.si "NP(DT)(NN)" "S(NP)(VP(VBZ))"
    python -m repro.cli query corpus.si "NP(DT)(NN)" --repeat 50 --cache-stats
    python -m repro.cli query corpus.si "NP(DT)" "NP(DT)(NN)" --batch
    python -m repro.cli stats corpus.si
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.coding.base import coding_names
from repro.core.index import SubtreeIndex
from repro.corpus.generator import CorpusGenerator
from repro.corpus.store import Corpus, TreeStore, data_file_path
from repro.service.service import QueryService
from repro.storage.bptree import BPlusTreeError
from repro.storage.pager import PageError


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a synthetic corpus of parse trees."""
    generator = CorpusGenerator(seed=args.seed)
    corpus = Corpus(generator.generate(args.sentences))
    corpus.save(args.out)
    print(f"wrote {len(corpus)} parse trees ({corpus.total_nodes():,} nodes) to {args.out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Build a subtree index over a Penn-bracket corpus file."""
    corpus = Corpus.load(args.corpus)
    index = SubtreeIndex.build(corpus, mss=args.mss, coding=args.coding, path=args.out)
    TreeStore.build(data_file_path(args.out), corpus).close()
    print(
        f"built {args.coding} index over {len(corpus)} trees: "
        f"{index.key_count:,} keys, {index.posting_count:,} postings, "
        f"{index.size_bytes():,} bytes, {index.metadata.build_seconds:.2f}s"
    )
    index.close()
    return 0


def _print_result(args: argparse.Namespace, text: str, result, extra: str = "") -> None:
    print(
        f"{text}: {result.total_matches} matches in {len(result.matches_per_tree)} trees "
        f"({result.stats.elapsed_seconds * 1000:.1f} ms, cover={result.stats.cover_size}, "
        f"joins={result.stats.join_count}{extra})"
    )
    if args.show_tids:
        print("  tids:", ", ".join(str(tid) for tid in result.matched_tids[: args.limit]))


def cmd_query(args: argparse.Namespace) -> int:
    """Run queries against a built index through the query service."""
    if args.batch and args.repeat > 1:
        print("error: --batch and --repeat cannot be combined", file=sys.stderr)
        return 2
    try:
        # With --repeat the point is to measure the plan+posting caches, so
        # disable the result cache; otherwise every repeat after the first
        # would be a ~free result-cache hit and "warm" would mean "hot".
        service = QueryService.open(
            args.index, result_cache_size=0 if args.repeat > 1 else 1024
        )
    except (OSError, ValueError, BPlusTreeError, PageError) as error:
        print(f"error: cannot open index {args.index!r}: {error}", file=sys.stderr)
        return 2

    status = 0
    valid: List[str] = []
    for text in args.queries:
        try:
            service.prepare(text)
        except ValueError as error:
            print(f"error: cannot parse query {text!r}: {error}", file=sys.stderr)
            status = 2
        else:
            valid.append(text)

    try:
        if args.batch:
            # One batch: distinct cover keys are fetched from the index once.
            # Per-query ms covers each join only; the shared prepare+fetch
            # work is reported in the batch total line below.
            batch_started = time.perf_counter()
            results = service.run_many(valid)
            batch_ms = (time.perf_counter() - batch_started) * 1000
            for text, result in zip(valid, results):
                _print_result(args, text, result)
            print(f"batch: {len(valid)} queries in {batch_ms:.1f} ms total")
        else:
            for text in valid:
                result = service.run(text)
                if args.repeat > 1:
                    cold_ms = result.stats.elapsed_seconds * 1000
                    warm_started = time.perf_counter()
                    for _ in range(args.repeat - 1):
                        result = service.run(text)
                    warm_ms = (time.perf_counter() - warm_started) * 1000 / (args.repeat - 1)
                    extra = f", cold={cold_ms:.1f} ms, warm avg={warm_ms:.2f} ms x{args.repeat - 1}"
                    _print_result(args, text, result, extra)
                else:
                    _print_result(args, text, result)
        if args.cache_stats:
            stats = service.stats()
            print(
                f"cache: plans {stats.plans.hits}/{stats.plans.lookups} hits, "
                f"postings {stats.postings.hits}/{stats.postings.lookups} hits, "
                f"index probes {stats.probes.gets} "
                f"({stats.probes.tree_descents} tree descents)"
            )
    except RuntimeError as error:
        # e.g. filter-based coding without its .data file next to the index
        print(f"error: {error}", file=sys.stderr)
        status = 2
    finally:
        service.close()
    return status


def cmd_stats(args: argparse.Namespace) -> int:
    """Print metadata and the largest posting lists of an index."""
    try:
        index = SubtreeIndex.open(args.index)
    except (OSError, ValueError, BPlusTreeError, PageError) as error:
        print(f"error: cannot open index {args.index!r}: {error}", file=sys.stderr)
        return 2
    meta = index.metadata
    print(f"index file      : {args.index}")
    print(f"coding          : {meta.coding}")
    print(f"mss             : {meta.mss}")
    print(f"trees indexed   : {meta.tree_count:,}")
    print(f"unique keys     : {meta.key_count:,}")
    print(f"total postings  : {meta.posting_count:,}")
    print(f"size on disk    : {index.size_bytes():,} bytes")
    print(f"build time      : {meta.build_seconds:.2f} s")
    if args.top:
        ranked = sorted(
            ((len(postings), key) for key, postings in index.items()), reverse=True
        )[: args.top]
        print(f"top {args.top} keys by posting-list length:")
        for length, key in ranked:
            print(f"  {key.decode('utf-8'):40s} {length:,}")
    index.close()
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subtree indexing and querying over syntactically annotated trees",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic parsed corpus")
    generate.add_argument("--sentences", type=int, default=1000, help="number of sentences")
    generate.add_argument("--seed", type=int, default=0, help="random seed")
    generate.add_argument("--out", required=True, help="output Penn-bracket file")
    generate.set_defaults(func=cmd_generate)

    build = subparsers.add_parser("build", help="build a subtree index over a corpus file")
    build.add_argument("corpus", help="Penn-bracket corpus file (one tree per line)")
    build.add_argument("--mss", type=int, default=3, help="maximum subtree size")
    build.add_argument("--coding", choices=coding_names(), default="root-split")
    build.add_argument("--out", required=True, help="output index file")
    build.set_defaults(func=cmd_build)

    query = subparsers.add_parser("query", help="evaluate queries against an index")
    query.add_argument("index", help="index file built with the 'build' command")
    query.add_argument("queries", nargs="+", help="queries, e.g. 'NP(DT)(NN)' or 'S//NN'")
    query.add_argument("--show-tids", action="store_true", help="print matching tree ids")
    query.add_argument("--limit", type=int, default=20, help="max tree ids to print")
    query.add_argument(
        "--repeat", type=int, default=1,
        help="run each query N times through the service caches and report cold vs warm latency",
    )
    query.add_argument(
        "--batch", action="store_true",
        help="evaluate all queries as one batch (distinct cover keys are fetched once)",
    )
    query.add_argument(
        "--cache-stats", action="store_true",
        help="print plan/posting cache hit rates and index probe counters",
    )
    query.set_defaults(func=cmd_query)

    stats = subparsers.add_parser("stats", help="print statistics of a built index")
    stats.add_argument("index", help="index file")
    stats.add_argument("--top", type=int, default=0, help="show the N longest posting lists")
    stats.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
