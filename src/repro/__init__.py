"""repro -- subtree indexing and querying over syntactically annotated trees.

A reproduction of Chubak & Rafiei, *"Efficient Indexing and Querying over
Syntactically Annotated Trees"*, VLDB 2012.  The package provides:

* a tree data model and Penn-bracket IO (:mod:`repro.trees`);
* a deterministic synthetic treebank generator standing in for the parsed
  AQUAINT corpus (:mod:`repro.corpus`);
* a page-based storage engine with a disk B+Tree (:mod:`repro.storage`);
* the subtree index with its three posting codings -- filter-based,
  subtree-interval and the paper's root-split coding (:mod:`repro.core`,
  :mod:`repro.coding`);
* tree queries, the query language and the ``optimalCover`` / ``minRC``
  decomposition algorithms (:mod:`repro.query`);
* per-coding query executors built on structural merge joins
  (:mod:`repro.exec`);
* a caching, batching, thread-safe serving layer over an open index
  (:mod:`repro.service`);
* horizontal partitioning by tree id: parallel multiprocess shard builds,
  a self-describing manifest, and fan-out query execution
  (:mod:`repro.shard`, :mod:`repro.exec.fanout`);
* a mutable "live" index for a growing corpus: write-ahead log, in-memory
  delta segment, tombstone deletes and explicit compaction behind the same
  read API (:mod:`repro.live`, :mod:`repro.service.live`);
* the baselines the paper compares against (:mod:`repro.baselines`);
* the evaluation workloads and the experiment harness regenerating every
  table and figure of the paper (:mod:`repro.workloads`, :mod:`repro.bench`).

Quickstart
----------
>>> from repro import CorpusGenerator, Corpus, SubtreeIndex, QueryExecutor, parse_query
>>> corpus = Corpus(CorpusGenerator(seed=1).generate(200))
>>> index = SubtreeIndex.build(corpus, mss=3, coding="root-split", path="/tmp/demo.si")
>>> executor = QueryExecutor(index, store=corpus)
>>> result = executor.execute(parse_query("NP(DT)(NN)"))
>>> result.total_matches > 0
True
"""

from repro.coding import FilterBasedCoding, RootSplitCoding, SubtreeIntervalCoding, get_coding
from repro.core import SubtreeIndex
from repro.corpus import Corpus, CorpusGenerator, TreeStore, generate_corpus
from repro.exec import FanoutExecutor, QueryExecutor, QueryResult
from repro.live import LiveIndex
from repro.query import QueryTree, min_rc, optimal_cover, parse_query
from repro.service import LiveQueryService, QueryService, ShardedQueryService
from repro.shard import ShardedIndex
from repro.trees import Node, ParseTree, parse_penn, to_penn

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Trees and corpora
    "Node",
    "ParseTree",
    "parse_penn",
    "to_penn",
    "Corpus",
    "TreeStore",
    "CorpusGenerator",
    "generate_corpus",
    # Index and codings
    "SubtreeIndex",
    "get_coding",
    "FilterBasedCoding",
    "RootSplitCoding",
    "SubtreeIntervalCoding",
    # Queries and execution
    "parse_query",
    "QueryTree",
    "optimal_cover",
    "min_rc",
    "QueryExecutor",
    "QueryResult",
    "QueryService",
    # Sharding
    "ShardedIndex",
    "ShardedQueryService",
    "FanoutExecutor",
    # Live (mutable) indexing
    "LiveIndex",
    "LiveQueryService",
]
