"""The sharded-index manifest: one JSON file describing N shard files.

A sharded index is a set of per-shard ``SubtreeIndex`` files (plus their
``.data`` tree stores) tied together by a manifest.  The manifest is the
openable object: pointing :meth:`repro.core.index.SubtreeIndex.open`, the
CLI or :meth:`repro.service.QueryService.open` at it transparently yields
the sharded implementations.  Shard paths are stored relative to the
manifest's directory so the whole bundle can be moved or copied as one.

Format (``<name>.manifest.json``)::

    {
      "format": "repro-sharded-index",
      "version": 1,
      "mss": 3,
      "coding": "root-split",
      "partitioner": "hash",
      "shard_count": 4,
      "tree_count": 1200,
      "build_wall_seconds": 1.87,
      "shards": [
        {"shard_id": 0, "index_path": "corpus.shard00.si",
         "data_path": "corpus.shard00.si.data", "tree_count": 301,
         "key_count": 9120, "posting_count": 60233, "build_seconds": 0.95},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import List

#: Identifies a manifest file regardless of its filename.
MANIFEST_FORMAT = "repro-sharded-index"
MANIFEST_VERSION = 1
#: Conventional filename suffix of a manifest.
MANIFEST_SUFFIX = ".manifest.json"


class ShardError(RuntimeError):
    """A shard file is missing, corrupt, or inconsistent with its manifest."""


@dataclass
class ShardEntry:
    """One shard's files and build counters, as recorded in the manifest."""

    shard_id: int
    index_path: str  # relative to the manifest directory
    data_path: str   # relative to the manifest directory
    tree_count: int
    key_count: int
    posting_count: int
    build_seconds: float


@dataclass
class ShardManifest:
    """The parsed contents of a sharded-index manifest file.

    ``epoch`` counts manifest generations: 0 for a one-shot build, bumped
    whenever a writer (e.g. a rebuild, or the live index flushing into a
    sharded layout) swaps a new manifest over an old one.  Readers that
    cache derived state key their invalidation on it.  Absent in manifests
    written before the field existed, it defaults to 0.
    """

    mss: int
    coding: str
    partitioner: str
    shard_count: int
    tree_count: int
    build_wall_seconds: float
    shards: List[ShardEntry] = field(default_factory=list)
    epoch: int = 0

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "mss": self.mss,
            "coding": self.coding,
            "partitioner": self.partitioner,
            "shard_count": self.shard_count,
            "tree_count": self.tree_count,
            "build_wall_seconds": self.build_wall_seconds,
            "epoch": self.epoch,
            "shards": [asdict(entry) for entry in self.shards],
        }
        return json.dumps(payload, indent=2) + "\n"

    def save(self, path: str) -> None:
        """Write the manifest to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ShardManifest":
        """Read and validate a manifest written by :meth:`save`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            raise ShardError(f"cannot read shard manifest {path!r}: {error}") from error
        if payload.get("format") != MANIFEST_FORMAT:
            raise ShardError(f"{path!r} is not a sharded-index manifest")
        version = payload.get("version")
        if version != MANIFEST_VERSION:
            raise ShardError(
                f"unsupported manifest version {version!r} in {path!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        manifest = cls(
            mss=payload["mss"],
            coding=payload["coding"],
            partitioner=payload["partitioner"],
            shard_count=payload["shard_count"],
            tree_count=payload["tree_count"],
            build_wall_seconds=payload["build_wall_seconds"],
            shards=[ShardEntry(**entry) for entry in payload["shards"]],
            epoch=payload.get("epoch", 0),
        )
        if len(manifest.shards) != manifest.shard_count:
            raise ShardError(
                f"manifest {path!r} declares {manifest.shard_count} shards "
                f"but lists {len(manifest.shards)}"
            )
        return manifest

    # ------------------------------------------------------------------
    def resolve(self, manifest_path: str, relative: str) -> str:
        """Resolve a shard-relative path against the manifest's directory."""
        return os.path.join(os.path.dirname(os.path.abspath(manifest_path)), relative)


def is_manifest(path: str) -> bool:
    """``True`` when *path* names an existing sharded-index manifest.

    Sniffs rather than trusting the filename, so a manifest renamed to
    ``corpus.si`` still dispatches correctly, and a B+Tree file named
    ``x.manifest.json`` does not.
    """
    if not os.path.isfile(path):
        return False
    try:
        with open(path, "rb") as handle:
            head = handle.read(512)
    except OSError:
        return False
    return MANIFEST_FORMAT.encode("ascii") in head


def shard_file_paths(manifest_path: str, shard_id: int) -> tuple:
    """The conventional (index, data) filenames of one shard.

    ``corpus.si.manifest.json`` -> ``corpus.si.shard00`` / ``.shard00.data``;
    both are relative to the manifest's directory.
    """
    base = os.path.basename(manifest_path)
    if base.endswith(MANIFEST_SUFFIX):
        base = base[: -len(MANIFEST_SUFFIX)]
    index_name = f"{base}.shard{shard_id:02d}"
    return index_name, index_name + ".data"
