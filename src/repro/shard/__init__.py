"""Horizontal partitioning of the subtree index by tree id.

* :mod:`repro.shard.partitioner` -- the tid -> shard policies
  (``round-robin`` and stable-``hash``).
* :mod:`repro.shard.manifest` -- the self-describing JSON manifest that
  ties N shard files into one openable index, and manifest sniffing.
* :mod:`repro.shard.builder` -- parallel shard construction via
  ``ProcessPoolExecutor`` (one complete ``SubtreeIndex`` + ``TreeStore``
  per shard).
* :mod:`repro.shard.sharded` -- :class:`ShardedIndex`, the merged
  SubtreeIndex-compatible view over the shards, plus the tid-routed
  :class:`ShardedTreeStore`.

Query-side fan-out lives with the other executors
(:mod:`repro.exec.fanout`) and the sharded serving layer with the other
services (:mod:`repro.service.sharded`).
"""

from repro.shard.builder import build_sharded, default_worker_count, partition_corpus
from repro.shard.manifest import (
    MANIFEST_SUFFIX,
    ShardEntry,
    ShardError,
    ShardManifest,
    is_manifest,
)
from repro.shard.partitioner import (
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    get_partitioner,
    partitioner_names,
)
from repro.shard.sharded import ShardedIndex, ShardedTreeStore, ShardHandle, open_index

__all__ = [
    "ShardedIndex",
    "ShardedTreeStore",
    "ShardHandle",
    "open_index",
    "build_sharded",
    "partition_corpus",
    "default_worker_count",
    "ShardManifest",
    "ShardEntry",
    "ShardError",
    "is_manifest",
    "MANIFEST_SUFFIX",
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "get_partitioner",
    "partitioner_names",
]
