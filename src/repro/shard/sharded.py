"""The sharded subtree index: N shard files behind one object.

:class:`ShardedIndex` opens a manifest and presents the *read* API of
:class:`~repro.core.index.SubtreeIndex` -- ``lookup`` / ``has_key`` /
``keys`` / ``items`` / metadata properties -- over the union of its shards,
so every existing consumer (``QueryExecutor``, ``QueryService``, the CLI)
works unchanged when pointed at a manifest.  Tree ids are disjoint across
shards, so a key's global posting list is the tid-ordered merge of the
per-shard lists; merging (rather than concatenating) preserves the sorted-
by-tid invariant the join operators rely on.

This merged ``lookup`` is the *compatibility* path.  The *performance* path
is per-shard fan-out -- fetch and join inside each shard, merge only the
final results -- implemented by :class:`repro.exec.fanout.FanoutExecutor`
and :class:`repro.service.sharded.ShardedQueryService`, which reach through
:attr:`ShardedIndex.shards` to the per-shard indexes and stores.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from itertools import groupby
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.coding.base import CodingScheme, get_coding
from repro.core.index import IndexMetadata, SubtreeIndex
from repro.core.keys import SubtreeKey, decode_key
from repro.corpus.store import TreeStore
from repro.shard.builder import build_sharded
from repro.shard.manifest import ShardEntry, ShardError, ShardManifest, is_manifest
from repro.shard.partitioner import Partitioner, get_partitioner
from repro.storage.bptree import ProbeStats, ValueCache
from repro.trees.node import Node, ParseTree


@dataclass
class ShardHandle:
    """One opened shard: its manifest entry, index and (optional) data file."""

    shard_id: int
    entry: ShardEntry
    index: SubtreeIndex
    store: Optional[TreeStore]


class ShardedTreeStore:
    """Read-only tid-routed view over the per-shard data files.

    Gives the filtering phase (filter-based coding) and any other tid-keyed
    consumer one ``get``/``get_many`` surface across all shards, matching the
    parts of :class:`~repro.corpus.store.TreeStore` the query path uses.
    """

    def __init__(self, shards: Sequence[ShardHandle], partitioner: Partitioner):
        self._shards = [shard for shard in shards if shard.store is not None]
        self._partitioner = partitioner

    def _store_for(self, tid: int) -> Optional[TreeStore]:
        located = self._partitioner.locate(tid)
        if located is not None:
            for shard in self._shards:
                if shard.shard_id == located:
                    return shard.store
            return None
        for shard in self._shards:  # positional policies: membership probe
            if shard.store is not None and tid in shard.store:
                return shard.store
        return None

    def get(self, tid: int) -> ParseTree:
        store = self._store_for(tid)
        if store is None or tid not in store:
            raise KeyError(f"no tree with tid {tid}")
        return store.get(tid)

    def get_many(self, tids: Sequence[int]) -> List[ParseTree]:
        return [self.get(tid) for tid in sorted(tids)]

    def __contains__(self, tid: int) -> bool:
        store = self._store_for(tid)
        return store is not None and tid in store

    def __len__(self) -> int:
        return sum(len(shard.store) for shard in self._shards)

    def tids(self) -> List[int]:
        all_tids: List[int] = []
        for shard in self._shards:
            all_tids.extend(shard.store.tids())
        return sorted(all_tids)

    def __iter__(self) -> Iterator[ParseTree]:
        for tid in self.tids():
            yield self.get(tid)


class ShardedIndex:
    """A subtree index horizontally partitioned by tree id across N shards."""

    def __init__(
        self,
        manifest_path: str,
        manifest: ShardManifest,
        shards: Sequence[ShardHandle],
        partitioner: Partitioner,
    ):
        self.manifest_path = manifest_path
        self.manifest = manifest
        self.shards: List[ShardHandle] = list(shards)
        self.partitioner = partitioner
        self.coding: CodingScheme = get_coding(manifest.coding)
        # Aggregate metadata in the shape SubtreeIndex consumers expect.
        # key_count sums the per-shard unique-key counts, so a key present
        # in several shards is counted once per shard (the global distinct
        # count is <= this sum).
        self.metadata = IndexMetadata(
            mss=manifest.mss,
            coding=manifest.coding,
            tree_count=manifest.tree_count,
            key_count=sum(entry.key_count for entry in manifest.shards),
            posting_count=sum(entry.posting_count for entry in manifest.shards),
            build_seconds=manifest.build_wall_seconds,
        )
        self.store = ShardedTreeStore(self.shards, partitioner)
        self._postings_cache: Optional[ValueCache] = None
        #: Counters of *merged* lookups through this object; the per-shard
        #: indexes keep their own ``probe_stats`` for the fan-out path.
        self.probe_stats = ProbeStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        trees,
        mss: int,
        coding: CodingScheme | str,
        path: str,
        shards: int,
        workers: Optional[int] = None,
        partitioner: str | Partitioner = "hash",
    ) -> "ShardedIndex":
        """Partition *trees*, build every shard (in parallel worker processes
        when ``workers > 1``) and return the opened sharded index."""
        manifest_path = build_sharded(
            trees, mss, coding, path, shards, workers=workers, partitioner=partitioner
        )
        return cls.open(manifest_path)

    @classmethod
    def open(cls, path: str) -> "ShardedIndex":
        """Open a sharded index from its manifest file.

        Raises :class:`~repro.shard.manifest.ShardError` -- always naming the
        offending shard -- when a shard file is missing, unreadable, or
        disagrees with the manifest's parameters.
        """
        manifest = ShardManifest.load(path)
        partitioner = get_partitioner(manifest.partitioner, manifest.shard_count)
        shards: List[ShardHandle] = []
        try:
            for entry in manifest.shards:
                index_path = manifest.resolve(path, entry.index_path)
                if not os.path.exists(index_path):
                    raise ShardError(
                        f"shard {entry.shard_id} of {manifest.shard_count} is missing "
                        f"its index file {index_path!r} (listed in {path!r})"
                    )
                try:
                    index = SubtreeIndex.open(index_path)
                except ShardError:
                    raise
                except Exception as error:
                    raise ShardError(
                        f"shard {entry.shard_id} of {manifest.shard_count} is "
                        f"unreadable at {index_path!r}: {error}"
                    ) from error
                if index.mss != manifest.mss or index.coding.name != manifest.coding:
                    index.close()
                    raise ShardError(
                        f"shard {entry.shard_id} at {index_path!r} was built with "
                        f"mss={index.mss} coding={index.coding.name}, but the manifest "
                        f"says mss={manifest.mss} coding={manifest.coding}"
                    )
                store_path = manifest.resolve(path, entry.data_path)
                store = TreeStore(store_path) if os.path.exists(store_path) else None
                shards.append(ShardHandle(entry.shard_id, entry, index, store))
        except Exception:
            for shard in shards:
                shard.index.close()
                if shard.store is not None:
                    shard.store.close()
            raise
        return cls(path, manifest, shards, partitioner)

    # ------------------------------------------------------------------
    # Lookup (merged across shards)
    # ------------------------------------------------------------------
    _CACHE_MISS = object()

    def lookup(self, key: bytes | str | SubtreeKey | Node) -> List[object]:
        """The global posting list of *key*: per-shard lists merged by tid.

        Accepts the same key forms as :meth:`SubtreeIndex.lookup`.  With a
        cache attached (:meth:`attach_postings_cache`) the *merged* list is
        cached at this level; the per-shard indexes may additionally carry
        their own caches for the fan-out path.
        """
        self.probe_stats.gets += 1
        encoded = SubtreeIndex._normalise_key(key)
        cache = self._postings_cache
        if cache is not None:
            cached = cache.get(encoded, self._CACHE_MISS)
            if cached is not self._CACHE_MISS:
                self.probe_stats.cache_hits += 1
                return cached  # type: ignore[return-value]
        self.probe_stats.tree_descents += 1
        per_shard = [shard.index.lookup(encoded) for shard in self.shards]
        merged = self._merge_postings(per_shard)
        if cache is not None:
            cache.put(encoded, merged)
        return merged

    @staticmethod
    def _merge_postings(per_shard: Sequence[Sequence[object]]) -> List[object]:
        """Merge per-shard posting lists into one list ascending in tid.

        Every coding's posting carries ``tid`` and each shard's list is
        already tid-ascending (shards receive their trees in corpus order),
        so this is a plain k-way merge.  Tids never repeat across shards.
        """
        populated = [plist for plist in per_shard if plist]
        if not populated:
            return []
        if len(populated) == 1:
            return list(populated[0])
        return list(heapq.merge(*populated, key=lambda posting: posting.tid))

    def has_key(self, key: bytes | str | SubtreeKey | Node) -> bool:
        """``True`` when any shard indexes *key*."""
        encoded = SubtreeIndex._normalise_key(key)
        return any(shard.index.has_key(encoded) for shard in self.shards)

    def posting_list_length(self, key: bytes | str | SubtreeKey | Node) -> int:
        """Global posting-list length of *key* (0 when absent everywhere)."""
        return len(self.lookup(key))

    def locate(self, tid: int) -> Optional[int]:
        """The shard id holding *tid*, when the partitioner can derive it."""
        return self.partitioner.locate(tid)

    # ------------------------------------------------------------------
    # Probe accounting and the read-through posting cache
    # ------------------------------------------------------------------
    def reset_probe_stats(self) -> ProbeStats:
        """Zero the merged-lookup counters (and every shard's) and return
        the pre-reset merged snapshot."""
        snapshot = self.probe_stats.snapshot()
        self.probe_stats.reset()
        for shard in self.shards:
            shard.index.reset_probe_stats()
        return snapshot

    def aggregate_probe_stats(self) -> ProbeStats:
        """Sum of the per-shard indexes' probe counters (the fan-out path)."""
        total = ProbeStats()
        for shard in self.shards:
            stats = shard.index.probe_stats
            total.gets += stats.gets
            total.cache_hits += stats.cache_hits
            total.tree_descents += stats.tree_descents
        return total

    def attach_postings_cache(self, cache: Optional[ValueCache]) -> None:
        """Install a read-through cache of *merged* decoded posting lists."""
        self._postings_cache = cache

    @property
    def postings_cache(self) -> Optional[ValueCache]:
        """The currently attached merged-posting cache, if any."""
        return self._postings_cache

    # ------------------------------------------------------------------
    # Iteration and statistics
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[bytes, List[object]]]:
        """Yield ``(key bytes, merged posting list)`` in global key order.

        Keys present in several shards appear once, with their posting lists
        merged by tid -- exactly what a single-shard index would store.
        """
        streams = (shard.index.items() for shard in self.shards)
        merged = heapq.merge(*streams, key=lambda item: item[0])
        for key, group in groupby(merged, key=lambda item: item[0]):
            yield key, self._merge_postings([postings for _, postings in group])

    def keys(self) -> Iterator[SubtreeKey]:
        """Yield every distinct key as a parsed :class:`SubtreeKey`."""
        for key, _ in self.items():
            yield decode_key(key)

    def raw_items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield each shard's ``(key, encoded postings)`` pairs, key-ordered.

        Unlike :meth:`items`, encoded values cannot be merged, so a key held
        by K shards yields K pairs (adjacent in the stream).
        """
        streams = (shard.index.raw_items() for shard in self.shards)
        return heapq.merge(*streams, key=lambda item: item[0])

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def mss(self) -> int:
        """Maximum subtree size every shard was built with."""
        return self.manifest.mss

    @property
    def key_count(self) -> int:
        """Sum of per-shard unique-key counts (>= the global distinct count)."""
        return self.metadata.key_count

    @property
    def posting_count(self) -> int:
        """Total postings across all shards."""
        return self.metadata.posting_count

    def size_bytes(self) -> int:
        """Total size of all shard index files on disk."""
        return sum(shard.index.size_bytes() for shard in self.shards)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush every shard."""
        for shard in self.shards:
            shard.index.flush()
            if shard.store is not None:
                shard.store.flush()

    def close(self) -> None:
        """Close every shard's index and data file and drop the cache."""
        if self._postings_cache is not None:
            clear = getattr(self._postings_cache, "clear", None)
            if clear is not None:
                clear()
            self._postings_cache = None
        for shard in self.shards:
            shard.index.close()
            if shard.store is not None:
                shard.store.close()

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_index(path: str) -> "SubtreeIndex | ShardedIndex":
    """Open *path* as a plain or sharded index, dispatching on the file.

    The single dispatch point behind :meth:`SubtreeIndex.open`'s manifest
    handling, usable directly when the caller wants to branch on the type.
    """
    if is_manifest(path):
        return ShardedIndex.open(path)
    return SubtreeIndex.open(path)
