"""Parallel construction of a sharded index.

The build partitions the corpus by tree id, hands each shard's trees to a
worker and writes one ``SubtreeIndex`` + ``TreeStore`` pair per shard, then
records the manifest.  Workers are separate *processes*
(:class:`concurrent.futures.ProcessPoolExecutor`): subtree enumeration and
posting encoding are pure Python and CPU-bound, so threads would serialise
on the GIL.  Trees cross the process boundary as Penn-bracket text -- the
corpus's own serialisation -- which is compact, picklable and reparsed by
the worker into interval-numbered trees identical to the parent's.

``workers=1`` (or a single shard) builds inline in the calling process with
no pool at all, which is both the degenerate-correctness path the merge
tests rely on and the sensible default on single-core machines.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.coding.base import CodingScheme
from repro.core.index import SubtreeIndex
from repro.corpus.store import TreeStore, data_file_path
from repro.shard.manifest import (
    MANIFEST_SUFFIX,
    ShardEntry,
    ShardManifest,
    shard_file_paths,
)
from repro.shard.partitioner import Partitioner, get_partitioner
from repro.trees.node import ParseTree
from repro.trees.penn import parse_penn, to_penn

#: One shard's build order for a *worker process*: (shard_id, index path,
#: mss, coding name, records), where records are ``(tid, penn line)`` pairs.
_ShardJob = Tuple[int, str, int, str, List[Tuple[int, str]]]


def _build_shard_trees(
    shard_id: int,
    index_path: str,
    mss: int,
    coding_name: str,
    trees: Sequence[ParseTree],
) -> Dict[str, object]:
    """Build one shard's index and data file over already-parsed trees.

    Returns the counters the manifest records for this shard.
    """
    started = time.perf_counter()
    index = SubtreeIndex.build(trees, mss=mss, coding=coding_name, path=index_path)
    TreeStore.build(data_file_path(index_path), trees).close()
    counters = {
        "shard_id": shard_id,
        "tree_count": index.metadata.tree_count,
        "key_count": index.metadata.key_count,
        "posting_count": index.metadata.posting_count,
        "build_seconds": time.perf_counter() - started,
    }
    index.close()
    return counters


def _build_shard(job: _ShardJob) -> Dict[str, object]:
    """Worker-process entry point: reparse the shipped Penn lines and build.

    Module-level (not a closure) so :mod:`pickle` can ship it to the pool.
    The inline path calls :func:`_build_shard_trees` directly and never pays
    this serialise/reparse round trip.
    """
    shard_id, index_path, mss, coding_name, records = job
    trees = [ParseTree(parse_penn(text), tid=tid) for tid, text in records]
    return _build_shard_trees(shard_id, index_path, mss, coding_name, trees)


def default_worker_count(shard_count: int) -> int:
    """One worker per shard, capped at the machine's core count."""
    return max(1, min(shard_count, os.cpu_count() or 1))


def partition_corpus(
    trees: Iterable[ParseTree],
    partitioner: Partitioner,
) -> List[List[ParseTree]]:
    """Split *trees* into per-shard lists.

    Trees arrive in corpus order and each shard receives its subset in that
    same order, so per-shard posting lists stay ascending in tid -- the
    invariant the query-time merge relies on.
    """
    per_shard: List[List[ParseTree]] = [[] for _ in range(partitioner.shard_count)]
    for tree in trees:
        per_shard[partitioner.assign(tree.tid)].append(tree)
    return per_shard


def build_sharded(
    trees: Iterable[ParseTree],
    mss: int,
    coding: CodingScheme | str,
    path: str,
    shards: int,
    workers: Optional[int] = None,
    partitioner: str | Partitioner = "hash",
) -> str:
    """Build a sharded index at manifest *path*; returns the manifest path.

    *path* is the manifest file; :data:`MANIFEST_SUFFIX` is appended when
    missing so ``corpus.si`` becomes ``corpus.si.manifest.json``.  Shard
    files are written next to it.  *workers* defaults to one process per
    shard capped at the core count; ``workers=1`` builds inline.
    """
    coding_name = coding if isinstance(coding, str) else coding.name
    if isinstance(partitioner, str):
        partitioner = get_partitioner(partitioner, shards)
    elif partitioner.shard_count != shards:
        raise ValueError(
            f"partitioner is sized for {partitioner.shard_count} shards, "
            f"but {shards} shards were requested"
        )
    if workers is None:
        workers = default_worker_count(shards)
    if workers < 1:
        raise ValueError(f"worker count must be at least 1, got {workers}")
    if not path.endswith(MANIFEST_SUFFIX):
        path = path + MANIFEST_SUFFIX

    started = time.perf_counter()
    per_shard = partition_corpus(trees, partitioner)
    manifest_dir = os.path.dirname(os.path.abspath(path))
    os.makedirs(manifest_dir, exist_ok=True)

    shard_paths: List[str] = []
    names: List[Tuple[str, str]] = []
    for shard_id in range(shards):
        index_name, data_name = shard_file_paths(path, shard_id)
        index_path = os.path.join(manifest_dir, index_name)
        if os.path.exists(index_path):  # rebuilds must not append to old files
            os.remove(index_path)
        shard_paths.append(index_path)
        names.append((index_name, data_name))

    if workers == 1 or shards == 1:
        # Inline: hand the parsed trees straight to the builder, skipping
        # the Penn serialise/reparse round trip the pool path needs.
        counters = [
            _build_shard_trees(shard_id, shard_paths[shard_id], mss, coding_name, shard_trees)
            for shard_id, shard_trees in enumerate(per_shard)
        ]
    else:
        jobs: List[_ShardJob] = [
            (
                shard_id,
                shard_paths[shard_id],
                mss,
                coding_name,
                [(tree.tid, to_penn(tree.root)) for tree in shard_trees],
            )
            for shard_id, shard_trees in enumerate(per_shard)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            counters = list(pool.map(_build_shard, jobs))

    entries = [
        ShardEntry(
            shard_id=result["shard_id"],
            index_path=names[result["shard_id"]][0],
            data_path=names[result["shard_id"]][1],
            tree_count=result["tree_count"],
            key_count=result["key_count"],
            posting_count=result["posting_count"],
            build_seconds=result["build_seconds"],
        )
        for result in sorted(counters, key=lambda item: item["shard_id"])
    ]
    manifest = ShardManifest(
        mss=mss,
        coding=coding_name,
        partitioner=partitioner.name,
        shard_count=shards,
        tree_count=sum(entry.tree_count for entry in entries),
        build_wall_seconds=time.perf_counter() - started,
        shards=entries,
    )
    manifest.save(path)
    return path
