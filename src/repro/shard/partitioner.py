"""Corpus partitioners: which shard owns which tree.

Tree ids are the posting granularity of every coding scheme, so partitioning
by tid splits both the index build and the posting space cleanly: a shard's
index is a complete subtree index over its own trees, and a query's global
answer is the tid-ordered merge of the per-shard answers.  Two policies are
provided:

``round-robin``
    trees are dealt to shards in arrival order (``0, 1, .., N-1, 0, ..``).
    Gives perfectly balanced shard sizes for any tid distribution, but the
    tid -> shard mapping is positional, so :meth:`Partitioner.locate` cannot
    answer for it.

``hash``
    ``crc32`` of the tree id selects the shard.  Stable across processes and
    Python versions (unlike the builtin ``hash``), and invertible at query
    time: :meth:`Partitioner.locate` can route a single-tree fetch to the
    one shard that owns it.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Optional, Type


class Partitioner:
    """Assigns tree ids to one of ``shard_count`` shards."""

    #: Registry name; subclasses must override.
    name = ""

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise ValueError(f"shard count must be at least 1, got {shard_count}")
        self.shard_count = shard_count

    def assign(self, tid: int) -> int:
        """The shard that should receive *tid* during a build (stateful for
        round-robin, pure for hash)."""
        raise NotImplementedError

    def locate(self, tid: int) -> Optional[int]:
        """The shard that holds *tid*, or ``None`` when the policy cannot
        derive it from the tid alone."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shard_count={self.shard_count})"


class RoundRobinPartitioner(Partitioner):
    """Deal trees to shards in arrival order, independent of tid values."""

    name = "round-robin"

    def __init__(self, shard_count: int):
        super().__init__(shard_count)
        self._next = 0

    def assign(self, tid: int) -> int:
        shard = self._next
        self._next = (self._next + 1) % self.shard_count
        return shard


class HashPartitioner(Partitioner):
    """Route each tid by a stable crc32 hash of its 8-byte encoding."""

    name = "hash"

    def assign(self, tid: int) -> int:
        return self.locate(tid)

    def locate(self, tid: int) -> Optional[int]:
        return zlib.crc32(struct.pack("<q", tid)) % self.shard_count


_PARTITIONERS: Dict[str, Type[Partitioner]] = {
    RoundRobinPartitioner.name: RoundRobinPartitioner,
    HashPartitioner.name: HashPartitioner,
}


def partitioner_names() -> list:
    """Registered partitioner policy names (CLI choices)."""
    return sorted(_PARTITIONERS)


def get_partitioner(name: str, shard_count: int) -> Partitioner:
    """Instantiate the partitioner policy *name* for *shard_count* shards."""
    try:
        cls = _PARTITIONERS[name]
    except KeyError:
        known = ", ".join(partitioner_names())
        raise ValueError(f"unknown partitioner {name!r} (known: {known})") from None
    return cls(shard_count)
