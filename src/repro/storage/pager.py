"""Fixed-size page management over a single file.

The experiments in the paper report index sizes with a 4096-byte system page
size; the pager mirrors that: all B+Tree nodes and overflow chains live in
4096-byte pages of one index file.  No user-level buffer cache is kept beyond
a small write-back dictionary -- "we relied on the page buffering of the
operating system", Section 6.1.
"""

from __future__ import annotations

import os
from typing import Dict

from repro import obs

#: Default page size in bytes (matches the paper's reported system page size).
PAGE_SIZE = 4096


class PageError(RuntimeError):
    """Raised on invalid page accesses (out of range, wrong size, ...)."""


class Pager:
    """Allocate, read and write fixed-size pages in a single file.

    Page 0 is reserved for the caller's metadata (the B+Tree stores its root
    pointer there).  Pages are identified by their ordinal number.
    """

    def __init__(self, path: str | os.PathLike, page_size: int = PAGE_SIZE, cache_pages: int = 256):
        self.path = os.fspath(path)
        self.page_size = page_size
        self._cache_limit = cache_pages
        self._cache: Dict[int, bytes] = {}
        #: File reads performed (write-back cache hits excluded) -- the
        #: cheap always-on I/O proxy the descent spans report deltas of.
        self.read_count = 0
        existed = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if existed else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise PageError(
                f"file size {size} is not a multiple of the page size {page_size}"
            )
        self._page_count = size // page_size
        if self._page_count == 0:
            # Reserve the metadata page.
            self.allocate()

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Number of pages currently allocated (including the meta page)."""
        return self._page_count

    def size_bytes(self) -> int:
        """Total size of the page file in bytes."""
        return self._page_count * self.page_size

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Allocate a new zero-filled page and return its page id."""
        page_id = self._page_count
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._page_count += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        """Read the raw contents of page *page_id*."""
        if not 0 <= page_id < self._page_count:
            raise PageError(f"page {page_id} out of range (have {self._page_count})")
        cached = self._cache.get(page_id)
        if cached is not None:
            return cached
        self.read_count += 1
        # Page-read spans only make sense nested under a descent (or some
        # other traced operation); a bare read stays span-free even when
        # tracing is on, so builds never flood the trace ring.
        if obs.enabled() and obs.current_span() is not None:
            with obs.trace("page_read", page=page_id):
                data = self._read_page(page_id)
        else:
            data = self._read_page(page_id)
        self._remember(page_id, data)
        return data

    def _read_page(self, page_id: int) -> bytes:
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise PageError(f"short read on page {page_id}")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write *data* (at most one page) to page *page_id*."""
        if not 0 <= page_id < self._page_count:
            raise PageError(f"page {page_id} out of range (have {self._page_count})")
        if len(data) > self.page_size:
            raise PageError(
                f"payload of {len(data)} bytes exceeds the page size {self.page_size}"
            )
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        self._file.seek(page_id * self.page_size)
        self._file.write(data)
        self._remember(page_id, data)

    def _remember(self, page_id: int, data: bytes) -> None:
        if len(self._cache) >= self._cache_limit:
            self._cache.pop(next(iter(self._cache)))
        self._cache[page_id] = data

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush buffered writes to the operating system."""
        self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        self._cache.clear()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
