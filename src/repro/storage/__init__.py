"""Page-based storage engine.

The paper implements its subtree index as "a native disk-based B+Tree index"
with 4096-byte pages and no private buffer cache (Section 6.1).  This package
reproduces that substrate in pure Python:

* :mod:`repro.storage.codec` -- varint and record (de)serialisation helpers.
* :mod:`repro.storage.pager` -- a fixed-size page file with allocation.
* :mod:`repro.storage.bptree` -- a disk-resident B+Tree mapping byte-string
  keys to byte-string values, with overflow chains for large posting lists.
"""

from repro.storage.bptree import BPlusTree
from repro.storage.codec import (
    decode_uint32_list,
    decode_varint,
    encode_uint32_list,
    encode_varint,
    read_varint,
)
from repro.storage.pager import PAGE_SIZE, Pager

__all__ = [
    "BPlusTree",
    "Pager",
    "PAGE_SIZE",
    "encode_varint",
    "decode_varint",
    "read_varint",
    "encode_uint32_list",
    "decode_uint32_list",
]
