"""A disk-resident B+Tree mapping byte-string keys to byte-string values.

This is the physical structure behind the subtree index ("our subtree index
was implemented as a native disk-based B+Tree index", Section 6.1).  Keys are
canonical subtree encodings, values are serialised posting lists.  Values
larger than a quarter page spill into overflow page chains so that posting
lists of any size can be stored while keeping leaf pages balanced.

The tree supports point lookups, ordered iteration, prefix scans, single-key
insertion (with node splits) and sorted bulk loading, which is what index
construction uses.
"""

from __future__ import annotations

import struct
import threading
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Protocol, Sequence, Tuple

from repro import obs
from repro.storage.codec import (
    decode_length_prefixed,
    decode_varint,
    encode_length_prefixed,
    encode_varint,
)
from repro.storage.pager import PAGE_SIZE, Pager

_META = struct.Struct("<4sIIQ")  # magic, root page, height, entry count
_MAGIC = b"SIBT"

_NODE_INTERNAL = 1
_NODE_LEAF = 2
_NODE_OVERFLOW = 3

_UINT32 = struct.Struct("<I")
_OVERFLOW_HEADER = struct.Struct("<BIH")  # type, next page, bytes used in page


class BPlusTreeError(RuntimeError):
    """Raised on malformed tree files or invalid operations."""


class ValueCache(Protocol):
    """Read-through cache protocol consumed by :meth:`BPlusTree.get`.

    Any object with ``get(key, default)`` / ``put(key, value)`` /
    ``invalidate(key)`` works; :class:`repro.service.cache.StripedLRUCache`
    is the production implementation.
    """

    def get(self, key: bytes, default: object = None) -> object: ...

    def put(self, key: bytes, value: object) -> None: ...

    def invalidate(self, key: bytes) -> None: ...


#: Sentinel distinguishing "not cached" from a cached ``None`` (missing key).
_CACHE_MISS = object()


@dataclass
class ProbeStats:
    """Counters describing how lookups were served.

    ``gets`` counts every :meth:`BPlusTree.get` call, ``cache_hits`` the ones
    answered by the read-through cache, and ``tree_descents`` the ones that
    walked the tree (the on-disk probe the paper's Section 6 costs out).

    The counters are deliberately maintained without a lock so the cache-hit
    fast path stays contention-free: they are exact in single-threaded use
    (what every test asserts on) and may undercount slightly under
    concurrent serving.  Treat them as telemetry, not an invariant, when
    multiple threads are involved.
    """

    gets: int = 0
    cache_hits: int = 0
    tree_descents: int = 0

    @property
    def cache_misses(self) -> int:
        """Lookups that had to descend into the tree."""
        return self.gets - self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never probed)."""
        return self.cache_hits / self.gets if self.gets else 0.0

    def snapshot(self) -> "ProbeStats":
        """An immutable copy of the current counters."""
        return ProbeStats(self.gets, self.cache_hits, self.tree_descents)

    def reset(self) -> None:
        """Zero all counters."""
        self.gets = 0
        self.cache_hits = 0
        self.tree_descents = 0


class _Leaf:
    """In-memory image of a leaf page."""

    __slots__ = ("keys", "values", "next_leaf")

    def __init__(self, keys: Optional[List[bytes]] = None,
                 values: Optional[List[Tuple[bool, bytes]]] = None,
                 next_leaf: int = 0):
        self.keys: List[bytes] = keys or []
        # Each value is (is_overflow, payload); payload is the inline value or
        # the packed (first_page, total_length) pointer for overflow chains.
        self.values: List[Tuple[bool, bytes]] = values or []
        self.next_leaf = next_leaf


class _Internal:
    """In-memory image of an internal page."""

    __slots__ = ("keys", "children")

    def __init__(self, keys: Optional[List[bytes]] = None, children: Optional[List[int]] = None):
        self.keys: List[bytes] = keys or []
        self.children: List[int] = children or []


class BPlusTree:
    """Disk B+Tree over a :class:`~repro.storage.pager.Pager`.

    Parameters
    ----------
    path:
        File backing the tree.  An existing file is opened, a missing one is
        initialised with an empty tree.
    page_size:
        Page size in bytes (default 4096, as in the paper's setup).
    """

    def __init__(self, path: str, page_size: int = PAGE_SIZE,
                 value_cache: Optional[ValueCache] = None):
        self.pager = Pager(path, page_size=page_size)
        self._overflow_threshold = page_size // 4
        #: Optional read-through cache consulted by :meth:`get` before any
        #: page access; install one with :meth:`attach_cache`.
        self.value_cache = value_cache
        #: Lookup counters (gets / cache hits / tree descents).
        self.probe_stats = ProbeStats()
        # Point lookups share one file handle (seek + read is not atomic), so
        # concurrent cache-missing `get` calls serialise on this lock.  Cache
        # hits never take it, which is what makes a warm cache scale across
        # threads.
        self._descent_lock = threading.Lock()
        meta = self.pager.read(0)
        magic, root, height, count = _META.unpack_from(meta, 0)
        if magic == _MAGIC:
            self._root = root
            self._height = height
            self._count = count
        elif magic == b"\x00\x00\x00\x00":
            root_page = self.pager.allocate()
            self._root = root_page
            self._height = 1
            self._count = 0
            self._write_leaf(root_page, _Leaf())
            self._write_meta()
        else:
            raise BPlusTreeError(f"not a B+Tree file: bad magic {magic!r}")

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _write_meta(self) -> None:
        self.pager.write(0, _META.pack(_MAGIC, self._root, self._height, self._count))

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Height of the tree (1 = a single leaf)."""
        return self._height

    def size_bytes(self) -> int:
        """Size of the index file in bytes."""
        return self.pager.size_bytes()

    def close(self) -> None:
        """Flush and close the backing file."""
        self._write_meta()
        self.pager.close()

    def flush(self) -> None:
        """Flush metadata and dirty pages to disk."""
        self._write_meta()
        self.pager.flush()

    def __enter__(self) -> "BPlusTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Page (de)serialisation
    # ------------------------------------------------------------------
    def _write_leaf(self, page_id: int, leaf: _Leaf) -> None:
        out = bytearray([_NODE_LEAF])
        out += _UINT32.pack(leaf.next_leaf)
        out += encode_varint(len(leaf.keys))
        for key, (is_overflow, payload) in zip(leaf.keys, leaf.values):
            out += encode_length_prefixed(key)
            out.append(1 if is_overflow else 0)
            out += encode_length_prefixed(payload)
        if len(out) > self.pager.page_size:
            raise BPlusTreeError("leaf serialisation exceeds the page size")
        self.pager.write(page_id, bytes(out))

    def _read_leaf(self, data: bytes) -> _Leaf:
        next_leaf = _UINT32.unpack_from(data, 1)[0]
        count, offset = decode_varint(data, 1 + _UINT32.size)
        keys: List[bytes] = []
        values: List[Tuple[bool, bytes]] = []
        for _ in range(count):
            key, offset = decode_length_prefixed(data, offset)
            is_overflow = bool(data[offset])
            offset += 1
            payload, offset = decode_length_prefixed(data, offset)
            keys.append(key)
            values.append((is_overflow, payload))
        return _Leaf(keys, values, next_leaf)

    def _write_internal(self, page_id: int, node: _Internal) -> None:
        out = bytearray([_NODE_INTERNAL])
        out += encode_varint(len(node.keys))
        for key in node.keys:
            out += encode_length_prefixed(key)
        for child in node.children:
            out += _UINT32.pack(child)
        if len(out) > self.pager.page_size:
            raise BPlusTreeError("internal node serialisation exceeds the page size")
        self.pager.write(page_id, bytes(out))

    def _read_internal(self, data: bytes) -> _Internal:
        count, offset = decode_varint(data, 1)
        keys: List[bytes] = []
        for _ in range(count):
            key, offset = decode_length_prefixed(data, offset)
            keys.append(key)
        children: List[int] = []
        for _ in range(count + 1):
            children.append(_UINT32.unpack_from(data, offset)[0])
            offset += _UINT32.size
        return _Internal(keys, children)

    def _read_node(self, page_id: int) -> Tuple[int, object]:
        data = self.pager.read(page_id)
        node_type = data[0]
        if node_type == _NODE_LEAF:
            return node_type, self._read_leaf(data)
        if node_type == _NODE_INTERNAL:
            return node_type, self._read_internal(data)
        raise BPlusTreeError(f"page {page_id} is not a tree node (type {node_type})")

    # ------------------------------------------------------------------
    # Overflow chains for large values
    # ------------------------------------------------------------------
    def _store_value(self, value: bytes) -> Tuple[bool, bytes]:
        """Return the leaf payload for *value*, spilling to overflow pages if large."""
        if len(value) <= self._overflow_threshold:
            return False, value
        capacity = self.pager.page_size - _OVERFLOW_HEADER.size
        chunks = [value[i:i + capacity] for i in range(0, len(value), capacity)]
        next_page = 0
        for chunk in reversed(chunks):
            page_id = self.pager.allocate()
            payload = _OVERFLOW_HEADER.pack(_NODE_OVERFLOW, next_page, len(chunk)) + chunk
            self.pager.write(page_id, payload)
            next_page = page_id
        pointer = _UINT32.pack(next_page) + encode_varint(len(value))
        return True, pointer

    def _load_value(self, is_overflow: bool, payload: bytes) -> bytes:
        if not is_overflow:
            return payload
        page_id = _UINT32.unpack_from(payload, 0)[0]
        total, _ = decode_varint(payload, _UINT32.size)
        parts: List[bytes] = []
        remaining = total
        while page_id and remaining > 0:
            data = self.pager.read(page_id)
            node_type, next_page, used = _OVERFLOW_HEADER.unpack_from(data, 0)
            if node_type != _NODE_OVERFLOW:
                raise BPlusTreeError(f"page {page_id} is not an overflow page")
            chunk = data[_OVERFLOW_HEADER.size:_OVERFLOW_HEADER.size + used]
            parts.append(chunk)
            remaining -= len(chunk)
            page_id = next_page
        return b"".join(parts)

    # ------------------------------------------------------------------
    # Size accounting for splits
    # ------------------------------------------------------------------
    @staticmethod
    def _leaf_entry_size(key: bytes, payload: bytes) -> int:
        return (
            len(encode_varint(len(key))) + len(key)
            + 1
            + len(encode_varint(len(payload))) + len(payload)
        )

    def _leaf_fits(self, leaf: _Leaf) -> bool:
        size = 1 + _UINT32.size + len(encode_varint(len(leaf.keys)))
        for key, (_, payload) in zip(leaf.keys, leaf.values):
            size += self._leaf_entry_size(key, payload)
        return size <= self.pager.page_size

    def _internal_fits(self, node: _Internal) -> bool:
        size = 1 + len(encode_varint(len(node.keys)))
        for key in node.keys:
            size += len(encode_varint(len(key))) + len(key)
        size += _UINT32.size * len(node.children)
        return size <= self.pager.page_size

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: bytes) -> Tuple[int, _Leaf, List[Tuple[int, _Internal, int]]]:
        """Descend to the leaf responsible for *key*.

        Returns the leaf page id, the leaf image and the path of
        ``(page_id, internal_node, child_index)`` traversed, root first.
        """
        path: List[Tuple[int, _Internal, int]] = []
        page_id = self._root
        while True:
            node_type, node = self._read_node(page_id)
            if node_type == _NODE_LEAF:
                return page_id, node, path  # type: ignore[return-value]
            internal: _Internal = node  # type: ignore[assignment]
            index = bisect_right(internal.keys, key)
            path.append((page_id, internal, index))
            page_id = internal.children[index]

    def attach_cache(self, cache: Optional[ValueCache]) -> None:
        """Install (or, with ``None``, remove) the read-through value cache."""
        self.value_cache = cache

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value stored under *key* or ``None``.

        When a :attr:`value_cache` is attached the lookup is read-through:
        cached keys (including cached absences) are answered without touching
        any page; uncached keys descend the tree once and populate the cache.
        """
        self.probe_stats.gets += 1
        cache = self.value_cache
        if cache is not None:
            cached = cache.get(key, _CACHE_MISS)
            if cached is not _CACHE_MISS:
                self.probe_stats.cache_hits += 1
                return cached  # type: ignore[return-value]
        # The cache re-population happens inside the descent lock; insert()
        # performs its write AND its invalidation under the same lock, so a
        # concurrent writer cannot slip between our read and our put and the
        # cache can never be left holding a stale value.
        if obs.enabled():
            with obs.trace("bptree.descent", key=key.decode("utf-8", "replace")) as span:
                reads_before = self.pager.read_count
                with self._descent_lock:
                    value = self._get_from_tree(key)
                    if cache is not None:
                        cache.put(key, value)
                span.set(
                    page_reads=self.pager.read_count - reads_before,
                    found=value is not None,
                )
            return value
        with self._descent_lock:
            value = self._get_from_tree(key)
            if cache is not None:
                cache.put(key, value)
        return value

    def _get_from_tree(self, key: bytes) -> Optional[bytes]:
        """Uncached point lookup; the caller must hold ``_descent_lock``."""
        self.probe_stats.tree_descents += 1
        _, leaf, _ = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            is_overflow, payload = leaf.values[index]
            return self._load_value(is_overflow, payload)
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: bytes, value: bytes) -> None:
        """Insert or replace the value stored under *key*.

        Takes the descent lock for the whole update (so concurrent readers
        never observe a mid-split tree) and invalidates the cache entry
        inside the same critical section.  Together with :meth:`get` caching
        inside the lock, a reader's stale put can never interleave between
        the write and the invalidation.
        """
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("keys must be bytes")
        with self._descent_lock:
            self._insert_locked(bytes(key), value)
            if self.value_cache is not None:
                self.value_cache.invalidate(bytes(key))

    def _insert_locked(self, key: bytes, value: bytes) -> None:
        leaf_page, leaf, path = self._find_leaf(key)
        payload = self._store_value(value)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = payload
        else:
            leaf.keys.insert(index, key)
            leaf.values.insert(index, payload)
            self._count += 1

        if self._leaf_fits(leaf):
            self._write_leaf(leaf_page, leaf)
            self._write_meta()
            return

        # Split the leaf.  The split point balances *bytes*, not entry counts:
        # posting lists vary wildly in size and a count-based split can leave
        # one half still larger than a page.
        entry_sizes = [
            self._leaf_entry_size(key, payload)
            for key, (_, payload) in zip(leaf.keys, leaf.values)
        ]
        total = sum(entry_sizes)
        accumulated = 0
        mid = 1
        for index, size in enumerate(entry_sizes[:-1]):
            accumulated += size
            if accumulated >= total // 2:
                mid = index + 1
                break
        else:
            mid = len(leaf.keys) // 2 or 1
        right = _Leaf(leaf.keys[mid:], leaf.values[mid:], leaf.next_leaf)
        left = _Leaf(leaf.keys[:mid], leaf.values[:mid], 0)
        right_page = self.pager.allocate()
        left.next_leaf = right_page
        separator = right.keys[0]
        self._write_leaf(leaf_page, left)
        self._write_leaf(right_page, right)
        self._insert_into_parent(path, leaf_page, separator, right_page)
        self._write_meta()

    def _insert_into_parent(
        self,
        path: List[Tuple[int, _Internal, int]],
        left_page: int,
        separator: bytes,
        right_page: int,
    ) -> None:
        if not path:
            # The split node was the root: grow the tree by one level.
            new_root = self.pager.allocate()
            self._write_internal(new_root, _Internal([separator], [left_page, right_page]))
            self._root = new_root
            self._height += 1
            return
        page_id, node, child_index = path.pop()
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right_page)
        if self._internal_fits(node):
            self._write_internal(page_id, node)
            return
        mid = len(node.keys) // 2
        push_up = node.keys[mid]
        right = _Internal(node.keys[mid + 1:], node.children[mid + 1:])
        left = _Internal(node.keys[:mid], node.children[:mid + 1])
        right_page_id = self.pager.allocate()
        self._write_internal(page_id, left)
        self._write_internal(right_page_id, right)
        self._insert_into_parent(path, page_id, push_up, right_page_id)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _leftmost_leaf(self) -> Tuple[int, _Leaf]:
        page_id = self._root
        while True:
            node_type, node = self._read_node(page_id)
            if node_type == _NODE_LEAF:
                return page_id, node  # type: ignore[return-value]
            page_id = node.children[0]  # type: ignore[union-attr]

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield all ``(key, value)`` pairs in key order."""
        _, leaf = self._leftmost_leaf()
        while True:
            for key, (is_overflow, payload) in zip(leaf.keys, leaf.values):
                yield key, self._load_value(is_overflow, payload)
            if not leaf.next_leaf:
                return
            _, leaf = self._read_node(leaf.next_leaf)  # type: ignore[assignment]

    def keys(self) -> Iterator[bytes]:
        """Yield all keys in order."""
        for key, _ in self.items():
            yield key

    def prefix_items(self, prefix: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs whose key starts with *prefix*."""
        _, leaf, _ = self._find_leaf(prefix)
        index = bisect_left(leaf.keys, prefix)
        while True:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key.startswith(prefix):
                    is_overflow, payload = leaf.values[index]
                    yield key, self._load_value(is_overflow, payload)
                elif key > prefix:
                    return
                index += 1
            if not leaf.next_leaf:
                return
            _, leaf = self._read_node(leaf.next_leaf)  # type: ignore[assignment]
            index = 0

    def range_items(self, low: bytes, high: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Yield pairs with ``low <= key < high`` in key order."""
        _, leaf, _ = self._find_leaf(low)
        index = bisect_left(leaf.keys, low)
        while True:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key >= high:
                    return
                is_overflow, payload = leaf.values[index]
                yield key, self._load_value(is_overflow, payload)
                index += 1
            if not leaf.next_leaf:
                return
            _, leaf = self._read_node(leaf.next_leaf)  # type: ignore[assignment]
            index = 0

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        """Build the tree bottom-up from key-sorted ``(key, value)`` pairs.

        Bulk loading an empty tree is how index construction writes its
        accumulated posting lists; it produces tightly packed pages and is
        much faster than repeated inserts.
        """
        if self._count:
            raise BPlusTreeError("bulk_load requires an empty tree")
        previous: Optional[bytes] = None
        for key, _ in items:
            if previous is not None and key <= previous:
                raise BPlusTreeError("bulk_load requires strictly increasing keys")
            previous = key

        if not items:
            self._write_meta()
            return

        # Build the leaf level.
        leaf_pages: List[Tuple[bytes, int]] = []  # (first key, page id)
        current = _Leaf()
        current_page = self._root  # reuse the pre-allocated empty root leaf
        for key, value in items:
            payload = self._store_value(value)
            current.keys.append(bytes(key))
            current.values.append(payload)
            if not self._leaf_fits(current):
                current.keys.pop()
                current.values.pop()
                leaf_pages.append((current.keys[0], current_page))
                next_page = self.pager.allocate()
                current.next_leaf = next_page
                self._write_leaf(current_page, current)
                current_page = next_page
                current = _Leaf([bytes(key)], [payload])
        leaf_pages.append((current.keys[0], current_page))
        self._write_leaf(current_page, current)
        self._count = len(items)

        # Build internal levels bottom-up.
        level: List[Tuple[bytes, int]] = leaf_pages
        height = 1
        while len(level) > 1:
            next_level: List[Tuple[bytes, int]] = []
            node = _Internal(children=[level[0][1]])
            node_first_key = level[0][0]
            for first_key, page_id in level[1:]:
                node.keys.append(first_key)
                node.children.append(page_id)
                if not self._internal_fits(node):
                    node.keys.pop()
                    node.children.pop()
                    page = self.pager.allocate()
                    self._write_internal(page, node)
                    next_level.append((node_first_key, page))
                    node = _Internal(children=[page_id])
                    node_first_key = first_key
            page = self.pager.allocate()
            self._write_internal(page, node)
            next_level.append((node_first_key, page))
            level = next_level
            height += 1

        self._root = level[0][1]
        self._height = height
        self._write_meta()
        self.pager.flush()
