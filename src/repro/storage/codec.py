"""Binary encoding helpers shared by the storage and coding layers.

Posting lists are stored as delta-compressed varint sequences, the standard
inverted-index technique; index keys and page records use the same varint
primitives.  Keeping the codecs in one module makes the byte-level format of
the index auditable and easy to test exhaustively.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

_UINT32 = struct.Struct("<I")


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128-style varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from *data* starting at *offset*.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    index = offset
    while True:
        if index >= len(data):
            raise ValueError("truncated varint")
        byte = data[index]
        index += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, index
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def read_varint(data: memoryview | bytes, offset: int) -> Tuple[int, int]:
    """Alias of :func:`decode_varint` accepting memoryviews (hot path)."""
    result = 0
    shift = 0
    index = offset
    while True:
        byte = data[index]
        index += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, index
        shift += 7


def encode_varint_list(values: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers as concatenated varints."""
    out = bytearray()
    for value in values:
        out += encode_varint(value)
    return bytes(out)


def decode_varint_list(data: bytes, count: int, offset: int = 0) -> Tuple[List[int], int]:
    """Decode *count* varints from *data*; returns ``(values, next_offset)``."""
    values: List[int] = []
    for _ in range(count):
        value, offset = decode_varint(data, offset)
        values.append(value)
    return values, offset


def encode_delta_list(sorted_values: Sequence[int]) -> bytes:
    """Delta + varint encode a non-decreasing integer sequence.

    The count is encoded first, followed by the first value and then the
    gaps.  This is the classic compressed posting-list layout.
    """
    out = bytearray(encode_varint(len(sorted_values)))
    previous = 0
    for value in sorted_values:
        if value < previous:
            raise ValueError("delta encoding requires a non-decreasing sequence")
        out += encode_varint(value - previous)
        previous = value
    return bytes(out)


def decode_delta_list(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Decode a sequence produced by :func:`encode_delta_list`."""
    count, offset = decode_varint(data, offset)
    values: List[int] = []
    current = 0
    for _ in range(count):
        gap, offset = decode_varint(data, offset)
        current += gap
        values.append(current)
    return values, offset


def encode_uint32_list(values: Iterable[int]) -> bytes:
    """Encode integers as fixed-width little-endian uint32 (page pointers)."""
    return b"".join(_UINT32.pack(value) for value in values)


def decode_uint32_list(data: bytes) -> List[int]:
    """Decode a byte string of packed uint32 values."""
    if len(data) % 4:
        raise ValueError("uint32 list payload must be a multiple of 4 bytes")
    return [_UINT32.unpack_from(data, offset)[0] for offset in range(0, len(data), 4)]


def encode_length_prefixed(payload: bytes) -> bytes:
    """Prefix *payload* with its varint-encoded length."""
    return encode_varint(len(payload)) + payload


def decode_length_prefixed(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a length-prefixed payload; returns ``(payload, next_offset)``."""
    length, offset = decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise ValueError("truncated length-prefixed payload")
    return bytes(data[offset:end]), end
